"""Golden-trace regression tests: every scenario, byte-identical.

Each registered experiment is run at the ``smoke`` preset with its
default seed (fig7 in ``--synthetic`` mode, since its live-timed node
side is the one deliberately non-reproducible path) and its
``ScenarioResult.to_json()`` output is compared **byte for byte**
against the committed file under ``tests/golden/``.

This is the contract that lets the kernel fast path evolve: any change
to event ordering, RNG stream consumption, or float arithmetic in the
simulation shows up here as a diff, so a performance PR provably
changes no experimental results.

To refresh after an *intentional* result change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden -q

then commit the rewritten ``tests/golden/*.json`` and explain the diff
in the PR.
"""

import os
from pathlib import Path

import pytest

from repro.scenarios.registry import REGISTRY, load_builtin
from repro.scenarios.sweep import reset_run_state

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

#: per-scenario overrides needed to make the run byte-reproducible
GOLDEN_OVERRIDES = {"fig7": {"synthetic": True}}

GOLDEN_SCALE = "smoke"

load_builtin()


def _golden_payload(name: str) -> str:
    reset_run_state()
    result = REGISTRY.run(name, GOLDEN_OVERRIDES.get(name, {}), scale=GOLDEN_SCALE)
    return result.to_json() + "\n"


def test_every_scenario_has_a_golden_trace():
    committed = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert committed == set(REGISTRY.names())


@pytest.mark.parametrize("name", REGISTRY.names())
def test_golden_trace_byte_identical(name):
    golden_path = GOLDEN_DIR / f"{name}.json"
    payload = _golden_payload(name)
    if os.environ.get("REPRO_REGEN_GOLDEN") == "1":
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(payload)
        pytest.skip(f"regenerated {golden_path}")
    assert golden_path.exists(), (
        f"missing golden trace {golden_path}; generate with "
        "REPRO_REGEN_GOLDEN=1 pytest tests/test_golden -q"
    )
    assert payload == golden_path.read_text(), (
        f"{name}: smoke-run output diverged from {golden_path}; if the "
        "change is intentional, regenerate with REPRO_REGEN_GOLDEN=1"
    )


def test_golden_run_is_deterministic_within_process():
    """Two back-to-back runs agree — guards the reset machinery itself."""
    assert _golden_payload("fig3") == _golden_payload("fig3")
