"""LiveServer: the stdlib HTTP transport over a loopback port."""

from __future__ import annotations

import asyncio

from repro.api.stack import Stack, SupplySpec, WorkloadSpec
from repro.live.http import LiveServer, http_request
from repro.live.service import LiveControlPlane

SPEED = 200.0


def _stack() -> Stack:
    return Stack(
        name="live-http",
        supply=SupplySpec("static", invokers=2),
        workloads=(
            WorkloadSpec(
                "faas-stream", functions=4, duration=0.05, azure_durations=False
            ),
        ),
        seed=13,
        horizon=60.0,
    )


def _with_server(probe):
    """Start a loopback server, run ``await probe(host, port)``, stop."""

    async def main():
        service = LiveControlPlane(_stack(), speed=SPEED)
        server = LiveServer(service, host="127.0.0.1", port=0)
        host, port = await server.start()
        try:
            return await probe(host, port)
        finally:
            await server.stop()

    return asyncio.run(main())


def test_healthz_reports_fleet():
    async def probe(host, port):
        return await http_request(host, port, "GET", "/healthz")

    status, payload = _with_server(probe)
    assert status == 200
    assert payload["ok"] is True
    assert payload["healthy_invokers"] == 2
    assert payload["accepting"] is True


def test_invoke_roundtrip_success():
    async def probe(host, port):
        return await http_request(
            host, port, "POST", "/invoke/sleep-000", {"duration": 0.05}
        )

    status, payload = _with_server(probe)
    assert status == 200
    assert payload["status"] == "success"
    assert payload["function"] == "sleep-000"
    assert payload["response_time"] > 0.0
    assert payload["activation_id"]


def test_invoke_unknown_function_404():
    async def probe(host, port):
        return await http_request(host, port, "POST", "/invoke/missing", {})

    status, payload = _with_server(probe)
    assert status == 404
    assert payload["status"] == "failed"
    assert "not deployed" in payload["error"]


def test_invoke_bad_body_400():
    async def probe(host, port):
        reader, writer = await asyncio.open_connection(host, port)
        body = b"this is not json"
        writer.write(
            b"POST /invoke/sleep-000 HTTP/1.1\r\n"
            b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        return raw

    raw = _with_server(probe)
    assert raw.startswith(b"HTTP/1.1 400 ")


def test_unknown_route_404_and_wrong_method_405():
    async def probe(host, port):
        missing = await http_request(host, port, "GET", "/nope")
        wrong = await http_request(host, port, "POST", "/healthz", {})
        return missing, wrong

    (missing_status, _), (wrong_status, _) = _with_server(probe)
    assert missing_status == 404
    assert wrong_status == 405


def test_stats_counts_requests():
    async def probe(host, port):
        await http_request(
            host, port, "POST", "/invoke/sleep-001", {"duration": 0.05}
        )
        return await http_request(host, port, "GET", "/stats")

    status, payload = _with_server(probe)
    assert status == 200
    assert payload["requests_total"] == 1
    assert payload["activations_total"] == 1
    assert payload["functions_deployed"] == 4


def test_shutdown_endpoint_stops_server():
    async def main():
        service = LiveControlPlane(_stack(), speed=SPEED)
        server = LiveServer(service, host="127.0.0.1", port=0)
        host, port = await server.start()
        status, payload = await http_request(host, port, "POST", "/shutdown")
        assert status == 200 and payload["ok"] is True
        await asyncio.wait_for(server.wait_shutdown(), timeout=10.0)
        # the listener is gone: a new connection must fail
        try:
            await asyncio.open_connection(host, port)
        except (ConnectionError, OSError):
            return True
        return False

    assert asyncio.run(main()) is True
