"""The loopback parity contract: sim and live agree for the same seed.

One config (the committed ``examples/configs/live_loopback.yaml``), two
execution modes.  The static supply keeps the system stationary and
capacity is ample, so invocation **counts and outcome mix** must agree
exactly — the replay driver rebuilds the identical seeded source, and
every request succeeds in both modes.  Response-time *statistics* are
only approximately equal (per-invoker RNG draws interleave differently
under wall pacing) and are deliberately not pinned here; see
``docs/LIVE_MODE.md`` for the full parity contract.
"""

from __future__ import annotations

import pytest

from repro.api.config import load_config_file, stack_from_config
from repro.live.replay import member_cluster_ids, replay_config, stream_spec
from repro.warehouse import capture
from repro.warehouse.store import RunStore

CONFIG = "examples/configs/live_loopback.yaml"


@pytest.fixture(scope="module")
def stack():
    return stack_from_config(load_config_file(CONFIG))


@pytest.fixture(scope="module")
def simulated(stack):
    report = stack.run()
    return report.artifacts["stream-report"]


@pytest.fixture(scope="module")
def live(stack):
    return replay_config(stack, speed=50.0, store=False)


def test_config_is_live_ready(stack):
    assert stream_spec(stack).name == "faas-stream"
    assert member_cluster_ids(stack) == ["c0"]


def test_same_invocation_counts(simulated, live):
    assert live.report.total == simulated.total
    assert live.report.total > 0


def test_same_outcome_mix(simulated, live):
    assert live.report.by_status == simulated.by_status
    assert set(live.report.by_status) == {"SUCCESS"}


def test_no_transport_errors(live):
    assert live.transport_errors == 0
    assert live.report.run_horizon == pytest.approx(20.0)


def test_stream_metrics_are_comparable(simulated, live):
    sim_metrics = simulated.metrics(prefix="stream_")
    live_metrics = live.metrics()
    assert live_metrics["stream_requests_total"] == sim_metrics["stream_requests_total"]
    assert live_metrics["stream_accepted_share"] == sim_metrics["stream_accepted_share"]
    assert (
        live_metrics["stream_success_share_of_invoked"]
        == sim_metrics["stream_success_share_of_invoked"]
    )
    # response stats exist in both; approximately equal, not pinned
    assert live_metrics["stream_mean_response_s"] == pytest.approx(
        sim_metrics["stream_mean_response_s"], rel=0.25
    )


def test_live_run_lands_in_warehouse(stack, tmp_path, monkeypatch):
    db = tmp_path / "live.sqlite"
    monkeypatch.chdir(tmp_path)  # no committed artifacts to backfill
    monkeypatch.setenv("REPRO_WAREHOUSE", str(db))
    capture.reset()
    try:
        summary = replay_config(stack, speed=50.0, horizon=5.0)
    finally:
        capture.reset()
    with RunStore(db) as store:
        rows = store.query(
            "select kind, name, seed from runs where kind='live'"
        ).rows
    assert [tuple(row) for row in rows] == [("live", "live-loopback", 7)]
    assert summary.report.total > 0
