"""LiveControlPlane: the asyncio ↔ kernel-process invocation bridge."""

from __future__ import annotations

import asyncio

import pytest

from repro.api.stack import Stack, SupplySpec, WorkloadSpec
from repro.faas.activation import ActivationStatus
from repro.live.service import LiveControlPlane, ServiceStopped, catalogue_functions

SPEED = 200.0  # keep kernel waits (cold starts ~1 s) in the milliseconds


def _stack(**kwargs) -> Stack:
    defaults = dict(
        name="live-unit",
        supply=SupplySpec("static", invokers=2),
        workloads=(
            WorkloadSpec(
                "faas-stream", functions=4, duration=0.05, azure_durations=False
            ),
        ),
        seed=11,
        horizon=60.0,
    )
    defaults.update(kwargs)
    return Stack(**defaults)


def test_catalogue_matches_stream_spec():
    functions = catalogue_functions(_stack())
    assert sorted(f.name for f in functions) == [
        "sleep-000", "sleep-001", "sleep-002", "sleep-003",
    ]
    assert all(f.duration == 0.05 for f in functions)


def test_invoke_succeeds_through_real_control_plane():
    async def main():
        service = LiveControlPlane(_stack(), speed=SPEED)
        await service.start()
        try:
            result = await service.invoke("sleep-000", duration=0.05)
        finally:
            await service.stop()
        return result, service

    result, service = asyncio.run(main())
    assert result.status is ActivationStatus.SUCCESS
    assert result.response_time > 0.0
    assert service.requests_total == 1
    assert service.inflight == 0


def test_unknown_function_fails_not_deployed():
    async def main():
        service = LiveControlPlane(_stack(), speed=SPEED)
        await service.start()
        try:
            return await service.invoke("nope", duration=0.01)
        finally:
            await service.stop()

    result = asyncio.run(main())
    assert result.status is ActivationStatus.FAILED
    assert "not deployed" in (result.error or "")


def test_stop_drains_inflight_invocations():
    """Graceful shutdown waits for accepted work (nanofaas stop contract)."""
    async def main():
        service = LiveControlPlane(_stack(), speed=SPEED)
        await service.start()
        pending = [
            asyncio.ensure_future(service.invoke("sleep-001", duration=0.05))
            for _ in range(5)
        ]
        await asyncio.sleep(0)  # let the submissions reach the kernel
        await service.stop(drain=True)
        results = await asyncio.gather(*pending)
        return results, service

    results, service = asyncio.run(main())
    assert len(results) == 5
    assert all(r.status is ActivationStatus.SUCCESS for r in results)
    assert service.inflight == 0


def test_invoke_after_stop_is_rejected():
    async def main():
        service = LiveControlPlane(_stack(), speed=SPEED)
        await service.start()
        await service.stop()
        with pytest.raises(ServiceStopped):
            await service.invoke("sleep-000")

    asyncio.run(main())


def test_snapshot_reports_controller_state():
    async def main():
        service = LiveControlPlane(_stack(), speed=SPEED)
        await service.start()
        try:
            await service.invoke("sleep-000", duration=0.05)
            return service.snapshot()
        finally:
            await service.stop()

    snap = asyncio.run(main())
    assert snap["functions_deployed"] == 4
    assert snap["healthy_invokers"] == 2
    assert snap["activations_total"] == 1
    assert snap["requests_total"] == 1
    assert snap["kernel_now"] > 0.0
    assert snap["speed"] == SPEED


def test_service_requires_middleware():
    stack = _stack(supply=SupplySpec("none"), middleware=None, workloads=())
    with pytest.raises(ValueError):
        LiveControlPlane(stack, speed=SPEED)
