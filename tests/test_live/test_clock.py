"""WallClock: the affine kernel-time ↔ wall-time map."""

from __future__ import annotations

import pytest

from repro.live.clock import WallClock


class FakeTime:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


def test_real_time_identity_map():
    wall = FakeTime(100.0)
    clock = WallClock(speed=1.0, time_fn=wall)
    clock.start(kernel_now=0.0)
    wall.now = 103.5
    assert clock.kernel_now() == pytest.approx(3.5)
    assert clock.wall_elapsed() == pytest.approx(3.5)


def test_speed_scales_kernel_time():
    wall = FakeTime(10.0)
    clock = WallClock(speed=60.0, time_fn=wall)
    clock.start(kernel_now=0.0)
    wall.now = 11.0  # one wall second -> one simulated minute
    assert clock.kernel_now() == pytest.approx(60.0)


def test_anchor_offsets_kernel_time():
    wall = FakeTime(0.0)
    clock = WallClock(speed=2.0, time_fn=wall)
    clock.start(kernel_now=500.0)
    wall.now = 3.0
    assert clock.kernel_now() == pytest.approx(506.0)


def test_wall_delay_future_and_past():
    wall = FakeTime(0.0)
    clock = WallClock(speed=4.0, time_fn=wall)
    clock.start(kernel_now=0.0)
    # kernel t=8 is 2 wall seconds away at x4
    assert clock.wall_delay(8.0) == pytest.approx(2.0)
    wall.now = 5.0  # kernel now = 20; t=8 is in the past
    assert clock.wall_delay(8.0) == 0.0


def test_unstarted_clock_raises():
    clock = WallClock()
    assert not clock.started
    with pytest.raises(RuntimeError):
        clock.kernel_now()
    with pytest.raises(RuntimeError):
        clock.wall_elapsed()


@pytest.mark.parametrize("speed", [0.0, -1.0])
def test_nonpositive_speed_rejected(speed):
    with pytest.raises(ValueError):
        WallClock(speed=speed)
