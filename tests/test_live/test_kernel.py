"""LiveKernel: queue-manager ordering, work-signaler wakeup, shutdown.

The suite runs without pytest-asyncio: each test drives its own loop
via ``asyncio.run``.  Clocks run fast (high speed factors) so wall
waits stay in the milliseconds.
"""

from __future__ import annotations

import asyncio
import time

from repro.live.clock import WallClock
from repro.live.kernel import LiveKernel
from repro.sim import Environment


def _kernel(speed: float = 1000.0, **kwargs) -> LiveKernel:
    return LiveKernel(Environment(), WallClock(speed=speed), **kwargs)


def test_events_fire_in_kernel_time_order():
    """Events injected out of order still fire in (time, priority) order."""
    kernel = _kernel()
    env = kernel.env
    fired = []

    def waiter(delay, tag):
        yield env.timeout(delay)
        fired.append((env.now, tag))

    async def main():
        task = asyncio.ensure_future(kernel.run())
        # Inject in shuffled delay order; the kernel must sort them.
        for delay, tag in [(3.0, "c"), (1.0, "a"), (2.0, "b"), (1.0, "a2")]:
            kernel.submit(lambda d=delay, t=tag: env.process(waiter(d, t)))
        while len(fired) < 4:
            await asyncio.sleep(0.001)
        kernel.stop()
        await task

    asyncio.run(main())
    assert [tag for _t, tag in fired] == ["a", "a2", "b", "c"]
    assert [t for t, _tag in fired] == [1.0, 1.0, 2.0, 3.0]


def test_signal_interrupts_pacing_sleep():
    """A submission during a long pacing sleep is served immediately.

    The far event is hours of wall time away; without the work signal
    the injected immediate event would wait behind it.
    """
    kernel = LiveKernel(Environment(), WallClock(speed=1.0))
    env = kernel.env
    fired = []

    def far():
        yield env.timeout(10_000.0)
        fired.append("far")

    def near():
        yield env.timeout(0.0)
        fired.append("near")

    async def main():
        task = asyncio.ensure_future(kernel.run())
        kernel.submit(lambda: env.process(far()))
        await asyncio.sleep(0.05)  # kernel is now pacing toward t=10000
        started = time.monotonic()
        kernel.submit(lambda: env.process(near()))
        while not fired:
            await asyncio.sleep(0.001)
        waited = time.monotonic() - started
        kernel.stop()
        await task
        return waited

    waited = asyncio.run(main())
    assert fired == ["near"]
    assert waited < 1.0  # woke on the signal, not the 10000 s timer


def test_idle_kernel_parks_until_work_arrives():
    kernel = _kernel()
    env = kernel.env
    fired = []

    async def main():
        task = asyncio.ensure_future(kernel.run())
        await asyncio.sleep(0.02)  # empty schedule: parked on the signal
        assert kernel.steps == 0

        def tick():
            yield env.timeout(0.0)
            fired.append(env.now)

        kernel.submit(lambda: env.process(tick()))
        while not fired:
            await asyncio.sleep(0.001)
        kernel.stop()
        await task

    asyncio.run(main())
    assert fired == [0.0]
    assert kernel.submissions == 1


def test_stop_wakes_parked_kernel():
    kernel = _kernel()

    async def main():
        task = asyncio.ensure_future(kernel.run())
        await asyncio.sleep(0.01)
        assert kernel.running
        kernel.stop()
        await asyncio.wait_for(task, timeout=2.0)

    asyncio.run(main())
    assert not kernel.running


def test_max_batch_yields_between_batches():
    """A large due backlog is stepped in bounded batches, not one gulp."""
    kernel = _kernel(max_batch=8)
    env = kernel.env
    fired = []

    def tick(i):
        yield env.timeout(0.0)
        fired.append(i)

    async def main():
        task = asyncio.ensure_future(kernel.run())

        def inject():
            for i in range(50):
                env.process(tick(i))

        kernel.submit(inject)
        while len(fired) < 50:
            await asyncio.sleep(0.001)
        kernel.stop()
        await task

    asyncio.run(main())
    assert fired == list(range(50))


def test_submit_threadsafe_from_other_thread():
    import threading

    kernel = _kernel()
    env = kernel.env
    fired = []

    async def main():
        task = asyncio.ensure_future(kernel.run())

        def tick():
            yield env.timeout(0.0)
            fired.append("t")

        thread = threading.Thread(
            target=kernel.submit, args=(lambda: env.process(tick()),)
        )
        thread.start()
        thread.join()
        while not fired:
            await asyncio.sleep(0.001)
        kernel.stop()
        await task

    asyncio.run(main())
    assert fired == ["t"]
