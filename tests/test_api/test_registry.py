"""Component-registry unit tests."""

import pytest

from repro.api.registry import (
    COMPONENTS,
    Component,
    ComponentRegistry,
    component,
    load_builtin_components,
)


@pytest.fixture(autouse=True)
def _loaded():
    load_builtin_components()


EXPECTED_BUILTINS = {
    "cluster": {"slurm"},
    "supply": {
        "fib",
        "var",
        "none",
        "static",
        "queue-aware",
        "ewma",
        "pid",
        "hybrid",
    },
    "middleware": {"openwhisk"},
    "router": {"weighted-idle", "affinity-first", "failover"},
    "workload": {
        "idleness-trace",
        "gatling",
        "pinned-jobs",
        "sebs",
        "hpc-jobs",
        "failover-window",
        "faas-stream",
    },
    "probe": {
        "slurm-sampler",
        "coverage",
        "ow-log",
        "gatling-report",
        "kernel-stats",
        "accounting",
        "loadbalancer-stats",
        "federation-stats",
        "supply-stats",
        "stream-report",
    },
}


def test_builtin_catalogue_complete():
    for kind, names in EXPECTED_BUILTINS.items():
        assert set(COMPONENTS.names(kind)) == names


def test_get_unknown_component_names_known_ones():
    with pytest.raises(KeyError, match="unknown supply component"):
        COMPONENTS.get("supply", "bogus")


def test_duplicate_registration_rejected():
    registry = ComponentRegistry()

    @component("probe", "p1", registry=registry)
    def probe_factory(ctx):
        raise NotImplementedError

    with pytest.raises(ValueError, match="registered twice"):

        @component("probe", "p1", registry=registry)
        def probe_factory_again(ctx):
            raise NotImplementedError


def test_unknown_kind_rejected():
    registry = ComponentRegistry()
    with pytest.raises(ValueError, match="kind must be one of"):
        registry.add(Component(kind="nonsense", name="x", factory=lambda: None))


def test_parameters_skip_the_context_argument():
    comp = COMPONENTS.get("workload", "gatling")
    names = comp.param_names()
    assert "ctx" not in names
    assert "qps" in names and "functions" in names


def test_every_component_has_help_text():
    for comp in COMPONENTS.items():
        assert comp.help, f"{comp.kind}/{comp.name} has no help text"


def test_items_filters_by_kind():
    supplies = COMPONENTS.items("supply")
    assert {c.name for c in supplies} == EXPECTED_BUILTINS["supply"]
    assert all(c.kind == "supply" for c in supplies)
