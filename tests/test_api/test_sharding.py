"""Sharded execution: determinism, shard-count invariance, partitioning.

One kernel process per federation member, conservative window sync at
the router boundary.  The load-bearing promises tested here:

- the same seed gives the identical merged report, run after run;
- per-member cluster dynamics are *seed-identical* between the flat
  (single-kernel) and the sharded execution of the same stack — the
  ``@<id>`` substream discipline at work;
- workload partitioning and the shards/members sanity checks fail
  loudly, before any process is forked.
"""

import pytest

from repro.api import (
    ClusterSpec,
    MiddlewareSpec,
    ProbeSpec,
    RouterSpec,
    Stack,
    SupplySpec,
    WorkloadSpec,
)
from repro.cluster.job import reset_job_ids
from repro.faas.messages import reset_activation_ids
from repro.hpcwhisk.pilot import reset_pilot_ids
from repro.scenarios.sweep import reset_run_state
from repro.shard.runner import (
    _partition_workloads,
    _resolve_member_configs,
    run_sharded,
)


def fed_stack(**overrides):
    base = dict(
        clusters=(
            ClusterSpec(nodes=8, cluster_id="alpha"),
            ClusterSpec(nodes=6, cluster_id="beta"),
        ),
        supply=SupplySpec("fib"),
        middleware=MiddlewareSpec(),
        router=RouterSpec("weighted-idle"),
        workloads=(
            WorkloadSpec("idleness-trace", min_intensity=3.0, outage_share=0.0),
            WorkloadSpec(
                "faas-stream", qps=3.0, functions=8, azure_durations=False
            ),
        ),
        probes=(
            ProbeSpec("slurm-sampler", history=False),
            ProbeSpec("stream-report"),
            ProbeSpec("federation-stats"),
        ),
        seed=29,
        horizon=600.0,
        name="shard-unit",
    )
    base.update(overrides)
    return Stack(**base)


def _fresh():
    """Identical global counter state before every run: workers fork
    from this process, so the parent state is part of the experiment."""
    reset_job_ids()
    reset_activation_ids()
    reset_pilot_ids()
    reset_run_state()


# ---------------------------------------------------------------------------
# end-to-end runs


def test_sharded_run_is_deterministic():
    _fresh()
    first = fed_stack().run_sharded(shards=2)
    _fresh()
    second = fed_stack().run_sharded(shards=2)
    assert first.metrics == second.metrics
    assert first.metrics["shards"] == 2
    assert first.metrics["stream_requests_total"] > 0


def test_shard_count_invariance_against_flat_run():
    """Flat vs sharded execution of the same stack: member-local
    dynamics (fib supply under the idleness trace) are seed-identical —
    exactly equal — while the stream totals agree to a 1% tolerance
    (in-flight requests at the horizon may resolve differently)."""
    _fresh()
    flat = fed_stack().run()
    _fresh()
    shard = fed_stack().run_sharded(shards=2)
    for key in ("avg_whisk_nodes@alpha", "avg_whisk_nodes@beta"):
        assert shard.metrics[key] == flat.metrics[key]
    a = flat.metrics["stream_requests_total"]
    b = shard.metrics["stream_requests_total"]
    assert a > 0 and b > 0
    assert abs(a - b) <= 0.01 * max(a, b)
    # fleet sums reconstructed from worker extras, same formulas as flat
    assert shard.metrics["coverage"] == pytest.approx(
        flat.metrics["coverage"], rel=1e-9
    )


def test_sharded_report_shape():
    _fresh()
    report = fed_stack().run_sharded(shards=2)
    assert report.system is None  # per-member systems die with the workers
    assert report.metrics["sync_window_s"] == 60.0
    assert {"shard-metrics", "stream-report", "routing", "kernel"} <= set(
        report.artifacts
    )
    assert report.artifacts["kernel"]["events_processed"] > 0
    # serializable without the (absent) system handle
    assert '"shards": 2' in report.to_json()


# ---------------------------------------------------------------------------
# validation (no processes forked)


def test_shards_must_match_member_count():
    with pytest.raises(ValueError, match="shards == members"):
        fed_stack().run_sharded(shards=3)


def test_sync_window_must_be_positive():
    with pytest.raises(ValueError, match="sync_window"):
        fed_stack().run_sharded(shards=2, sync_window=0.0)


def test_partition_rejects_unsupported_workload():
    stack = fed_stack(workloads=(WorkloadSpec("gatling", qps=1.0),))
    with pytest.raises(ValueError, match="cannot run sharded"):
        run_sharded(stack, shards=2)


def test_partition_placement_rules():
    stack = fed_stack(
        workloads=(
            WorkloadSpec("idleness-trace", outage_share=0.0),
            WorkloadSpec("pinned-jobs", cluster="beta"),
            WorkloadSpec("faas-stream", qps=1.0),
        )
    )
    stream, per_member = _partition_workloads(stack, ["alpha", "beta"])
    assert stream is not None and stream.name == "faas-stream"
    assert [w.name for w in per_member["alpha"]] == ["idleness-trace"]
    assert [w.name for w in per_member["beta"]] == [
        "idleness-trace",
        "pinned-jobs",
    ]


def test_partition_rejects_unknown_target_cluster():
    stack = fed_stack(workloads=(WorkloadSpec("pinned-jobs", cluster="gamma"),))
    with pytest.raises(ValueError, match="unknown cluster"):
        _partition_workloads(stack, ["alpha", "beta"])


def test_resolve_member_configs_assigns_positional_ids():
    stack = fed_stack(clusters=(ClusterSpec(nodes=4), ClusterSpec(nodes=4)))
    members = _resolve_member_configs(stack)
    assert [cid for cid, _spec in members] == ["c0", "c1"]


# ---------------------------------------------------------------------------
# CLI surface


def test_cli_rejects_shards_on_scenario_configs(tmp_path):
    from repro.cli import main

    config = tmp_path / "scenario.yaml"
    config.write_text("scenario: fig3\n")
    with pytest.raises(SystemExit, match="stack-mode"):
        main(["run", "--config", str(config), "--shards", "2"])


def test_cli_rejects_non_positive_shards(tmp_path):
    from repro.cli import main

    with pytest.raises(SystemExit, match=">= 1"):
        main(
            [
                "run",
                "--config",
                "examples/configs/stream_day.yaml",
                "--shards",
                "0",
            ]
        )
