"""Federated Stack assembly: N=1 equivalence, YAML, probes, CLI help."""

import pytest

from repro.api import (
    ClusterSpec,
    MiddlewareSpec,
    ProbeSpec,
    RouterSpec,
    Stack,
    SupplySpec,
    WorkloadSpec,
    stack_from_config,
)
from repro.scenarios.sweep import reset_run_state


def small_single_stack(**overrides):
    base = dict(
        cluster=ClusterSpec(nodes=6),
        supply=SupplySpec("fib"),
        middleware=MiddlewareSpec(),
        workloads=(
            WorkloadSpec("idleness-trace", min_intensity=2.0, outage_share=0.0),
            WorkloadSpec("gatling", qps=2.0, functions=5),
        ),
        probes=(ProbeSpec("slurm-sampler"), ProbeSpec("gatling-report")),
        seed=11,
        horizon=300.0,
        name="single",
    )
    base.update(overrides)
    return Stack(**base)


def test_n1_federation_is_byte_identical_to_single_cluster():
    """clusters=[one member] is the same simulation as cluster=..."""
    reset_run_state()
    single = small_single_stack().run()
    reset_run_state()
    federated = small_single_stack(
        clusters=(ClusterSpec(nodes=6),), name="single"
    ).run()
    assert federated.to_json() == single.to_json()


def test_member_handles_and_federation_facade():
    stack = small_single_stack(
        clusters=(
            ClusterSpec(nodes=6, cluster_id="hub"),
            ClusterSpec(nodes=3, cluster_id="edge"),
        ),
        router=RouterSpec("failover"),
        name="fed",
    )
    ctx = stack.build()
    assert ctx.cluster_ids == ["hub", "edge"]
    assert ctx.cluster("edge").config.num_nodes == 3
    assert ctx.cluster() is ctx.system.slurm  # primary
    assert ctx.system.is_federated
    assert ctx.system.federation is not None
    assert set(ctx.system.managers) == {"hub", "edge"}
    assert ctx.system.controller.cluster_order == ["hub", "edge"]
    with pytest.raises(KeyError, match="members:"):
        ctx.cluster("nope")


def test_positional_cluster_ids_derived():
    stack = small_single_stack(
        clusters=(ClusterSpec(nodes=2), ClusterSpec(nodes=2)), name="auto-ids"
    )
    ctx = stack.build()
    assert ctx.cluster_ids == ["c0", "c1"]


def test_duplicate_cluster_ids_rejected():
    stack = small_single_stack(
        clusters=(
            ClusterSpec(nodes=2, cluster_id="dup"),
            ClusterSpec(nodes=2, cluster_id="dup"),
        ),
        name="dups",
    )
    with pytest.raises(ValueError, match="duplicate cluster_id"):
        stack.build()


def test_router_requires_middleware():
    with pytest.raises(ValueError, match="router needs the FaaS middleware"):
        small_single_stack(
            middleware=None,
            supply=SupplySpec("none"),
            workloads=(),
            probes=(),
            router=RouterSpec("failover"),
        )


def test_federated_probes_emit_merged_and_per_member_metrics():
    reset_run_state()
    stack = small_single_stack(
        clusters=(
            ClusterSpec(nodes=6, cluster_id="hub"),
            ClusterSpec(nodes=3, cluster_id="edge"),
        ),
        router=RouterSpec("weighted-idle"),
        probes=(
            ProbeSpec("slurm-sampler"),
            ProbeSpec("coverage"),
            ProbeSpec("gatling-report"),
            ProbeSpec("accounting"),
            ProbeSpec("federation-stats"),
        ),
        name="fed-probes",
    )
    report = stack.run()
    metrics = report.metrics
    for key in (
        "coverage",
        "coverage@hub",
        "coverage@edge",
        "sim_ready_share@hub",
        "prime_jobs_total@edge",
        "fed_routed@hub",
        "fed_routed_share@edge",
        "fed_rejected_503",
    ):
        assert key in metrics, sorted(metrics)
    assert metrics["fed_clusters"] == 2.0
    assert metrics["fed_routed_total"] == (
        metrics["fed_routed@hub"] + metrics["fed_routed@edge"]
    )
    # fleet prime totals are the sum of the member totals
    assert metrics["prime_jobs_total"] == (
        metrics["prime_jobs_total@hub"] + metrics["prime_jobs_total@edge"]
    )
    # the sampler artifact exposes every member's log
    sampler = report.artifacts["slurm-sampler"]
    assert set(sampler.per_cluster) == {"hub", "edge"}


def test_stack_config_parses_clusters_and_router():
    stack = stack_from_config(
        {
            "name": "from-yaml",
            "seed": 3,
            "horizon": 120,
            "stack": {
                "clusters": [
                    {"nodes": 4, "cluster_id": "hub"},
                    {"nodes": 2, "cluster_id": "edge"},
                ],
                "supply": "fib",
                "router": "affinity-first",
                "workloads": [
                    {"name": "failover-window", "cluster": "edge", "start": 30.0,
                     "duration": 30.0},
                ],
                "probes": ["federation-stats"],
            },
        }
    )
    assert [spec.options.get("cluster_id") for spec in stack.clusters] == [
        "hub",
        "edge",
    ]
    assert stack.router.name == "affinity-first"


def test_stack_config_rejects_cluster_and_clusters_together():
    with pytest.raises(ValueError, match="both 'cluster' and 'clusters'"):
        stack_from_config(
            {
                "stack": {
                    "cluster": {"nodes": 4},
                    "clusters": [{"nodes": 4}],
                }
            }
        )


def test_stack_config_rejects_empty_clusters_list():
    with pytest.raises(ValueError, match="at least one member"):
        stack_from_config({"stack": {"clusters": []}})


def test_example_federation_config_runs():
    from repro.api import load_config_file

    config = load_config_file("examples/configs/federation_two_clusters.yaml")
    stack = stack_from_config(config)
    assert len(stack.clusters) == 2
    assert stack.router is not None
    stack.validate()


def test_cli_clusters_replication():
    from repro.cli import _replicate_clusters

    stack = small_single_stack()
    replicated = _replicate_clusters(stack, 3)
    assert [spec.options["cluster_id"] for spec in replicated.clusters] == [
        "c0",
        "c1",
        "c2",
    ]
    assert all(
        spec.options["nodes"] == stack.cluster.options["nodes"]
        for spec in replicated.clusters
    )
    with pytest.raises(ValueError, match=">= 1"):
        _replicate_clusters(stack, 0)
