"""Stack assembly and execution semantics."""

import pytest

from repro.api import (
    ClusterSpec,
    MiddlewareSpec,
    ProbeSpec,
    Stack,
    SupplySpec,
    WorkloadSpec,
)
from repro.api.components import resolve_length_set
from repro.hpcwhisk.lengths import SET_A1, JobLengthSet


def small_stack(**kwargs):
    defaults = dict(
        cluster=ClusterSpec(nodes=8),
        supply=SupplySpec("fib"),
        workloads=(
            WorkloadSpec("idleness-trace", min_intensity=4.0, outage_share=0.0),
        ),
        probes=(ProbeSpec("slurm-sampler"),),
        seed=3,
        horizon=600.0,
        name="unit",
    )
    defaults.update(kwargs)
    return Stack(**defaults)


def test_run_produces_probe_metrics_and_artifacts():
    report = small_stack().run()
    assert report.name == "unit"
    assert report.seed == 3
    assert set(report.metrics) == {
        "coverage",
        "avg_whisk_nodes",
        "avg_available_nodes",
        "zero_available_share",
    }
    assert set(report.artifacts) == {"slurm-sampler"}
    assert report.system.slurm.config.num_nodes == 8


def test_report_to_json_is_sorted_and_deterministic():
    from repro.scenarios.sweep import reset_run_state

    reset_run_state()
    first = small_stack().run().to_json()
    reset_run_state()
    second = small_stack().run().to_json()
    assert first == second
    assert first.index('"avg_available_nodes"') < first.index('"coverage"')


def test_unknown_component_name_rejected_before_running():
    with pytest.raises(KeyError, match="unknown workload component"):
        small_stack(workloads=(WorkloadSpec("bogus"),)).validate()


def test_unknown_option_rejected_before_running():
    stack = small_stack(workloads=(WorkloadSpec("gatling", qqps=1.0),))
    with pytest.raises(KeyError, match="no option"):
        stack.validate()


def test_duplicate_probes_rejected():
    with pytest.raises(ValueError, match="duplicate probe"):
        small_stack(probes=(ProbeSpec("ow-log"), ProbeSpec("ow-log")))


def test_supply_none_without_middleware_builds_bare_cluster():
    stack = small_stack(
        supply=SupplySpec("none"),
        middleware=None,
        probes=(ProbeSpec("accounting"),),
    )
    report = stack.run()
    assert report.system.controller is None
    assert report.system.manager is None
    assert report.metrics["prime_jobs_total"] > 0


def test_pilot_supply_without_middleware_rejected():
    stack = small_stack(middleware=None)
    with pytest.raises(ValueError, match="needs middleware"):
        stack.build()


def test_static_supply_spawns_invoker_fleet():
    stack = small_stack(
        supply=SupplySpec("static", invokers=3),
        middleware=MiddlewareSpec(system_overhead=0.05),
        workloads=(WorkloadSpec("gatling", qps=2.0, functions=5, duration=0.05),),
        probes=(ProbeSpec("loadbalancer-stats"), ProbeSpec("gatling-report")),
        horizon=300.0,
        run_extra=30.0,
    )
    report = stack.run()
    assert len(report.system.invokers) == 3
    assert report.metrics["warm_hits"] + report.metrics["cold_starts"] > 0
    assert report.metrics["success_of_accepted_share"] > 0.9


def test_sampler_probe_history_free_mode_still_reports_metrics():
    stack = small_stack(
        probes=(ProbeSpec("slurm-sampler", history=False),),
    )
    report = stack.run()
    # all sampler metrics flow from the streaming aggregates
    assert report.metrics["avg_whisk_nodes"] >= 0
    assert 0.0 <= report.metrics["zero_available_share"] <= 1.0
    artifact = report.artifacts["slurm-sampler"]
    assert artifact.log.samples == []
    assert len(artifact.log) > 0
    # the per-sample arrays are genuinely gone, with a pointed error
    with pytest.raises(RuntimeError, match="history=true"):
        artifact.whisk_counts
    with pytest.raises(RuntimeError, match="history=true"):
        artifact.idle_counts


def test_history_free_matches_history_metrics():
    from repro.scenarios.sweep import reset_run_state

    reset_run_state()
    full = small_stack().run()
    reset_run_state()
    lean = small_stack(
        probes=(ProbeSpec("slurm-sampler", history=False),),
    ).run()
    assert lean.metrics == full.metrics


def test_coverage_probe_rejects_history_free_sampler():
    stack = small_stack(
        probes=(
            ProbeSpec("slurm-sampler", history=False),
            ProbeSpec("coverage"),
        ),
    )
    with pytest.raises(ValueError, match="history=false"):
        stack.run()


def test_probe_ordering_enforced_for_coverage():
    # coverage declared before the sampler it reads from -> clear error
    stack = small_stack(probes=(ProbeSpec("coverage"), ProbeSpec("slurm-sampler")))
    with pytest.raises(ValueError, match="declared\\s+before"):
        stack.run()


def test_wrong_spec_type_rejected():
    with pytest.raises(TypeError, match="expected SupplySpec"):
        Stack(supply=WorkloadSpec("gatling"))


def test_resolve_length_set_accepts_all_three_shapes():
    assert resolve_length_set("A1") is SET_A1
    assert resolve_length_set(SET_A1) is SET_A1
    custom = resolve_length_set([2, 4])
    assert isinstance(custom, JobLengthSet)
    assert custom.minutes == (2, 4)
    with pytest.raises(KeyError, match="unknown length set"):
        resolve_length_set("Z9")
