"""YAML/dict config resolution: scenario mode, stack mode, example files."""

from pathlib import Path

import pytest

from repro.api import (
    ClusterSpec,
    SimulationReport,
    config_mode,
    load_config_file,
    run_config,
    stack_from_config,
)
from repro.scenarios import REGISTRY, load_builtin

CONFIG_DIR = Path(__file__).resolve().parents[2] / "examples" / "configs"


@pytest.fixture(autouse=True)
def _loaded():
    load_builtin()


# ---------------------------------------------------------------------------
# mode classification


def test_config_mode_classification():
    assert config_mode({"scenario": "day"}) == "scenario"
    assert config_mode({"stack": {}}) == "stack"
    with pytest.raises(ValueError, match="both"):
        config_mode({"scenario": "day", "stack": {}})
    with pytest.raises(ValueError, match="'scenario' or a 'stack'"):
        config_mode({"horizon": 60})
    with pytest.raises(KeyError, match="unknown stack-config key"):
        config_mode({"stack": {}, "bogus": 1})


# ---------------------------------------------------------------------------
# scenario mode -> ScenarioSpec resolution


def test_scenario_config_resolves_like_build_spec():
    config = {
        "scenario": "day",
        "scale": "smoke",
        "overrides": {"model": "var", "no_load": True},
    }
    spec = REGISTRY.spec_from_config(config)
    assert spec == REGISTRY.build_spec(
        "day", {"model": "var", "no_load": True}, "smoke"
    )
    assert spec.supply == "var"
    assert spec.workload == "none"
    assert spec.seed == 321  # the var day's per-model default seed


def test_scenario_config_yaml_string_values_are_coerced():
    # YAML users may quote values; Param.coerce handles the strings.
    spec = REGISTRY.spec_from_config(
        {"scenario": "fig1", "overrides": {"days": "0.5", "nodes": "64"}}
    )
    assert spec.params["days"] == 0.5
    assert spec.nodes == 64


def test_scenario_config_top_level_seed():
    spec = REGISTRY.spec_from_config({"scenario": "fig2", "seed": 5})
    assert spec.seed == 5
    with pytest.raises(ValueError, match="seed given both"):
        REGISTRY.spec_from_config(
            {"scenario": "fig2", "seed": 5, "overrides": {"seed": 6}}
        )


def test_scenario_config_rejects_unknown_keys():
    with pytest.raises(KeyError, match="unknown scenario-config key"):
        REGISTRY.spec_from_config({"scenario": "fig2", "bogus": 1})


# ---------------------------------------------------------------------------
# stack mode


def test_stack_from_config_parses_strings_and_mappings():
    stack = stack_from_config(
        {
            "name": "parse-check",
            "seed": 9,
            "horizon": 120,
            "stack": {
                "cluster": {"nodes": 4},
                "supply": "none",
                "middleware": "none",
                "workloads": [{"kind": "hpc-jobs", "count": 3}],
                "probes": ["accounting"],
            },
        }
    )
    assert stack.cluster == ClusterSpec(nodes=4)
    assert stack.supply.name == "none"
    assert stack.middleware is None
    assert stack.workloads[0].name == "hpc-jobs"
    assert stack.workloads[0].options == {"count": 3}
    assert stack.seed == 9 and stack.horizon == 120.0


def test_stack_from_config_validates_component_names():
    with pytest.raises(KeyError, match="unknown probe component"):
        stack_from_config({"stack": {"probes": ["bogus"]}})
    with pytest.raises(KeyError, match="unknown stack section key"):
        stack_from_config({"stack": {"clutter": {}}})


def test_run_config_dispatches_both_modes():
    scenario_result = run_config({"scenario": "fig2", "scale": "smoke"})
    assert scenario_result.spec.name == "fig2"
    report = run_config(
        {
            "name": "tiny",
            "horizon": 120,
            "stack": {
                "cluster": {"nodes": 2},
                "supply": "none",
                "middleware": "none",
                "workloads": [{"kind": "hpc-jobs", "count": 2}],
                "probes": ["accounting"],
            },
        }
    )
    assert isinstance(report, SimulationReport)
    assert report.metrics["prime_jobs_total"] == 2.0


# ---------------------------------------------------------------------------
# the shipped example configs must keep working


@pytest.mark.parametrize(
    "filename", ["fib_loadbalancer.yaml", "var_sebs_cluster.yaml"]
)
def test_example_config_parses_and_validates(filename):
    config = load_config_file(str(CONFIG_DIR / filename))
    stack = stack_from_config(config)  # validates against the registry
    assert stack.horizon > 0


def test_example_fib_loadbalancer_runs_end_to_end():
    config = load_config_file(str(CONFIG_DIR / "fib_loadbalancer.yaml"))
    config["horizon"] = 300  # keep the test fast; same composition
    report = run_config(config)
    assert report.name == "fib-day-balancer"
    assert report.metrics["requests_total"] > 0
    assert 0.0 <= report.metrics["warm_ratio"] <= 1.0


def test_example_var_sebs_runs_end_to_end():
    config = load_config_file(str(CONFIG_DIR / "var_sebs_cluster.yaml"))
    config["horizon"] = 300
    report = run_config(config)
    assert report.name == "var-sebs-64"
    assert report.metrics["requests_total"] > 0
