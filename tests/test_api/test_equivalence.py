"""Equivalence: the composable API reproduces the golden day trace.

Two independent proofs that declarative assembly changed nothing:

1. scenario-mode config ``{scenario: day, scale: smoke}`` produces the
   committed golden-trace JSON **byte for byte**;
2. a hand-composed :class:`~repro.api.Stack` mirroring the day stack
   produces float-identical metrics to the same golden file.
"""

import json
from pathlib import Path

import pytest

from repro.api import run_config
from repro.experiments.day import DayConfig, day_stack
from repro.hpcwhisk.config import SupplyModel
from repro.scenarios import REGISTRY, load_builtin
from repro.scenarios.sweep import reset_run_state

GOLDEN_DAY = Path(__file__).resolve().parents[1] / "golden" / "day.json"


@pytest.fixture(autouse=True)
def _loaded():
    load_builtin()
    reset_run_state()


def test_day_smoke_via_config_matches_golden_byte_for_byte():
    result = run_config({"scenario": "day", "scale": "smoke"})
    assert result.to_json() + "\n" == GOLDEN_DAY.read_text()


def test_day_smoke_via_hand_composed_stack_matches_golden_metrics():
    golden = json.loads(GOLDEN_DAY.read_text())
    spec = REGISTRY.build_spec("day", {}, "smoke")
    config = DayConfig(
        model=SupplyModel.FIB,
        seed=spec.seed,
        horizon=spec.horizon,
        num_nodes=spec.nodes,
        qps=spec.params["qps"],
        with_load=True,
    )
    report = day_stack(config).run()
    # float-identical, not approximately equal: same streams, same order
    assert report.metrics == golden["metrics"]


def test_day_stack_composition_is_the_papers():
    stack = day_stack(DayConfig())
    assert stack.supply.name == "fib"
    assert [w.name for w in stack.workloads] == ["idleness-trace", "gatling"]
    assert [p.name for p in stack.probes] == [
        "slurm-sampler",
        "coverage",
        "ow-log",
        "gatling-report",
    ]
    assert stack.horizon == 24 * 3600.0
