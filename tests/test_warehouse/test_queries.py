"""Canned queries: committed CSV goldens + exact bench-gate parity.

The goldens under ``tests/golden/queries/*.csv`` pin each canned
query's byte-exact CSV over a deterministic hand-built store.  Refresh
after an intentional change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_warehouse/test_queries.py -q
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.harness import BenchRecord, compare_records
from repro.bench.instrument import KernelStats
from repro.warehouse import queries
from repro.warehouse.store import RunRecord, RunStore

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden" / "queries"


def _scenario(name, policy, coverage, rev, seed=1, created="2026-01-01T00:00:00Z"):
    return RunRecord(
        kind="scenario",
        name=name,
        metrics={"coverage": coverage, "cold_start_rate": coverage / 10.0},
        spec_hash=f"spec-{name}-{policy}",
        seed=seed,
        scale="smoke",
        git_rev=rev,
        created_at=created,
        payload={"params": {"policy": policy, "nodes": 8}},
    )


def _bench_record(name, events, preset="smoke"):
    return BenchRecord(
        name=name,
        kind="kernel",
        preset=preset,
        stats=KernelStats(
            events_processed=events,
            events_scheduled=events,
            peak_queue_depth=4,
            wall_time_s=1.0 if events else 0.0,
        ),
    )


@pytest.fixture
def store(tmp_path, monkeypatch):
    """A deterministic store: two revisions, a drift pair, bench runs."""
    monkeypatch.setenv("REPRO_GIT_REV", "queryrev")
    s = RunStore(tmp_path / "q.sqlite")
    # ranking/trend input: two policies, two revisions (distinct seeds,
    # so only the deliberate drift pair below trips the drift query)
    s.record(_scenario("supply", "fib", 0.50, "rev-a"))
    s.record(_scenario("supply", "fib", 0.60, "rev-b", seed=11,
                       created="2026-02-01T00:00:00Z"))
    s.record(_scenario("supply", "pid", 0.80, "rev-a", seed=2))
    s.record(_scenario("supply", "pid", 0.90, "rev-b", seed=12,
                       created="2026-02-01T00:00:00Z"))
    # drift input: same identity, different metrics across revisions
    s.record(_scenario("day", "fib", 0.40, "rev-a", seed=9))
    s.record(_scenario("day", "fib", 0.45, "rev-b", seed=9,
                       created="2026-02-01T00:00:00Z"))
    # regression input: one regressed, one improved bench
    for record, eps in (("kernel", 1000), ("flood", 2000)):
        s.record_bench(_bench_record(record, eps), label="baseline")
    s.record_bench(_bench_record("kernel", 800), label="current")   # -20%
    s.record_bench(_bench_record("flood", 2500), label="current")   # +25%
    yield s
    s.close()


@pytest.mark.parametrize(
    "name, options",
    [
        ("ranking", {"metric": "coverage", "group": "policy"}),
        ("trend", {"metric": "coverage", "name": "supply"}),
        ("regressions", {"threshold": 0.10}),
        ("drift", {}),
    ],
)
def test_canned_query_matches_committed_golden(store, name, options):
    payload = queries.run_canned(store, name, **options).to_csv()
    golden_path = GOLDEN_DIR / f"{name}.csv"
    if os.environ.get("REPRO_REGEN_GOLDEN") == "1":
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(payload)
        pytest.skip(f"regenerated {golden_path}")
    assert golden_path.exists(), (
        f"missing canned-query golden {golden_path}; generate with "
        "REPRO_REGEN_GOLDEN=1"
    )
    assert payload == golden_path.read_text()


def test_ranking_rejects_non_identifier_groups(store):
    with pytest.raises(ValueError, match="identifier"):
        queries.ranking(store, group="policy; DROP TABLE runs")


def test_regressions_exit_signal_and_order(store):
    table = queries.regressions(store, threshold=0.10)
    assert table.columns[-1] == "regressed"
    assert [(row[0], row[-1]) for row in table.rows] == [
        ("flood", 0), ("kernel", 1),
    ]


def test_drift_flags_only_the_drifting_identity(store):
    table = queries.drift(store)
    assert [(row[0], row[1]) for row in table.rows] == [("scenario", "day")]
    assert table.rows[0][6] == 2  # two distinct metrics digests


# ---------------------------------------------------------------------------
# gate parity: the warehouse query reproduces compare_records exactly


def _gate_fixture(tmp_path, current, baseline):
    store = RunStore(tmp_path / "gate.sqlite")
    current_ids = {
        name: store.record_bench(rec, label="current")
        for name, rec in current.items()
    }
    baseline_ids = {
        name: store.record_bench(rec, label="baseline")
        for name, rec in baseline.items()
    }
    return store, current_ids, baseline_ids


def test_bench_gate_matches_compare_records(tmp_path):
    current = {
        "kernel": _bench_record("kernel", 850),   # -15%: regressed at 10%
        "flood": _bench_record("flood", 2400),    # +20%: fine
        "router": _bench_record("router", 500),   # not in baseline: skipped
        "shards": _bench_record("shards", 123),   # baseline eps 0 edge
    }
    baseline = {
        "kernel": _bench_record("kernel", 1000),
        "flood": _bench_record("flood", 2000),
        "shards": _bench_record("shards", 0),     # events_per_sec == 0.0
        "extra": _bench_record("extra", 42),      # only in baseline: ignored
    }
    expected = compare_records(current, baseline, 0.10)
    store, current_ids, baseline_ids = _gate_fixture(tmp_path, current, baseline)
    got = queries.bench_gate(store, current_ids, baseline_ids, 0.10)
    assert got == expected  # same Comparison dataclass, field for field
    assert [c.name for c in got] == ["kernel", "flood", "shards"]
    assert [c.regressed for c in got] == [True, False, False]
    assert got[2].delta == 0.0  # zero-baseline edge: delta pinned to 0.0
    store.close()


def test_bench_gate_raises_on_preset_mismatch_like_the_comparator(tmp_path):
    current = {"kernel": _bench_record("kernel", 900, preset="quick")}
    baseline = {"kernel": _bench_record("kernel", 1000, preset="smoke")}
    with pytest.raises(ValueError, match="cannot compare preset"):
        compare_records(current, baseline, 0.10)
    store, current_ids, baseline_ids = _gate_fixture(tmp_path, current, baseline)
    with pytest.raises(ValueError, match="cannot compare preset"):
        queries.bench_gate(store, current_ids, baseline_ids, 0.10)
    store.close()


def test_bench_gate_with_no_common_benchmarks_is_empty(tmp_path):
    current = {"router": _bench_record("router", 10)}
    baseline = {"kernel": _bench_record("kernel", 1000)}
    store, current_ids, baseline_ids = _gate_fixture(tmp_path, current, baseline)
    assert queries.bench_gate(store, current_ids, baseline_ids, 0.10) == []
    assert compare_records(current, baseline, 0.10) == []
    store.close()
