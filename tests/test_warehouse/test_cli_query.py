"""``repro query`` / ``repro report``: formats, exit codes, gate parity."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.harness import BenchRecord
from repro.bench.instrument import KernelStats
from repro.cli import main
from repro.warehouse import capture
from repro.warehouse.store import RunRecord, RunStore

REPO_ROOT = Path(__file__).resolve().parents[2]


def _scenario(name, policy, coverage, rev, seed=1):
    return RunRecord(
        kind="scenario",
        name=name,
        metrics={"coverage": coverage},
        spec_hash=f"spec-{name}-{policy}",
        seed=seed,
        scale="smoke",
        git_rev=rev,
        created_at="2026-01-01T00:00:00Z",
        payload={"params": {"policy": policy}},
    )


def _bench(name, events, preset="smoke"):
    return BenchRecord(
        name=name,
        kind="kernel",
        preset=preset,
        stats=KernelStats(
            events_processed=events,
            events_scheduled=events,
            peak_queue_depth=4,
            wall_time_s=1.0,
        ),
    )


@pytest.fixture
def db(tmp_path, monkeypatch):
    """A populated store on disk; tests drive it through --db."""
    monkeypatch.setenv("REPRO_GIT_REV", "rev-b")  # pins the bench rows
    path = tmp_path / "cli.sqlite"
    with RunStore(path) as store:
        store.record(_scenario("supply", "fib", 0.50, "rev-a"))
        store.record(_scenario("supply", "pid", 0.80, "rev-a", seed=2))
        store.record(_scenario("supply", "fib", 0.60, "rev-b", seed=11))
        store.record(_scenario("supply", "pid", 0.90, "rev-b", seed=12))
        store.record_bench(_bench("kernel", 1000), label="baseline")
        store.record_bench(_bench("kernel", 800), label="current")  # -20%
    return str(path)


# ---------------------------------------------------------------------------
# repro query


def test_raw_sql_in_every_format(db, capsys):
    assert main(["query", "SELECT COUNT(*) AS n FROM runs", "--db", db]) == 0
    rendered = capsys.readouterr().out
    assert "n" in rendered and "6" in rendered

    assert main(["query", "SELECT COUNT(*) AS n FROM runs", "--db", db,
                 "--format", "csv"]) == 0
    assert capsys.readouterr().out == "n\n6\n"

    assert main(["query", "SELECT COUNT(*) AS n FROM runs", "--db", db,
                 "--format", "json"]) == 0
    assert json.loads(capsys.readouterr().out) == [{"n": 6}]


def test_canned_ranking_through_the_cli(db, capsys):
    assert main(["query", "ranking", "--db", db, "--format", "csv"]) == 0
    lines = capsys.readouterr().out.splitlines()
    assert lines[0] == "policy,runs,mean,min,max"
    assert lines[1].startswith("pid,2,")  # best mean coverage first
    assert lines[2].startswith("fib,2,")


def test_regressions_sets_the_exit_code(db, capsys):
    assert main(["query", "regressions", "--db", db]) == 1  # -20% at 10%
    captured = capsys.readouterr()
    assert "kernel" in captured.out
    assert "regressed" in captured.err
    # a generous threshold turns the same store green
    assert main(["query", "regressions", "--db", db,
                 "--max-regression", "50%"]) == 0


def test_bad_sql_is_a_clean_error(db):
    with pytest.raises(SystemExit, match="query:"):
        main(["query", "SELECT nope FROM nowhere", "--db", db])


def test_missing_store_is_a_clean_error(tmp_path):
    with pytest.raises(SystemExit, match="no warehouse"):
        main(["query", "drift", "--db", str(tmp_path / "absent.sqlite")])


def test_backfill_seeds_a_store_from_committed_artifacts(
    tmp_path, monkeypatch, capsys
):
    monkeypatch.chdir(REPO_ROOT)
    db = str(tmp_path / "seeded.sqlite")
    assert main(["query", "SELECT COUNT(*) AS n FROM runs", "--db", db,
                 "--backfill", "--format", "csv"]) == 0
    captured = capsys.readouterr()
    assert "backfill:" in captured.err
    count = int(captured.out.splitlines()[1])
    assert count > 0  # committed goldens + bench baseline


# ---------------------------------------------------------------------------
# repro report


def test_report_between_two_revisions(db, capsys):
    assert main(["report", "--db", db, "--from-rev", "rev-a",
                 "--to-rev", "rev-b"]) == 0
    out = capsys.readouterr().out
    # coverage moved 0.65 -> 0.75 (+15.4%), over the 10% threshold
    assert "supply" in out and "coverage" in out
    assert "+15.4%" in out and "CHANGED" in out


def test_report_default_revisions_are_first_and_last(db, capsys):
    assert main(["report", "--db", db]) == 0
    assert "rev-a -> rev-b" in capsys.readouterr().out


def test_report_with_one_revision_explains_itself(tmp_path, capsys):
    path = tmp_path / "single.sqlite"
    with RunStore(path) as store:
        store.record(_scenario("supply", "fib", 0.5, "only-rev"))
    assert main(["report", "--db", str(path)]) == 0
    assert "fewer than two recorded revisions" in capsys.readouterr().out


def test_report_rejects_half_a_revision_pair(db):
    with pytest.raises(SystemExit, match="go together"):
        main(["report", "--db", db, "--from-rev", "rev-a"])


# ---------------------------------------------------------------------------
# the query-backed bench gate, end to end through the CLI


def test_bench_against_goes_through_the_warehouse(tmp_path, monkeypatch, capsys):
    store_path = tmp_path / "gate.sqlite"
    monkeypatch.chdir(tmp_path)  # keep bench artifacts out of the repo
    monkeypatch.setenv("REPRO_WAREHOUSE", str(store_path))
    capture.reset()
    try:
        code = main([
            "bench", "kernel", "--preset", "smoke",
            "--against", str(REPO_ROOT / "BENCH_baseline.json"),
            "--max-regression", "90%",
        ])
    finally:
        capture.reset()
    out = capsys.readouterr().out
    assert code == 0
    assert "kernel" in out and "ok" in out
    # the verdict is provable from the store: the baseline file was
    # ingested and the current run captured before the gate query ran
    with RunStore(store_path) as store:
        labels = dict(
            store.query(
                "SELECT COALESCE(label, ''), COUNT(*) FROM runs "
                "WHERE kind = 'bench' GROUP BY 1"
            ).rows
        )
    assert labels["current"] == 1
    assert labels["baseline"] > 0  # every committed baseline entry
