"""Automatic capture: env semantics, every runner, concurrent writers."""

from __future__ import annotations

import pytest

from repro.scenarios.registry import REGISTRY, load_builtin
from repro.scenarios.sweep import SweepExecutor, SweepSpec
from repro.warehouse import capture
from repro.warehouse.store import RunStore

load_builtin()


@pytest.fixture(autouse=True)
def _fresh_capture(tmp_path, monkeypatch):
    """Point capture at a per-test store and drop the process cache.

    Runs from an empty cwd so a fresh store's auto-backfill finds no
    committed artifacts — these tests count exactly the runs they make.
    """
    monkeypatch.chdir(tmp_path)
    monkeypatch.setenv("REPRO_WAREHOUSE", str(tmp_path / "capture.sqlite"))
    monkeypatch.setenv("REPRO_GIT_REV", "testrev")
    capture.reset()
    yield
    capture.reset()


def _store(tmp_path) -> RunStore:
    return RunStore(tmp_path / "capture.sqlite")


# ---------------------------------------------------------------------------
# env semantics


@pytest.mark.parametrize("token", ["0", "off", "false", "no", "NONE", ""])
def test_off_tokens_disable_capture(monkeypatch, token):
    monkeypatch.setenv("REPRO_WAREHOUSE", token)
    assert capture.store_path() is None
    assert not capture.enabled()
    assert capture.default_store() is None


def test_unset_env_means_the_default_path(monkeypatch):
    monkeypatch.delenv("REPRO_WAREHOUSE")
    assert capture.store_path() == capture.DEFAULT_PATH


def test_any_other_value_is_the_store_path(monkeypatch):
    monkeypatch.setenv("REPRO_WAREHOUSE", "/somewhere/else.sqlite")
    assert capture.store_path() == "/somewhere/else.sqlite"


def test_capture_failure_warns_once_and_never_raises(monkeypatch, tmp_path):
    # point the store at a path that cannot be created
    blocker = tmp_path / "blocker"
    blocker.write_text("")
    monkeypatch.setenv("REPRO_WAREHOUSE", str(blocker / "w.sqlite"))
    capture.reset()
    with pytest.warns(RuntimeWarning, match="warehouse capture failed"):
        REGISTRY.run("day", {}, scale="smoke")  # survives the bad store
    capture.reset()


# ---------------------------------------------------------------------------
# runner wiring


def test_scenario_run_is_captured(tmp_path):
    result = REGISTRY.run("day", {}, scale="smoke")
    with _store(tmp_path) as store:
        rows = store.query(
            "SELECT kind, name, spec_hash, seed, scale, git_rev "
            "FROM runs WHERE kind = 'scenario'"
        ).rows
        assert rows == [
            ["scenario", "day", result.spec.spec_hash(),
             result.spec.seed, "smoke", "testrev"]
        ]
        # the scenario's composed stack records its own run too
        assert store.kinds().get("stack") == 1
        wall = store.query(
            "SELECT wall_time_s FROM runs WHERE kind = 'scenario'"
        ).rows[0][0]
        assert wall > 0


def test_run_spec_entry_point_is_captured_once(tmp_path):
    spec = REGISTRY.build_spec("fig3", {}, scale="smoke")
    REGISTRY.run_spec(spec)
    with _store(tmp_path) as store:
        assert store.run_count("scenario") == 1


def test_parallel_sweep_workers_write_the_store_concurrently(tmp_path):
    spec = SweepSpec(
        scenario="day",
        grid={"model": ["fib", "var"]},
        seeds=2,
        scale="smoke",
        jobs=2,
    )
    result = SweepExecutor().run(spec)
    assert len(result.worker_pids) > 1  # really ran in worker processes
    with _store(tmp_path) as store:
        kinds = store.kinds()
        # 2 cells x 2 seeds, recorded from the workers under WAL
        assert kinds["scenario"] == 4
        assert kinds["sweep"] == 1  # the parent's aggregate
        sweep_row = store.query(
            "SELECT name, spec_hash, seed, scale FROM runs WHERE kind='sweep'"
        ).rows[0]
        assert sweep_row == [
            "day", spec.spec_hash(), result.base_seed, "smoke",
        ]
        # cell aggregates land as metric@cell_key rows
        suffixed = store.query(
            "SELECT COUNT(*) FROM metrics m JOIN runs r USING (run_id) "
            "WHERE r.kind='sweep' AND m.name LIKE '%@model=%'"
        ).rows[0][0]
        assert suffixed > 0


def test_stack_run_is_captured(tmp_path):
    from repro.api import ProbeSpec, Stack, SupplySpec, WorkloadSpec

    stack = Stack(
        supply=SupplySpec("fib"),
        workloads=(WorkloadSpec("gatling", qps=2.0),),
        probes=(ProbeSpec("ow-log"),),
        seed=7,
        horizon=120.0,
        name="capture-smoke",
    )
    report = stack.run()
    with _store(tmp_path) as store:
        rows = store.query(
            "SELECT kind, name, seed FROM runs WHERE kind = 'stack'"
        ).rows
        assert rows == [["stack", "capture-smoke", 7]]
        stored = dict(
            store.query(
                "SELECT m.name, m.value FROM metrics m JOIN runs r "
                "USING (run_id) WHERE r.kind = 'stack'"
            ).rows
        )
        assert stored == pytest.approx(report.metrics)


def test_matrix_run_is_captured(tmp_path):
    from repro.supply.matrix import run_matrix

    result = run_matrix(["fib"], ["gatling"], hours=0.1, scale="smoke")
    with _store(tmp_path) as store:
        kinds = store.kinds()
        assert kinds["matrix"] == 1
        assert kinds["scenario"] == 1  # the single cell run
        stored = dict(
            store.query(
                "SELECT m.name, m.value FROM metrics m JOIN runs r "
                "USING (run_id) WHERE r.kind = 'matrix'"
            ).rows
        )
        assert stored == pytest.approx(result.flat_metrics())


def test_bench_capture_stores_preset_as_scale(tmp_path):
    from repro.bench.harness import run_bench

    record = run_bench("kernel", preset="smoke")
    run_id = capture.record_bench(record, label="current")
    assert run_id is not None
    with _store(tmp_path) as store:
        row = store.query(
            "SELECT kind, name, scale, label, spec_hash FROM runs "
            "WHERE kind = 'bench'"
        ).rows[0]
        assert row == ["bench", "kernel", "smoke", "current",
                       record.spec_hash]
        eps = store.query(
            "SELECT value FROM metrics WHERE name = 'events_per_sec'"
        ).rows[0][0]
        assert eps == pytest.approx(record.events_per_sec)


# ---------------------------------------------------------------------------
# CLI opt-out


def test_cli_no_store_flag_disables_capture(tmp_path, monkeypatch, capsys):
    from repro.cli import main

    assert main(["fig3", "--scale", "smoke", "--no-store"]) == 0
    capsys.readouterr()
    assert not (tmp_path / "capture.sqlite").exists()
    # and the env now carries the opt-out for worker processes
    import os

    assert os.environ["REPRO_WAREHOUSE"] == "0"


def test_cli_runs_are_captured_by_default(tmp_path, capsys):
    from repro.cli import main

    assert main(["fig3", "--scale", "smoke"]) == 0
    capsys.readouterr()
    with _store(tmp_path) as store:
        assert store.run_count("scenario") == 1
