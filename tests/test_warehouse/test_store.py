"""RunStore contract: schema/migrations, idempotent recording, backfill."""

from __future__ import annotations

import sqlite3
from pathlib import Path

import pytest

from repro.scenarios.registry import REGISTRY, load_builtin
from repro.warehouse.schema import SCHEMA_VERSION, migrate, schema_version
from repro.warehouse.store import RunRecord, RunStore

load_builtin()

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def store(tmp_path):
    with RunStore(tmp_path / "w.sqlite") as s:
        yield s


def _record(**overrides) -> RunRecord:
    base = dict(
        kind="scenario",
        name="day",
        metrics={"coverage": 0.5, "cold_start_rate": 0.1},
        spec_hash="abc123",
        seed=317,
        scale="smoke",
        git_rev="rev1",
        payload={"params": {"model": "fib"}},
    )
    base.update(overrides)
    return RunRecord(**base)


# ---------------------------------------------------------------------------
# schema / migrations


def test_fresh_store_is_at_current_schema_version(store):
    assert store.schema_version == SCHEMA_VERSION


def test_migrate_brings_an_empty_database_up(tmp_path):
    conn = sqlite3.connect(tmp_path / "raw.sqlite")
    assert schema_version(conn) == 0
    assert migrate(conn) == SCHEMA_VERSION
    tables = {
        row[0]
        for row in conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table'"
        )
    }
    assert {"runs", "metrics", "artifacts"} <= tables
    conn.close()


def test_migrate_is_idempotent(tmp_path):
    conn = sqlite3.connect(tmp_path / "raw.sqlite")
    migrate(conn)
    assert migrate(conn) == SCHEMA_VERSION  # second pass: no-op, no raise
    conn.close()


def test_future_schema_version_is_rejected(tmp_path):
    path = tmp_path / "future.sqlite"
    conn = sqlite3.connect(path)
    conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
    conn.close()
    with pytest.raises(ValueError, match="newer than this"):
        RunStore(path)


def test_reopening_an_existing_store_round_trips(tmp_path):
    path = tmp_path / "w.sqlite"
    with RunStore(path) as first:
        run_id = first.record(_record())
    with RunStore(path) as second:
        assert second.schema_version == SCHEMA_VERSION
        table = second.query("SELECT run_id, kind, name FROM runs")
        assert table.rows == [[run_id, "scenario", "day"]]


# ---------------------------------------------------------------------------
# recording


def test_record_writes_runs_metrics_and_artifacts(store):
    run_id = store.record(
        _record(artifacts={"golden": "tests/golden/day.json"})
    )
    runs = store.query(
        "SELECT kind, name, spec_hash, seed, scale, git_rev FROM runs"
    )
    assert runs.rows == [["scenario", "day", "abc123", 317, "smoke", "rev1"]]
    metrics = store.query(
        "SELECT name, value FROM metrics WHERE run_id = ? ORDER BY name",
        (run_id,),
    )
    assert metrics.rows == [["cold_start_rate", 0.1], ["coverage", 0.5]]
    artifacts = store.query("SELECT name, path FROM artifacts")
    assert artifacts.rows == [["golden", "tests/golden/day.json"]]


def test_record_twice_is_idempotent_by_run_id(store):
    first = store.record(_record())
    second = store.record(_record())
    assert first == second
    assert store.run_count() == 1
    assert len(store.query("SELECT * FROM metrics")) == 2


def test_same_identity_different_metrics_is_a_new_run(store):
    store.record(_record())
    store.record(_record(metrics={"coverage": 0.7}))
    assert store.run_count() == 2  # metrics digest is part of the identity


def test_same_results_at_a_new_ambient_revision_is_a_new_run(
    store, monkeypatch
):
    # git_rev defaults are resolved before the run id is computed: a
    # deterministic run re-recorded at a new revision must land as its
    # own row (trend/report depend on it), not vanish into the ignore.
    monkeypatch.setenv("REPRO_GIT_REV", "rev-one")
    store.record(_record(git_rev=None))
    monkeypatch.setenv("REPRO_GIT_REV", "rev-two")
    store.record(_record(git_rev=None))
    assert store.run_count() == 2
    revs = store.query("SELECT git_rev FROM runs ORDER BY git_rev").rows
    assert revs == [["rev-one"], ["rev-two"]]


def test_created_at_does_not_change_the_run_id():
    early = _record(created_at="2026-01-01T00:00:00Z")
    late = _record(created_at="2026-06-01T00:00:00Z")
    assert early.run_id() == late.run_id()


def test_record_scenario_round_trip(store, monkeypatch):
    monkeypatch.setenv("REPRO_GIT_REV", "pinned")
    result = REGISTRY.run("day", {}, scale="smoke")
    run_id = store.record_scenario(result, wall_time_s=1.5)
    row = store.query(
        "SELECT kind, name, spec_hash, seed, scale, git_rev, wall_time_s "
        "FROM runs WHERE run_id = ?",
        (run_id,),
    ).rows[0]
    assert row == [
        "scenario", "day", result.spec.spec_hash(), result.spec.seed,
        "smoke", "pinned", 1.5,
    ]
    stored = dict(
        store.query(
            "SELECT name, value FROM metrics WHERE run_id = ?", (run_id,)
        ).rows
    )
    assert stored == pytest.approx(result.metrics)


def test_query_connection_is_read_only(store):
    store.record(_record())
    with pytest.raises(sqlite3.OperationalError):
        store.query("DELETE FROM runs")


# ---------------------------------------------------------------------------
# ingest / backfill


def test_backfill_ingests_committed_artifacts_idempotently(store):
    first = store.backfill(REPO_ROOT)  # baseline + golden traces
    assert first["baseline"] > 0
    assert first["golden"] > 0
    count = store.run_count()
    second = store.backfill(REPO_ROOT)
    assert second == first
    assert store.run_count() == count  # re-ingest changed nothing
    kinds = store.kinds()
    assert kinds["bench"] == first["baseline"]
    assert kinds["scenario"] == first["golden"]


def test_ingested_golden_matches_live_spec_hash(store):
    store.backfill(REPO_ROOT)
    stored = store.query(
        "SELECT spec_hash, seed, scale FROM runs WHERE name = 'day'"
    ).rows[0]
    spec = REGISTRY.build_spec("day", {}, scale="smoke")
    assert stored == [spec.spec_hash(), spec.seed, "smoke"]
