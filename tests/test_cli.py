"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_fig3_command(capsys):
    assert main(["fig3"]) == 0
    out = capsys.readouterr().out
    assert "Fig 3" in out
    assert "pilot_coverage" in out


def test_fig2_command_small(capsys):
    assert main(["fig2", "--count", "2000", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "limit_median_min" in out


def test_fig1_command_small_with_plot(capsys):
    assert main(["fig1", "--days", "0.25", "--nodes", "128", "--plot"]) == 0
    out = capsys.readouterr().out
    assert "idle_nodes_mean" in out
    assert "Fig 1c" in out and "Fig 1b" in out


def test_table1_command_small(capsys):
    assert main(["table1", "--days", "0.25", "--nodes", "128"]) == 0
    out = capsys.readouterr().out
    assert "TABLE I" in out
    assert "C2" in out


def test_day_command_small(capsys):
    assert main(["day", "--hours", "0.25", "--nodes", "24", "--no-load"]) == 0
    out = capsys.readouterr().out
    assert "TABLE II" in out


def test_day_var_command_small(capsys):
    assert main(["day", "--model", "var", "--hours", "0.25", "--nodes", "24",
                 "--no-load"]) == 0
    out = capsys.readouterr().out
    assert "TABLE III" in out


def test_fig7_command_small(capsys):
    assert main(["fig7", "--invocations", "2", "--graph-size", "2000"]) == 0
    out = capsys.readouterr().out
    assert "pagerank" in out


def test_optimize_command_small(capsys):
    assert main(["optimize", "--days", "0.2", "--nodes", "128"]) == 0
    out = capsys.readouterr().out
    assert "ari(2)" in out


def test_longterm_command_small(capsys):
    assert main(["longterm", "--weeks", "1", "--nodes", "128"]) == 0
    out = capsys.readouterr().out
    assert "Long-term" in out
