"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_fig3_command(capsys):
    assert main(["fig3"]) == 0
    out = capsys.readouterr().out
    assert "Fig 3" in out
    assert "pilot_coverage" in out


def test_fig2_command_small(capsys):
    assert main(["fig2", "--count", "2000", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "limit_median_min" in out


def test_fig1_command_small_with_plot(capsys):
    assert main(["fig1", "--days", "0.25", "--nodes", "128", "--plot"]) == 0
    out = capsys.readouterr().out
    assert "idle_nodes_mean" in out
    assert "Fig 1c" in out and "Fig 1b" in out


def test_table1_command_small(capsys):
    assert main(["table1", "--days", "0.25", "--nodes", "128"]) == 0
    out = capsys.readouterr().out
    assert "TABLE I" in out
    assert "C2" in out


def test_day_command_small(capsys):
    assert main(["day", "--hours", "0.25", "--nodes", "24", "--no-load"]) == 0
    out = capsys.readouterr().out
    assert "TABLE II" in out


def test_day_var_command_small(capsys):
    assert main(["day", "--model", "var", "--hours", "0.25", "--nodes", "24",
                 "--no-load"]) == 0
    out = capsys.readouterr().out
    assert "TABLE III" in out


def test_fig7_command_small(capsys):
    assert main(["fig7", "--invocations", "2", "--graph-size", "2000"]) == 0
    out = capsys.readouterr().out
    assert "pagerank" in out


def test_optimize_command_small(capsys):
    assert main(["optimize", "--days", "0.2", "--nodes", "128"]) == 0
    out = capsys.readouterr().out
    assert "ari(2)" in out


def test_longterm_command_small(capsys):
    assert main(["longterm", "--weeks", "1", "--nodes", "128"]) == 0
    out = capsys.readouterr().out
    assert "Long-term" in out


def test_list_command_catalogues_every_scenario(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig1", "fig2", "fig3", "table1", "day", "fig7",
                 "optimize", "longterm"):
        assert name in out
    assert "--days" in out and "quick" in out


def test_scale_preset_changes_defaults(capsys):
    assert main(["fig2", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert any(
        line.split(":")[0].strip() == "jobs" and line.split(":")[1].strip() == "2000"
        for line in out.splitlines() if ":" in line
    )


def test_run_persists_json_and_csv(tmp_path, capsys):
    json_path = tmp_path / "fig3.json"
    csv_path = tmp_path / "fig3.csv"
    assert main(["fig3", "--json", str(json_path), "--csv", str(csv_path)]) == 0
    import json as json_module

    payload = json_module.loads(json_path.read_text())
    assert payload["scenario"] == "fig3"
    assert payload["seed"] == 7
    assert 0.0 < payload["metrics"]["ready_coverage"] <= 1.0
    assert csv_path.read_text().startswith("scenario,scale,seed,metric,value")


def test_compose_without_list_flag_points_at_it(capsys):
    with pytest.raises(SystemExit, match="--list"):
        main(["compose"])


def test_compose_list_catalogues_components(capsys):
    assert main(["compose", "--list"]) == 0
    out = capsys.readouterr().out
    for kind in ("cluster:", "supply:", "middleware:", "router:",
                 "workload:", "probe:"):
        assert kind in out
    for name in ("slurm", "fib", "var", "static", "openwhisk",
                 "idleness-trace", "gatling", "slurm-sampler", "coverage",
                 "weighted-idle", "affinity-first", "failover",
                 "failover-window", "federation-stats",
                 "queue-aware", "ewma", "pid", "hybrid", "supply-stats"):
        assert name in out
    assert "queue_per_length" in out  # options are listed with defaults
    # nested controller gains render with their values, like the nested
    # cluster/router spec shapes above them
    assert "PidGains(kp=1.5, ki=0.25, kd=0.0)" in out
    # nested/list-valued stack options render as their shape, not reprs
    assert "clusters           [ClusterSpec]" in out
    assert "router             RouterSpec" in out
    assert "ScenarioSpec(" not in out and "SlurmConfig(" not in out


def test_compose_list_formats_nested_defaults():
    from repro.cli import _format_default
    from repro.api import ClusterSpec
    from repro.cluster.slurmctld import SlurmConfig
    from repro.hpcwhisk.config import SupplyModel

    from repro.supply import PidGains

    assert _format_default(SlurmConfig()) == "SlurmConfig(...)"
    assert _format_default(PidGains()) == "PidGains(kp=1.5, ki=0.25, kd=0.0)"
    assert (
        _format_default(PidGains(kp=2.0, ki=0.0, kd=0.0))
        == "PidGains(kp=2.0, ki=0.0, kd=0.0)"
    )
    assert _format_default((ClusterSpec(), ClusterSpec())) == "[ClusterSpec]"
    assert _format_default(SupplyModel.FIB) == "'fib'"
    assert _format_default([1, 2]) == "[1, 2]"
    assert _format_default(()) == "[]"
    assert _format_default(10.0) == "10.0"


def test_run_config_clusters_override(tmp_path, capsys):
    config = tmp_path / "stack.yaml"
    config.write_text(
        "name: cli-fed\n"
        "seed: 5\n"
        "horizon: 240\n"
        "stack:\n"
        "  cluster: {nodes: 3}\n"
        "  supply: fib\n"
        "  workloads:\n"
        "    - {name: idleness-trace, min_intensity: 2.0, outage_share: 0.0}\n"
        "  probes: [accounting]\n"
    )
    json_path = tmp_path / "out.json"
    assert main(["run", "--config", str(config), "--clusters", "2",
                 "--json", str(json_path)]) == 0
    capsys.readouterr()
    import json as json_module

    payload = json_module.loads(json_path.read_text())
    # per-member accounting proves the base cluster was replicated
    assert "prime_jobs_total@c0" in payload["metrics"]
    assert "prime_jobs_total@c1" in payload["metrics"]


def test_run_config_clusters_rejected_for_heterogeneous_configs(tmp_path):
    config = tmp_path / "fed.yaml"
    config.write_text(
        "name: fed\n"
        "horizon: 120\n"
        "stack:\n"
        "  clusters:\n"
        "    - {nodes: 4, cluster_id: hub}\n"
        "    - {nodes: 2, cluster_id: edge}\n"
        "  supply: fib\n"
    )
    with pytest.raises(SystemExit, match="heterogeneous"):
        main(["run", "--config", str(config), "--clusters", "3"])


def test_run_config_clusters_rejected_in_scenario_mode(tmp_path, capsys):
    config = tmp_path / "fig3.yaml"
    config.write_text("scenario: fig3\nscale: smoke\n")
    with pytest.raises(SystemExit, match="stack-mode"):
        main(["run", "--config", str(config), "--clusters", "2"])


def test_run_config_scenario_mode_matches_subcommand(tmp_path, capsys):
    config = tmp_path / "fig3.yaml"
    config.write_text("scenario: fig3\nscale: smoke\n")
    assert main(["run", "--config", str(config)]) == 0
    config_out = capsys.readouterr().out
    assert main(["fig3", "--scale", "smoke"]) == 0
    subcommand_out = capsys.readouterr().out
    assert config_out == subcommand_out


def test_run_config_stack_mode(tmp_path, capsys):
    config = tmp_path / "stack.yaml"
    config.write_text(
        "name: cli-stack\n"
        "seed: 3\n"
        "horizon: 300\n"
        "stack:\n"
        "  cluster: {nodes: 4}\n"
        "  supply: fib\n"
        "  workloads:\n"
        "    - {name: idleness-trace, min_intensity: 2.0, outage_share: 0.0}\n"
        "  probes: [slurm-sampler]\n"
    )
    json_path = tmp_path / "out.json"
    assert main(["run", "--config", str(config), "--json", str(json_path)]) == 0
    out = capsys.readouterr().out
    assert "cli-stack — composed-stack report" in out
    import json as json_module

    payload = json_module.loads(json_path.read_text())
    assert payload["stack"] == "cli-stack"
    assert payload["seed"] == 3
    assert "coverage" in payload["metrics"]


def test_run_config_usage_errors_exit_cleanly(tmp_path, capsys):
    missing = tmp_path / "nope.yaml"
    with pytest.raises(SystemExit):
        main(["run", "--config", str(missing)])
    bad = tmp_path / "bad.yaml"
    bad.write_text("stack:\n  probes: [bogus]\n")
    with pytest.raises(SystemExit):
        main(["run", "--config", str(bad)])


def test_sweep_emits_json_aggregate(capsys):
    assert main(["sweep", "fig3", "--seeds", "2", "-j", "1"]) == 0
    captured = capsys.readouterr()
    import json as json_module

    payload = json_module.loads(captured.out)
    assert payload["scenario"] == "fig3"
    assert payload["seeds"] == 2
    [cell] = payload["cells"]
    assert len(cell["run_seeds"]) == 2
    assert cell["metrics"]["ready_coverage"]["n"] == 2.0
    assert "mean" in cell["metrics"]["ready_coverage"]
    assert "2 run(s)" in captured.err


def test_sweep_day_grid_aggregates_coverage_and_acceptance(capsys):
    assert main(["sweep", "day", "--grid", "model=fib,var", "--seeds", "1",
                 "--scale", "smoke"]) == 0
    import json as json_module

    payload = json_module.loads(capsys.readouterr().out)
    assert [cell["params"] for cell in payload["cells"]] == [
        {"model": "fib"}, {"model": "var"},
    ]
    for cell in payload["cells"]:
        assert 0.0 <= cell["metrics"]["coverage"]["mean"] <= 1.0
        assert 0.0 <= cell["metrics"]["accepted_share"]["mean"] <= 1.0


def test_sweep_table_view(capsys):
    assert main(["sweep", "fig2", "--grid", "count=200,400", "--seeds", "2",
                 "--scale", "smoke", "--table"]) == 0
    out = capsys.readouterr().out
    assert "sweep fig2 @ smoke" in out
    assert "count=200" in out and "count=400" in out
    assert "±" in out


def test_sweep_rejects_unknown_parameter(capsys):
    with pytest.raises(SystemExit):
        main(["sweep", "fig3", "--grid", "bogus=1,2"])
