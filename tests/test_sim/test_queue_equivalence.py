"""Heap-vs-wheel equivalence: both queues, one observable kernel.

The calendar queue is only allowed to exist because it is
indistinguishable from the binary heap: identical pop order for any
interleaving of schedules and cancellations (including same-timestamp
ties, which the ``eid`` sequence number must break identically), and
``len``/``peek`` agreement throughout.  These tests drive random
schedule programs through both implementations side by side, plus unit
tests for the calendar-specific machinery (mid-drain pushes, width
resizing, heap degradation) and the cancel-of-head regression.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import CalendarQueue, Environment, HeapEventQueue, resolve_queue
from repro.sim.queue import DEFAULT_QUEUE

#: one scheduled operation: (delay, priority, cancel this one?)
_OPS = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.sampled_from([0, 1]),
        st.booleans(),
    ),
    min_size=1,
    max_size=60,
)


def _run_program(kind, ops):
    """Execute one schedule/cancel program; return the firing order."""
    env = Environment(queue=kind)
    fired = []
    events = []
    for delay, priority, _cancel in ops:
        event = env.event()
        event._ok = True
        event._value = None
        env.schedule(event, delay=delay, priority=priority)
        events.append(event)
    for index, event in enumerate(events):
        event.callbacks.append(
            lambda e, i=index: fired.append((env.now, i))
        )
    for index, (_d, _p, cancel) in enumerate(ops):
        if cancel:
            assert env.cancel(events[index])
    env.run()
    return fired


@given(ops=_OPS)
@settings(max_examples=200, deadline=None)
def test_heap_and_wheel_fire_identically(ops):
    assert _run_program("heap", ops) == _run_program("wheel", ops)


@given(ops=_OPS)
@settings(max_examples=100, deadline=None)
def test_auto_matches_heap(ops):
    assert _run_program("heap", ops) == _run_program("auto", ops)


@given(
    delays=st.lists(
        st.sampled_from([0.0, 0.5, 1.0, 1.5, 2.0]), min_size=2, max_size=40
    )
)
@settings(max_examples=100, deadline=None)
def test_same_timestamp_ties_break_identically(delays):
    """Heavily-colliding timestamps: FIFO tie-break must match exactly."""
    ops = [(delay, 1, False) for delay in delays]
    assert _run_program("heap", ops) == _run_program("wheel", ops)


@given(ops=_OPS)
@settings(max_examples=100, deadline=None)
def test_len_and_peek_agree_across_queues(ops):
    envs = [Environment(queue=kind) for kind in ("heap", "wheel")]
    all_events = []
    for env in envs:
        events = []
        for delay, priority, _cancel in ops:
            event = env.event()
            event._ok = True
            event._value = None
            env.schedule(event, delay=delay, priority=priority)
            events.append(event)
        all_events.append(events)
    for index, (_d, _p, cancel) in enumerate(ops):
        if cancel:
            for env, events in zip(envs, all_events):
                assert env.cancel(events[index])
    heap_env, wheel_env = envs
    assert len(heap_env) == len(wheel_env)
    assert heap_env.peek() == wheel_env.peek()
    # peek may garbage-collect tombstones; liveness must be unchanged
    assert len(heap_env) == len(wheel_env)
    heap_env.run()
    wheel_env.run()
    assert len(heap_env) == len(wheel_env) == 0


# ---------------------------------------------------------------------------
# satellite regression: cancel-of-head + schedule-at-same-timestamp


@pytest.mark.parametrize("kind", ["heap", "wheel"])
def test_cancel_head_then_schedule_same_timestamp(kind):
    """Cancelling the queue head then scheduling at its exact timestamp.

    The tombstone of the cancelled head must be discarded without
    swallowing the newcomer that lands on the same ``(time, priority)``
    slot — the wheel routes that newcomer through its mid-drain
    ``incoming`` path, which is exactly the interaction under test.
    """
    env = Environment(queue=kind)
    fired = []
    head = env.timeout(5.0)
    later = env.timeout(7.0)
    head.callbacks.append(lambda e: fired.append("head"))
    later.callbacks.append(lambda e: fired.append("later"))
    assert env.peek() == 5.0
    assert env.cancel(head)

    replacement = env.timeout(5.0)
    replacement.callbacks.append(lambda e: fired.append("replacement"))
    assert len(env) == 2
    assert env.peek() == 5.0
    env.run()
    assert fired == ["replacement", "later"]
    assert len(env) == 0


@pytest.mark.parametrize("kind", ["heap", "wheel"])
def test_cancel_head_mid_run_then_same_timestamp_schedule(kind):
    """The same interaction arranged *during* the run by a process."""
    env = Environment(queue=kind)
    fired = []

    def saboteur(env, victim):
        yield env.timeout(1.0)
        assert env.cancel(victim)
        replacement = env.timeout(victim_delay - env.now)
        replacement.callbacks.append(lambda e: fired.append("replacement"))

    victim_delay = 4.0
    victim = env.timeout(victim_delay)
    victim.callbacks.append(lambda e: fired.append("victim"))
    env.process(saboteur(env, victim))
    env.run()
    assert fired == ["replacement"]


# ---------------------------------------------------------------------------
# calendar-queue unit tests


def _entries(*times):
    return [(float(t), 1, eid, object()) for eid, t in enumerate(times)]


def test_wheel_mid_drain_push_orders_before_batch_tail():
    """A push into the draining bucket must not fire after later batch
    entries — the out-of-order incoming-heap case."""
    q = CalendarQueue(width=1.0, degrade=False)
    first, mid, tail = _entries(10.1, 10.2, 10.4)
    q.push(first)
    q.push(tail)
    assert q.pop() is first  # bucket 10 is now mid-drain
    q.push(mid)  # same bucket, must precede 10.4
    assert q.pop() is mid
    assert q.pop() is tail
    assert len(q) == 0
    with pytest.raises(IndexError):
        q.pop()


def test_wheel_incoming_pushes_arrive_out_of_order():
    q = CalendarQueue(width=1.0, degrade=False)
    a, b, c, d = _entries(10.1, 10.2, 10.3, 10.4)
    q.push(a)
    assert q.pop() is a
    # incoming pushes in non-time order: the incoming heap must sort them
    q.push(d)
    q.push(b)
    q.push(c)
    assert [q.pop() for _ in range(3)] == [b, c, d]


def test_wheel_peek_agrees_with_pop_and_len():
    q = CalendarQueue(width=1.0, degrade=False)
    entries = _entries(3.0, 1.0, 2.0, 1.0)
    for entry in entries:
        q.push(entry)
    while len(q):
        size = len(q)
        head = q.peek_entry()
        assert q.peek_entry() is head  # peek is idempotent
        assert len(q) == size  # ...and non-consuming
        assert q.pop() is head
        assert len(q) == size - 1
    assert q.peek_entry() is None


def test_wheel_resizes_toward_occupancy_band():
    """Sparse events over a wide span: the width must grow."""
    q = CalendarQueue(width=0.001, degrade=False)
    for entry in _entries(*[i * 50.0 for i in range(256)]):
        q.push(entry)
    start_width = q.width
    popped = [q.pop() for _ in range(256)]
    assert [e[0] for e in popped] == sorted(e[0] for e in popped)
    assert q.width > start_width
    assert not q.degraded


def test_wheel_degrades_to_heap_when_widening_never_helps():
    q = CalendarQueue(width=1e-9, degrade=True)
    times = [i * 1e9 for i in range(300)]
    for entry in _entries(*times):
        q.push(entry)
    popped = []
    while len(q):
        popped.append(q.pop())
    assert [e[0] for e in popped] == sorted(t for t in times)
    # degradation is an internal fallback: order held either way, and
    # the queue stays usable afterwards
    extra = (42.0, 1, 10_000, object())
    q.push(extra)
    assert q.pop() is extra


def test_wheel_degraded_mode_stays_correct():
    q = CalendarQueue(width=1.0, degrade=True)
    q._degrade_to_heap()
    assert q.degraded
    entries = _entries(5.0, 1.0, 3.0)
    for entry in entries:
        q.push(entry)
    assert q.peek_entry()[0] == 1.0
    assert [q.pop()[0] for _ in range(3)] == [1.0, 3.0, 5.0]
    with pytest.raises(IndexError):
        q.pop()


def test_wheel_rejects_bad_width():
    with pytest.raises(ValueError):
        CalendarQueue(width=0.0)
    with pytest.raises(ValueError):
        CalendarQueue(width=-1.0)


# ---------------------------------------------------------------------------
# queue selection


def test_resolve_queue_kinds():
    assert resolve_queue("heap") == ("heap", False)
    assert resolve_queue("wheel") == ("wheel", False)
    assert resolve_queue("auto") == ("wheel", True)
    with pytest.raises(ValueError):
        resolve_queue("bogus")


def test_resolve_queue_env_var(monkeypatch):
    monkeypatch.setenv("REPRO_QUEUE", "heap")
    assert resolve_queue(None) == ("heap", False)
    monkeypatch.setenv("REPRO_QUEUE", "wheel")
    assert resolve_queue(None) == ("wheel", False)
    # empty string means unset, falling back to the default
    monkeypatch.setenv("REPRO_QUEUE", "")
    assert resolve_queue(None) == resolve_queue(DEFAULT_QUEUE)
    # the explicit argument wins over the environment
    monkeypatch.setenv("REPRO_QUEUE", "heap")
    assert resolve_queue("wheel") == ("wheel", False)


def test_environment_queue_kind_attribute(monkeypatch):
    monkeypatch.delenv("REPRO_QUEUE", raising=False)
    assert Environment(queue="heap").queue_kind == "heap"
    assert Environment(queue="wheel").queue_kind == "wheel"
    assert Environment(queue="auto").queue_kind == "wheel"
    impl, _degrade = resolve_queue(None)
    assert Environment().queue_kind == impl
    assert isinstance(Environment(queue="heap")._queue, HeapEventQueue)
    assert isinstance(Environment(queue="wheel")._queue, CalendarQueue)
    with pytest.raises(ValueError):
        Environment(queue="bogus")
