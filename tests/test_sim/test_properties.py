"""Property-based tests of the DES kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Store


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
@settings(max_examples=200, deadline=None)
def test_clock_is_monotonic_and_events_fire_at_their_time(delays):
    env = Environment()
    fired = []
    for delay in delays:
        t = env.timeout(delay, value=delay)
        t.callbacks.append(lambda e: fired.append((env.now, e.value)))
    env.run()
    # Every event fired exactly at its scheduled delay…
    assert sorted(v for _, v in fired) == sorted(delays)
    for now, value in fired:
        assert now == value
    # …and the processing order was chronological.
    times = [now for now, _ in fired]
    assert times == sorted(times)


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=1000.0), min_size=2, max_size=20
    )
)
@settings(max_examples=100, deadline=None)
def test_equal_time_events_fire_in_creation_order(delays):
    env = Environment()
    order = []
    shared_delay = 5.0
    for index in range(len(delays)):
        t = env.timeout(shared_delay, value=index)
        t.callbacks.append(lambda e: order.append(e.value))
    env.run()
    assert order == sorted(order)


@given(items=st.lists(st.integers(), min_size=0, max_size=100))
@settings(max_examples=200, deadline=None)
def test_store_is_fifo_for_any_item_sequence(items):
    env = Environment()
    store = Store(env)
    received = []

    def consumer(env):
        for _ in range(len(items)):
            received.append((yield store.get()))

    def producer(env):
        for item in items:
            store.put(item)
            yield env.timeout(0.1)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert received == items


@given(
    n_consumers=st.integers(min_value=1, max_value=10),
    n_items=st.integers(min_value=0, max_value=40),
)
@settings(max_examples=100, deadline=None)
def test_store_conservation_no_item_lost_or_duplicated(n_consumers, n_items):
    env = Environment()
    store = Store(env)
    received = []

    def consumer(env):
        while True:
            received.append((yield store.get()))

    for _ in range(n_consumers):
        env.process(consumer(env))

    def producer(env):
        for i in range(n_items):
            store.put(i)
            if i % 3 == 0:
                yield env.timeout(1)
        yield env.timeout(0)

    env.process(producer(env))
    env.run(until=1000)
    assert sorted(received) == list(range(n_items))


@given(
    work=st.lists(
        st.tuples(
            st.floats(min_value=0.1, max_value=50.0),  # hold time
            st.floats(min_value=0.0, max_value=50.0),  # arrival offset
        ),
        min_size=1,
        max_size=20,
    ),
    capacity=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=100, deadline=None)
def test_resource_never_exceeds_capacity(work, capacity):
    from repro.sim import Resource

    env = Environment()
    resource = Resource(env, capacity=capacity)
    concurrency = [0]
    peak = [0]

    def user(env, arrival, hold):
        yield env.timeout(arrival)
        with resource.request() as request:
            yield request
            concurrency[0] += 1
            peak[0] = max(peak[0], concurrency[0])
            yield env.timeout(hold)
            concurrency[0] -= 1

    for hold, arrival in work:
        env.process(user(env, arrival, hold))
    env.run()
    assert peak[0] <= capacity
    assert concurrency[0] == 0
