"""Unit tests for named random streams."""

import numpy as np

from repro.sim import RandomStreams


def test_same_seed_same_stream():
    a = RandomStreams(seed=7).stream("jobs")
    b = RandomStreams(seed=7).stream("jobs")
    assert np.allclose(a.random(16), b.random(16))


def test_different_names_differ():
    streams = RandomStreams(seed=7)
    a = streams.stream("jobs").random(16)
    b = streams.stream("warmup").random(16)
    assert not np.allclose(a, b)


def test_different_seeds_differ():
    a = RandomStreams(seed=1).stream("jobs").random(16)
    b = RandomStreams(seed=2).stream("jobs").random(16)
    assert not np.allclose(a, b)


def test_stream_is_cached():
    streams = RandomStreams(seed=0)
    assert streams.stream("x") is streams.stream("x")


def test_order_independence():
    """Name → stream mapping must not depend on creation order."""
    forward = RandomStreams(seed=3)
    _ = forward.stream("a")
    va = forward.stream("b").random(8)

    backward = RandomStreams(seed=3)
    vb = backward.stream("b").random(8)  # created first this time
    assert np.allclose(va, vb)


def test_fork_is_independent():
    parent = RandomStreams(seed=5)
    child = parent.fork("worker-1")
    assert child.seed != parent.seed
    a = parent.stream("x").random(8)
    b = child.stream("x").random(8)
    assert not np.allclose(a, b)


def test_fork_deterministic():
    a = RandomStreams(seed=5).fork("w").stream("x").random(8)
    b = RandomStreams(seed=5).fork("w").stream("x").random(8)
    assert np.allclose(a, b)
