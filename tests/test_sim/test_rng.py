"""Unit tests for named random streams."""

import numpy as np

from repro.sim import RandomStreams


def test_same_seed_same_stream():
    a = RandomStreams(seed=7).stream("jobs")
    b = RandomStreams(seed=7).stream("jobs")
    assert np.allclose(a.random(16), b.random(16))


def test_different_names_differ():
    streams = RandomStreams(seed=7)
    a = streams.stream("jobs").random(16)
    b = streams.stream("warmup").random(16)
    assert not np.allclose(a, b)


def test_different_seeds_differ():
    a = RandomStreams(seed=1).stream("jobs").random(16)
    b = RandomStreams(seed=2).stream("jobs").random(16)
    assert not np.allclose(a, b)


def test_stream_is_cached():
    streams = RandomStreams(seed=0)
    assert streams.stream("x") is streams.stream("x")


def test_order_independence():
    """Name → stream mapping must not depend on creation order."""
    forward = RandomStreams(seed=3)
    _ = forward.stream("a")
    va = forward.stream("b").random(8)

    backward = RandomStreams(seed=3)
    vb = backward.stream("b").random(8)  # created first this time
    assert np.allclose(va, vb)


def test_fork_is_independent():
    parent = RandomStreams(seed=5)
    child = parent.fork("worker-1")
    assert child.seed != parent.seed
    a = parent.stream("x").random(8)
    b = child.stream("x").random(8)
    assert not np.allclose(a, b)


def test_fork_deterministic():
    a = RandomStreams(seed=5).fork("w").stream("x").random(8)
    b = RandomStreams(seed=5).fork("w").stream("x").random(8)
    assert np.allclose(a, b)


def test_seed_property_and_int_coercion():
    assert RandomStreams(seed=7).seed == 7
    assert RandomStreams(seed=np.int64(7)).seed == 7


def test_stream_isolation_under_extra_draws():
    """Drawing more from one stream never perturbs a sibling stream."""
    plain = RandomStreams(seed=11)
    noisy = RandomStreams(seed=11)
    _ = noisy.stream("jobs").random(1000)  # extra consumption
    expected = plain.stream("warmup").random(16)
    observed = noisy.stream("warmup").random(16)
    assert np.array_equal(expected, observed)


def test_known_stream_anchor():
    """Byte-stability anchor for the CRC32 -> SeedSequence pipeline.

    If this fails, every committed golden trace and recorded experiment
    seed in EXPERIMENTS.md is invalidated — do not 'fix' the expectation
    without regenerating all of them.
    """
    values = RandomStreams(seed=2022).stream("jobs").random(4)
    assert np.allclose(
        values,
        [0.650010574129, 0.752213317425, 0.445371714712, 0.935176584576],
        atol=1e-12,
    )
    assert RandomStreams(seed=2022).fork("w").seed == 2498259012


def test_repr_lists_created_streams():
    streams = RandomStreams(seed=1)
    streams.stream("b")
    streams.stream("a")
    text = repr(streams)
    assert "seed=1" in text and "'a'" in text and "'b'" in text
