"""Property tests of the event allocation pool's safety contract.

The kernel recycles processed ``Timeout``/bare ``Event`` objects through
a per-environment freelist, guarded by a refcount check: an event the
test (or any other code) still holds must never be handed out again
while held, and a recycled object must come back with pristine state.
Pooling must be observable *only* through ``events_reused`` — never
through values, identities, or callback behaviour.
"""

import os
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.instrument import KernelProbe
from repro.sim import COMPILED_LOOP, Environment, Event, resolve_pool
from repro.sim.core import DEFAULT_POOL

#: one timeout per op: (delay, hold a reference to it?)
_OPS = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        st.booleans(),
    ),
    min_size=1,
    max_size=80,
)


@given(ops=_OPS)
@settings(max_examples=200, deadline=None)
def test_held_events_never_recycled_and_values_survive(ops):
    env = Environment()
    held = {}
    fired = {}
    for index, (delay, hold) in enumerate(ops):
        timeout = env.timeout(delay, value=index)
        timeout.callbacks.append(
            lambda e, i=index: fired.setdefault(i, e.value)
        )
        if hold:
            held[index] = timeout
    env.run()

    # every timeout fired with the value it was created with — recycling
    # (which resets _value) must happen strictly after callbacks
    assert fired == {i: i for i in range(len(ops))}
    # held events keep their settled state and stay distinct objects
    for index, timeout in held.items():
        assert timeout.processed and timeout.ok and timeout.value == index
    assert len({id(t) for t in held.values()}) == len(held)
    # the pool never hands a held object back out
    for _ in range(len(ops)):
        fresh = env.timeout(0.0)
        assert all(fresh is not t for t in held.values())


@given(ops=_OPS)
@settings(max_examples=100, deadline=None)
def test_recycled_timeouts_come_back_pristine(ops):
    env = Environment()
    for index, (delay, _hold) in enumerate(ops):
        env.timeout(delay, value=index)
    env.run()
    # whatever the pool now holds must behave like freshly-built objects
    for index in range(len(ops)):
        timeout = env.timeout(1.0, value=("fresh", index))
        assert not timeout.processed
        assert timeout.triggered  # a Timeout is born scheduled
        assert timeout.callbacks == []
        assert timeout._value == ("fresh", index)
        assert timeout.ok and not timeout.defused
    event = env.event()
    assert not event.triggered and not event.processed
    assert event.callbacks == [] and event._ok is None


def test_reuse_counter_counts_only_recycled_objects():
    env = Environment()
    with KernelProbe() as probe:
        for wave in range(4):
            for i in range(100):
                env.timeout(float(i % 7))
            env.run()
    # first wave allocates, the three others recycle every object
    assert env.events_reused == 300
    assert probe.stats.events_reused == 300


def test_pool_opt_out_via_argument_and_env_var(monkeypatch):
    env = Environment(pool=False)
    for _ in range(3):
        for i in range(50):
            env.timeout(float(i))
        env.run()
    assert env.events_reused == 0
    assert env._timeout_pool is None and env._event_pool is None

    monkeypatch.setenv("REPRO_POOL", "0")
    assert resolve_pool(None) is False
    via_env = Environment()
    assert via_env._timeout_pool is None
    monkeypatch.setenv("REPRO_POOL", "1")
    assert resolve_pool(None) is True
    monkeypatch.delenv("REPRO_POOL")
    assert resolve_pool(None) is DEFAULT_POOL


def test_condition_children_are_not_recycled_while_waited_on():
    env = Environment()

    def waiter():
        first = env.timeout(1.0, value="a")
        second = env.timeout(2.0, value="b")
        result = yield first & second
        assert result == {first: "a", second: "b"}

    env.process(waiter())
    # flood with other timeouts so the pool is busy while the condition
    # still references its children
    for i in range(200):
        env.timeout(0.5 + (i % 5) * 0.1)
    env.run()


_SUBPROCESS_SIM = """
import repro.sim as sim
env = sim.Environment()
total = []
def worker():
    for i in range(50):
        value = yield env.timeout(0.25, value=i)
        total.append(value)
for _ in range(4):
    env.process(worker())
env.run()
print(sim.COMPILED_LOOP, env.now, env.events_processed, sum(total))
"""


def _run_sim(extra_env):
    env = dict(os.environ, PYTHONPATH="src", **extra_env)
    return subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SIM],
        capture_output=True, text=True, env=env, cwd=os.path.join(
            os.path.dirname(__file__), os.pardir, os.pardir
        ),
    )


def test_repro_compiled_zero_selects_pure_loop_with_identical_results():
    default = _run_sim({})
    pure = _run_sim({"REPRO_COMPILED": "0"})
    assert default.returncode == 0, default.stderr
    assert pure.returncode == 0, pure.stderr
    assert pure.stdout.split()[0] == "False"
    # same clock, same event count, same values — the loop implementation
    # is unobservable apart from the COMPILED_LOOP flag itself
    assert default.stdout.split()[1:] == pure.stdout.split()[1:]


def test_compiled_flag_matches_hotloop_module():
    from repro.sim import _hotloop

    assert COMPILED_LOOP == _hotloop.COMPILED
    assert isinstance(Event.PENDING, object)
