"""Unit tests for resources and stores."""

import pytest

from repro.sim import FilterStore, Interrupt, PriorityItem, PriorityStore, Resource, Store


# ----------------------------------------------------------------------
# Resource
# ----------------------------------------------------------------------
def test_resource_grants_up_to_capacity(env):
    resource = Resource(env, capacity=2)
    grants = []

    def user(env, tag, hold):
        with resource.request() as request:
            yield request
            grants.append((tag, env.now))
            yield env.timeout(hold)

    for i in range(3):
        env.process(user(env, i, 10))
    env.run()
    assert grants == [(0, 0.0), (1, 0.0), (2, 10.0)]


def test_resource_fifo_order(env):
    resource = Resource(env, capacity=1)
    order = []

    def user(env, tag):
        with resource.request() as request:
            yield request
            order.append(tag)
            yield env.timeout(1)

    for i in range(5):
        env.process(user(env, i))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_resource_release_is_idempotent(env):
    resource = Resource(env, capacity=1)

    def user(env):
        request = resource.request()
        yield request
        resource.release(request)
        resource.release(request)  # second release: no-op

    env.process(user(env))
    env.run()
    assert resource.count == 0


def test_resource_capacity_validation(env):
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_queue_length(env):
    resource = Resource(env, capacity=1)

    def holder(env):
        with resource.request() as request:
            yield request
            yield env.timeout(10)

    def waiter(env):
        with resource.request() as request:
            yield request

    env.process(holder(env))
    env.process(waiter(env))
    env.run(until=5)
    assert resource.count == 1
    assert resource.queue_length == 1


def test_cancelled_request_leaves_queue(env):
    resource = Resource(env, capacity=1)

    def holder(env):
        with resource.request() as request:
            yield request
            yield env.timeout(10)

    def impatient(env):
        request = resource.request()
        try:
            yield request
        except Interrupt:
            request.cancel()

    env.process(holder(env))
    impatient_proc = env.process(impatient(env))

    def killer(env):
        yield env.timeout(2)
        impatient_proc.interrupt()

    env.process(killer(env))
    env.run(until=5)
    assert resource.queue_length == 0


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------
def test_store_put_then_get(env):
    store = Store(env)
    store.put("a")

    def consumer(env):
        item = yield store.get()
        return item

    proc = env.process(consumer(env))
    env.run()
    assert proc.value == "a"


def test_store_get_blocks_until_put(env):
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append((item, env.now))

    def producer(env):
        yield env.timeout(4)
        store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [("late", 4.0)]


def test_store_fifo_items_and_getters(env):
    store = Store(env)
    order = []

    def consumer(env, tag):
        item = yield store.get()
        order.append((tag, item))

    env.process(consumer(env, "first"))
    env.process(consumer(env, "second"))

    def producer(env):
        yield env.timeout(1)
        store.put("x")
        store.put("y")

    env.process(producer(env))
    env.run()
    assert order == [("first", "x"), ("second", "y")]


def test_store_drain_atomically_empties(env):
    store = Store(env)
    for i in range(5):
        store.put(i)
    drained = store.drain()
    assert drained == [0, 1, 2, 3, 4]
    assert len(store) == 0


def test_store_drain_does_not_wake_getters(env):
    store = Store(env)
    got = []

    def consumer(env):
        got.append((yield store.get()))

    env.process(consumer(env))
    env.run(until=1)
    store.drain()
    env.run(until=2)
    assert got == []
    store.put("finally")
    env.run(until=3)
    assert got == ["finally"]


def test_store_cancelled_getter_skipped(env):
    store = Store(env)
    got = []

    def canceller(env):
        getter = store.get()
        yield env.timeout(1)
        getter.cancel()

    def consumer(env):
        got.append((yield store.get()))

    env.process(canceller(env))
    env.process(consumer(env))

    def producer(env):
        yield env.timeout(5)
        store.put("item")

    env.process(producer(env))
    env.run()
    assert got == ["item"]


def test_peek_all_does_not_consume(env):
    store = Store(env)
    store.put(1)
    store.put(2)
    assert store.peek_all() == [1, 2]
    assert len(store) == 2


# ----------------------------------------------------------------------
# FilterStore / PriorityStore
# ----------------------------------------------------------------------
def test_filter_store_matches_predicate(env):
    store = FilterStore(env)
    store.put({"kind": "a"})
    store.put({"kind": "b"})

    def consumer(env):
        item = yield store.get(lambda m: m["kind"] == "b")
        return item

    proc = env.process(consumer(env))
    env.run()
    assert proc.value == {"kind": "b"}
    assert store.peek_all() == [{"kind": "a"}]


def test_filter_store_waits_for_matching_item(env):
    store = FilterStore(env)
    store.put(1)

    def consumer(env):
        item = yield store.get(lambda v: v > 10)
        return (item, env.now)

    def producer(env):
        yield env.timeout(3)
        store.put(99)

    proc = env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert proc.value == (99, 3.0)


def test_priority_store_orders_items(env):
    store = PriorityStore(env)
    for priority, payload in [(3, "c"), (1, "a"), (2, "b")]:
        store.put(PriorityItem(priority, payload))

    def consumer(env):
        out = []
        for _ in range(3):
            item = yield store.get()
            out.append(item.item)
        return out

    proc = env.process(consumer(env))
    env.run()
    assert proc.value == ["a", "b", "c"]
