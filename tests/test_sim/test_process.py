"""Unit tests for generator processes and interrupts."""

import pytest

from repro.sim import Interrupt, InterruptError


def test_process_runs_and_returns(env):
    def body(env):
        yield env.timeout(3)
        return "done"

    process = env.process(body(env))
    env.run()
    assert process.processed and process.value == "done"
    assert not process.is_alive


def test_process_bootstraps_at_current_instant(env):
    ticks = []

    def body(env):
        ticks.append(env.now)
        yield env.timeout(1)

    env.process(body(env))
    env.run()
    assert ticks == [0.0]


def test_processes_wait_on_each_other(env):
    def child(env):
        yield env.timeout(2)
        return 21

    def parent(env):
        value = yield env.process(child(env))
        return value * 2

    parent_proc = env.process(parent(env))
    env.run()
    assert parent_proc.value == 42


def test_failed_child_raises_in_parent(env):
    def child(env):
        yield env.timeout(1)
        raise ValueError("child broke")

    def parent(env):
        with pytest.raises(ValueError, match="child broke"):
            yield env.process(child(env))
        return "recovered"

    parent_proc = env.process(parent(env))
    env.run()
    assert parent_proc.value == "recovered"


def test_uncaught_process_exception_fails_process(env):
    def body(env):
        yield env.timeout(1)
        raise RuntimeError("kaboom")

    process = env.process(body(env))
    with pytest.raises(RuntimeError, match="kaboom"):
        env.run()
    assert process.failed


def test_interrupt_delivers_cause(env):
    causes = []

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt as interrupt:
            causes.append((env.now, interrupt.cause))

    def attacker(env, target):
        yield env.timeout(5)
        target.interrupt({"reason": "test"})

    target = env.process(victim(env))
    env.process(attacker(env, target))
    env.run()
    assert causes == [(5.0, {"reason": "test"})]


def test_interrupt_preempts_same_instant_timeout(env):
    """An interrupt issued at t (by an already-resumed process) wins over
    the victim's own timeout expiring at t, because interrupts are URGENT."""
    outcome = []

    def attacker(env):
        yield env.timeout(5)
        victim_proc.interrupt()

    def victim(env):
        try:
            yield env.timeout(5)
            outcome.append("timeout")
        except Interrupt:
            outcome.append("interrupt")

    # The attacker is created first, so its t=5 wakeup processes first.
    env.process(attacker(env))
    victim_proc = env.process(victim(env))
    env.run()
    assert outcome == ["interrupt"]


def test_interrupting_dead_process_raises(env):
    def body(env):
        yield env.timeout(1)

    process = env.process(body(env))
    env.run()
    with pytest.raises(InterruptError):
        process.interrupt()


def test_self_interrupt_rejected(env):
    def body(env):
        me = env.active_process
        with pytest.raises(InterruptError):
            me.interrupt()
        yield env.timeout(1)

    process = env.process(body(env))
    env.run()
    assert process.ok


def test_interrupted_process_can_rewait_original_event(env):
    log = []

    def victim(env):
        target = env.timeout(10, "original")
        try:
            yield target
        except Interrupt:
            log.append(("interrupted", env.now))
        value = yield target  # re-wait the same event
        log.append((value, env.now))

    def attacker(env, target):
        yield env.timeout(4)
        target.interrupt()

    proc = env.process(victim(env))
    env.process(attacker(env, proc))
    env.run()
    assert log == [("interrupted", 4.0), ("original", 10.0)]


def test_interrupt_does_not_resume_twice(env):
    """After an interrupt detaches from its target, the target settling
    must not resume the generator a second time."""
    resumes = []

    def victim(env):
        try:
            yield env.timeout(10)
        except Interrupt:
            pass
        resumes.append(env.now)
        yield env.timeout(100)

    def attacker(env, target):
        yield env.timeout(3)
        target.interrupt()

    proc = env.process(victim(env))
    env.process(attacker(env, proc))
    env.run(until=50)
    assert resumes == [3.0]


def test_yielding_non_event_is_an_error(env):
    def body(env):
        yield 42  # type: ignore[misc]

    process = env.process(body(env))
    with pytest.raises(TypeError):
        env.run()
    assert process.failed


def test_run_until_event_returns_value(env):
    def body(env):
        yield env.timeout(7)
        return "payload"

    process = env.process(body(env))
    assert env.run(until=process) == "payload"
    assert env.now == 7.0


def test_run_until_time_stops_clock_exactly(env):
    def ticker(env):
        while True:
            yield env.timeout(1)

    env.process(ticker(env))
    env.run(until=10.5)
    assert env.now == 10.5


def test_is_alive_transitions(env):
    def body(env):
        yield env.timeout(2)

    process = env.process(body(env))
    assert process.is_alive
    env.run()
    assert not process.is_alive
