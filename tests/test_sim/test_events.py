"""Unit tests for the event layer."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event


def test_event_starts_pending(env):
    event = Event(env)
    assert not event.triggered
    assert not event.processed
    with pytest.raises(AttributeError):
        _ = event.value


def test_succeed_carries_value(env):
    event = Event(env)
    event.succeed("payload")
    assert event.triggered and event.ok
    assert event.value == "payload"


def test_succeed_twice_raises(env):
    event = Event(env)
    event.succeed()
    with pytest.raises(RuntimeError):
        event.succeed()


def test_fail_then_succeed_raises(env):
    event = Event(env)
    event.fail(ValueError("boom"))
    with pytest.raises(RuntimeError):
        event.succeed()


def test_fail_requires_exception(env):
    event = Event(env)
    with pytest.raises(TypeError):
        event.fail("not an exception")  # type: ignore[arg-type]


def test_unhandled_failure_crashes_run(env):
    event = Event(env)
    event.fail(RuntimeError("nobody caught me"))
    with pytest.raises(RuntimeError, match="nobody caught me"):
        env.run()


def test_defused_failure_is_silent(env):
    event = Event(env)
    event.fail(RuntimeError("quiet"))
    event.defused = True
    env.run()  # no raise


def test_callbacks_fire_in_order(env):
    event = Event(env)
    seen = []
    event.callbacks.append(lambda e: seen.append(1))
    event.callbacks.append(lambda e: seen.append(2))
    event.succeed()
    env.run()
    assert seen == [1, 2]


def test_timeout_fires_at_delay(env):
    timeout = env.timeout(5.0, value="v")
    env.run()
    assert env.now == 5.0
    assert timeout.processed and timeout.value == "v"


def test_timeout_negative_delay_rejected(env):
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeouts_fire_in_scheduling_order_at_same_instant(env):
    order = []
    for tag in ("a", "b", "c"):
        t = env.timeout(1.0, value=tag)
        t.callbacks.append(lambda e: order.append(e.value))
    env.run()
    assert order == ["a", "b", "c"]


def test_anyof_settles_on_first(env):
    def proc(env):
        slow, fast = env.timeout(10, "slow"), env.timeout(2, "fast")
        result = yield slow | fast
        assert list(result.values()) == ["fast"]
        assert env.now == 2.0

    env.process(proc(env))
    env.run()


def test_allof_waits_for_all(env):
    def proc(env):
        result = yield env.timeout(1, "x") & env.timeout(3, "y")
        assert sorted(result.values()) == ["x", "y"]
        assert env.now == 3.0

    env.process(proc(env))
    env.run()


def test_empty_allof_succeeds_immediately(env):
    condition = AllOf(env, [])
    env.run()
    assert condition.processed and condition.ok


def test_empty_anyof_succeeds_immediately(env):
    condition = AnyOf(env, [])
    env.run()
    assert condition.processed


def test_condition_with_failed_child_fails(env):
    def proc(env):
        bad = Event(env)
        bad.fail(ValueError("child failed"))
        with pytest.raises(ValueError, match="child failed"):
            yield bad | env.timeout(10)

    process = env.process(proc(env))
    env.run()
    assert process.ok


def test_condition_mixed_environments_rejected():
    env_a, env_b = Environment(), Environment()
    with pytest.raises(ValueError):
        AllOf(env_a, [Event(env_a), Event(env_b)])


def test_condition_with_already_processed_child(env):
    done = env.timeout(0)
    env.run()
    assert done.processed

    def proc(env):
        result = yield done & env.timeout(1)
        assert done in result

    env.process(proc(env))
    env.run()


def test_nested_conditions(env):
    def proc(env):
        a, b, c = env.timeout(1, "a"), env.timeout(2, "b"), env.timeout(9, "c")
        result = yield (a & b) | c
        assert env.now == 2.0
        return result

    process = env.process(proc(env))
    env.run()
    assert process.ok
