"""Property-based tests of the optimized kernel's scheduling contract.

Random *schedule programs* — mixed delays, priorities, and cancellations
— executed on the kernel must preserve the total ``(time, priority,
FIFO)`` order, and ``len(env)`` must always equal the number of live
(non-cancelled) entries, in agreement with :meth:`Environment.peek`.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment

#: one scheduled operation: (delay, priority, cancel this one?)
_OPS = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.sampled_from([0, 1]),
        st.booleans(),
    ),
    min_size=1,
    max_size=60,
)


def _schedule_program(env, ops):
    """Schedule one bare event per op; return (events, cancel_flags)."""
    events = []
    for delay, priority, _cancel in ops:
        event = env.event()
        event._ok = True
        event._value = None
        env.schedule(event, delay=delay, priority=priority)
        events.append(event)
    return events


@given(ops=_OPS)
@settings(max_examples=200, deadline=None)
def test_total_order_is_time_priority_fifo(ops):
    env = Environment()
    fired = []
    events = _schedule_program(env, ops)
    for index, event in enumerate(events):
        event.callbacks.append(
            lambda e, i=index: fired.append((env.now, i))
        )
    cancelled = {
        index for index, (_d, _p, cancel) in enumerate(ops) if cancel
    }
    for index in cancelled:
        assert env.cancel(events[index])
    env.run()

    live = [i for i in range(len(ops)) if i not in cancelled]
    # every live event fired exactly once, at its scheduled time...
    assert sorted(i for _t, i in fired) == live
    for now, index in fired:
        assert now == ops[index][0]
    # ...and in total (time, priority, schedule-sequence) order.
    expected = sorted(live, key=lambda i: (ops[i][0], ops[i][1], i))
    assert [i for _t, i in fired] == expected


@given(ops=_OPS)
@settings(max_examples=200, deadline=None)
def test_len_counts_live_entries_and_agrees_with_peek(ops):
    env = Environment()
    events = _schedule_program(env, ops)
    assert len(env) == len(ops)

    cancelled = set()
    for index, (_d, _p, cancel) in enumerate(ops):
        if cancel:
            assert env.cancel(events[index])
            cancelled.add(index)
            # cancelling twice is a no-op, not a double-count
            assert not env.cancel(events[index])
    assert len(env) == len(ops) - len(cancelled)

    live = [i for i in range(len(ops)) if i not in cancelled]
    if live:
        next_index = min(live, key=lambda i: (ops[i][0], ops[i][1], i))
        assert env.peek() == ops[next_index][0]
    else:
        assert env.peek() == float("inf")
        assert len(env) == 0
    # peek may garbage-collect tombstones but never changes liveness
    assert len(env) == len(live)

    env.run()
    assert len(env) == 0
    assert env.peek() == float("inf")


@given(
    ops=_OPS,
    victim_data=st.data(),
)
@settings(max_examples=100, deadline=None)
def test_cancellation_during_the_run_is_honoured(ops, victim_data):
    """A process cancelling future events mid-run: victims never fire."""
    env = Environment()
    fired = []
    events = _schedule_program(env, ops)
    for index, event in enumerate(events):
        event.callbacks.append(lambda e, i=index: fired.append(i))

    count = len(ops)
    victims = victim_data.draw(
        st.sets(st.integers(min_value=0, max_value=count - 1), max_size=count)
    )

    def assassin(env):
        # act at t=0 URGENT-ish: before any positive-delay event fires
        for index in sorted(victims):
            env.cancel(events[index])
        yield env.timeout(0.0)

    env.process(assassin(env))
    env.run()

    # zero-delay victims may have fired before the assassin ran at t=0
    # (the process bootstrap is itself an event); all others must not.
    for index in victims:
        if ops[index][0] > 0.0:
            assert index not in fired
    survivors = {i for i in range(count) if i not in victims}
    assert survivors <= set(fired)
    assert len(env) == 0


@given(delays=st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_cancelled_timeouts_never_resume_anyone(delays):
    """Timeout cancellation composes with ordinary timeouts."""
    env = Environment()
    timeouts = [env.timeout(delay) for delay in delays]
    for victim in timeouts[::2]:
        assert env.cancel(victim)
    env.run()
    for index, timeout in enumerate(timeouts):
        assert timeout.processed == (index % 2 == 1)
    assert len(env) == 0
