"""Tests for the periodic monitor."""

import numpy as np
import pytest

from repro.sim.monitor import Monitor


def test_monitor_samples_on_cadence(env):
    state = {"v": 0.0}

    def driver(env):
        while True:
            yield env.timeout(1.0)
            state["v"] += 1.0

    env.process(driver(env))
    monitor = Monitor(env, interval=10.0).probe("v", lambda: state["v"]).start()
    env.run(until=95.0)
    times, values = monitor.series("v")
    assert len(times) == 10  # t = 0, 10, ..., 90
    assert times[1] - times[0] == 10.0
    assert values[0] == 0.0
    assert values[-1] == pytest.approx(90.0, abs=1.0)


def test_monitor_multiple_probes_aligned(env):
    monitor = (
        Monitor(env, interval=5.0)
        .probe("t", lambda: env.now)
        .probe("2t", lambda: 2 * env.now)
        .start()
    )
    env.run(until=21.0)
    _, a = monitor.series("t")
    _, b = monitor.series("2t")
    assert np.allclose(b, 2 * a)
    assert len(monitor) == 5


def test_monitor_stop(env):
    monitor = Monitor(env, interval=1.0).probe("x", lambda: 1.0).start()
    env.run(until=5.5)
    monitor.stop()
    env.run(until=20.0)
    assert len(monitor) == 6


def test_monitor_mean(env):
    values = iter([1.0, 3.0, 5.0, 100.0])
    monitor = Monitor(env, interval=1.0).probe("x", lambda: next(values)).start()
    env.run(until=2.5)
    assert monitor.mean("x") == pytest.approx(3.0)


def test_monitor_validation(env):
    with pytest.raises(ValueError):
        Monitor(env, interval=0.0)
    monitor = Monitor(env)
    with pytest.raises(RuntimeError):
        monitor.start()  # no probes
    monitor.probe("x", lambda: 0.0).start()
    with pytest.raises(RuntimeError):
        monitor.probe("y", lambda: 0.0)  # after start
    with pytest.raises(RuntimeError):
        monitor.start()  # twice
    with pytest.raises(KeyError):
        monitor.series("nope")
    assert np.isnan(monitor.mean("x"))  # no samples yet (env not run)


def test_monitor_buffers_are_float64(env):
    """Post-optimization storage: compact double buffers, float64 out."""
    from array import array

    counter = iter(range(100))
    monitor = Monitor(env, interval=1.0).probe("n", lambda: next(counter)).start()
    env.run(until=4.5)
    assert isinstance(monitor.times, array)
    assert monitor.times.typecode == "d"
    assert monitor.samples["n"].typecode == "d"
    times, values = monitor.series("n")
    assert times.dtype == np.float64
    assert values.dtype == np.float64
    # int probe values were coerced to double on append
    assert values.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_monitor_interrupt_stops_sampling_cleanly(env):
    monitor = Monitor(env, interval=2.0).probe("t", lambda: env.now).start()
    env.run(until=5.0)
    monitor._proc.interrupt("external")  # a direct interrupt, not stop()
    env.run(until=20.0)
    assert len(monitor) == 3  # t = 0, 2, 4
    assert not monitor._proc.is_alive


def test_monitor_stop_before_start_is_noop(env):
    monitor = Monitor(env, interval=1.0).probe("x", lambda: 0.0)
    monitor.stop()  # never started: nothing to interrupt
    assert len(monitor) == 0


def test_monitor_double_stop_is_safe(env):
    monitor = Monitor(env, interval=1.0).probe("x", lambda: 1.0).start()
    env.run(until=2.5)
    monitor.stop()
    env.run(until=3.5)
    monitor.stop()  # second stop on a dead process: no InterruptError
    env.run(until=10.0)
    assert len(monitor) == 3


def test_monitor_streaming_mode_drops_history(env):
    """keep_history=False: O(1) memory, aggregates still exact."""
    values = iter([1.0, 3.0, 5.0, 7.0])
    monitor = (
        Monitor(env, interval=1.0, keep_history=False)
        .probe("x", lambda: next(values))
        .start()
    )
    env.run(until=3.5)
    assert len(monitor) == 4
    assert len(monitor.times) == 0
    assert len(monitor.samples["x"]) == 0
    stats = monitor.stats("x")
    assert stats.count == 4
    assert stats.min == 1.0 and stats.max == 7.0
    assert monitor.mean("x") == pytest.approx(4.0)
    with pytest.raises(RuntimeError, match="keep_history=False"):
        monitor.series("x")
    with pytest.raises(KeyError):
        monitor.stats("nope")


def test_monitor_streams_match_history_mode(env):
    """In history mode the streaming aggregates run alongside the buffers
    and must agree with the numpy re-scan."""
    monitor = Monitor(env, interval=2.0).probe("t", lambda: env.now).start()
    env.run(until=11.0)
    _, values = monitor.series("t")
    stats = monitor.stats("t")
    assert stats.count == len(values)
    assert stats.total == float(np.sum(values))
    assert stats.min == float(values.min())
    assert stats.max == float(values.max())
    assert monitor.mean("t") == float(np.mean(values))


def test_monitor_streaming_mean_nan_without_samples(env):
    monitor = Monitor(env, interval=1.0, keep_history=False).probe(
        "x", lambda: 1.0
    )
    assert np.isnan(monitor.mean("x"))


def test_monitor_probe_alignment_when_stopped(env):
    """All probe series stay the same length however sampling ends."""
    monitor = (
        Monitor(env, interval=3.0)
        .probe("a", lambda: env.now)
        .probe("b", lambda: -env.now)
        .start()
    )
    env.run(until=7.0)
    monitor.stop()
    env.run(until=30.0)
    assert len(monitor.times) == len(monitor.samples["a"]) == len(monitor.samples["b"])
