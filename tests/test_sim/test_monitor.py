"""Tests for the periodic monitor."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.sim.monitor import Monitor


def test_monitor_samples_on_cadence(env):
    state = {"v": 0.0}

    def driver(env):
        while True:
            yield env.timeout(1.0)
            state["v"] += 1.0

    env.process(driver(env))
    monitor = Monitor(env, interval=10.0).probe("v", lambda: state["v"]).start()
    env.run(until=95.0)
    times, values = monitor.series("v")
    assert len(times) == 10  # t = 0, 10, ..., 90
    assert times[1] - times[0] == 10.0
    assert values[0] == 0.0
    assert values[-1] == pytest.approx(90.0, abs=1.0)


def test_monitor_multiple_probes_aligned(env):
    monitor = (
        Monitor(env, interval=5.0)
        .probe("t", lambda: env.now)
        .probe("2t", lambda: 2 * env.now)
        .start()
    )
    env.run(until=21.0)
    _, a = monitor.series("t")
    _, b = monitor.series("2t")
    assert np.allclose(b, 2 * a)
    assert len(monitor) == 5


def test_monitor_stop(env):
    monitor = Monitor(env, interval=1.0).probe("x", lambda: 1.0).start()
    env.run(until=5.5)
    monitor.stop()
    env.run(until=20.0)
    assert len(monitor) == 6


def test_monitor_mean(env):
    values = iter([1.0, 3.0, 5.0, 100.0])
    monitor = Monitor(env, interval=1.0).probe("x", lambda: next(values)).start()
    env.run(until=2.5)
    assert monitor.mean("x") == pytest.approx(3.0)


def test_monitor_validation(env):
    with pytest.raises(ValueError):
        Monitor(env, interval=0.0)
    monitor = Monitor(env)
    with pytest.raises(RuntimeError):
        monitor.start()  # no probes
    monitor.probe("x", lambda: 0.0).start()
    with pytest.raises(RuntimeError):
        monitor.probe("y", lambda: 0.0)  # after start
    with pytest.raises(RuntimeError):
        monitor.start()  # twice
    with pytest.raises(KeyError):
        monitor.series("nope")
    assert np.isnan(monitor.mean("x"))  # no samples yet (env not run)
