"""Tests for the long-term pattern experiment (future-work extension)."""

import pytest

from repro.experiments.longterm import run_longterm


@pytest.fixture(scope="module")
def result():
    return run_longterm(seed=5, weeks=1, num_nodes=256, diurnal_amplitude=0.6)


def test_diurnal_pattern_detected(result):
    """With strong diurnal modulation, the 24 h autocorrelation is clearly
    positive and the hourly profile has visible peak-to-trough contrast."""
    assert result.daily_autocorrelation > 0.15
    assert result.stats["profile_peak_to_trough"] > 1.5
    assert result.hourly_profile.shape == (24,)


def test_adaptive_supply_not_worse(result):
    """Pattern-aware supply must at least match the static baseline."""
    assert result.adaptive_ready_share >= result.static_coverage.ready_share - 0.01


def test_no_pattern_when_amplitude_zero():
    flat = run_longterm(seed=5, weeks=1, num_nodes=256, diurnal_amplitude=0.0)
    assert abs(flat.daily_autocorrelation) < 0.5  # mostly OU noise
    assert flat.stats["profile_peak_to_trough"] < 3.5


def test_render(result):
    text = result.render()
    assert "Long-term" in text
    assert "adaptive_gain" in text
