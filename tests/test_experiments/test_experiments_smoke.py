"""Reduced-scale smoke tests of every packaged experiment.

The benchmarks run these at (near-)paper scale; here they run small and
fast, asserting structure plus the most robust qualitative anchors.
"""

import pytest

from repro.experiments import (
    run_day,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig7,
    run_table1,
)
from repro.experiments.day import DayConfig
from repro.hpcwhisk.config import SupplyModel


def test_fig1_small():
    result = run_fig1(seed=1, horizon=6 * 3600.0, num_nodes=256)
    assert result.stats["num_periods"] > 50
    values, probabilities = result.count_cdf()
    assert len(values) == len(probabilities)
    assert result.stats["period_median_s"] > 30.0


def test_fig2_small():
    result = run_fig2(seed=1, count=2000)
    assert len(result.jobs) == 2000
    assert 40 <= result.stats["limit_median_min"] <= 85
    assert result.stats["slack_mean_min"] > 0


def test_fig3():
    result = run_fig3(seed=7)
    assert 0.5 <= result.ready_coverage <= 1.0
    assert result.pilots_started >= 2
    assert "pilot_coverage" in result.stats


def test_table1_small():
    result = run_table1(seed=1, horizon=12 * 3600.0, num_nodes=256)
    assert set(result.results) == {"A1", "A2", "A3", "B", "C1", "C2"}
    text = result.render()
    assert "TABLE I" in text
    # The qualitative ordering that motivates the paper's choice of A1/C2.
    assert result.coverage("C2").num_jobs <= result.coverage("B").num_jobs
    assert result.best_ready_set() in {"C1", "C2", "A1"}


def test_day_fib_small():
    result = run_day(
        DayConfig(model=SupplyModel.FIB, seed=317, horizon=3600.0,
                  num_nodes=64, with_load=True, qps=2.0)
    )
    assert result.gatling is not None
    assert result.gatling.total == pytest.approx(7200, abs=10)
    assert 0 <= result.slurm_used_share <= 1
    assert result.simulation.total_surface > 0
    text = result.render()
    assert "TABLE II" in text


def test_day_var_small():
    result = run_day(
        DayConfig(model=SupplyModel.VAR, seed=321, horizon=3600.0,
                  num_nodes=64, with_load=False)
    )
    assert result.gatling is None
    assert "TABLE III" in result.render()
    # var pilots are flexible jobs.
    flexible = [
        j for j in result.config.__dict__.items()
    ]
    assert result.config.model is SupplyModel.VAR


def test_day_series_shapes():
    result = run_day(
        DayConfig(model=SupplyModel.FIB, seed=1, horizon=1800.0,
                  num_nodes=32, with_load=False)
    )
    series = result.series
    assert len(series["sample_times"]) == len(series["idle_counts"])
    assert len(series["idle_counts"]) == len(series["whisk_counts"])
    assert (series["available_counts"] >= series["whisk_counts"]).all()


def test_fig7_small():
    result = run_fig7(seed=1, invocations=5, graph_size=6000)
    assert {row.function for row in result.rows} == {"bfs", "mst", "pagerank"}
    for row in result.rows:
        # Real wall-clock timing of small kernels is noisy: wide tolerance.
        assert row.advantage == pytest.approx(0.15, abs=0.10)


def test_fig7_memory_widening():
    low = run_fig7(seed=1, invocations=3, graph_size=3000, memory_mb=512.0)
    for row in low.rows:
        assert row.advantage > 1.5
