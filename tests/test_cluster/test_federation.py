"""Federation facade: membership, merged queries, merged accounting."""

import pytest

from repro.cluster.accounting import merge_accounts, summarize
from repro.cluster.federation import Federation
from repro.cluster.job import JobSpec
from repro.cluster.node import NodeState
from repro.cluster.slurmctld import SlurmConfig, SlurmController


def make_federation(env, sizes=(4, 2)):
    members = [
        SlurmController(
            env,
            SlurmConfig(num_nodes=size, cluster_id=f"m{index}"),
        )
        for index, size in enumerate(sizes)
    ]
    return Federation(members), members


def test_membership_and_primary(env):
    federation, members = make_federation(env)
    assert federation.ids == ["m0", "m1"]
    assert federation.primary is members[0]
    assert federation.cluster("m1") is members[1]
    assert "m0" in federation and "nope" not in federation
    assert len(federation) == 2
    assert federation.total_nodes == 6


def test_unknown_member_lists_known_ids(env):
    federation, _members = make_federation(env)
    with pytest.raises(KeyError, match="members:"):
        federation.cluster("zz")


def test_duplicate_cluster_ids_rejected(env):
    a = SlurmController(env, SlurmConfig(num_nodes=1, cluster_id="dup"))
    b = SlurmController(env, SlurmConfig(num_nodes=1, cluster_id="dup"))
    with pytest.raises(ValueError, match="duplicate cluster_id"):
        Federation([a, b])


def test_empty_federation_rejected():
    with pytest.raises(ValueError, match="at least one member"):
        Federation([])


def test_default_cluster_id_resolves_to_c0(env):
    controller = SlurmController(env, SlurmConfig(num_nodes=1))
    assert controller.cluster_id == "c0"


def test_merged_queues_and_idle_views(env):
    federation, members = make_federation(env)
    members[0].submit(JobSpec(name="a", num_nodes=1, time_limit=600.0))
    members[1].submit(JobSpec(name="b", num_nodes=1, time_limit=600.0))
    assert len(federation.pending_jobs()) == 2
    env.run(until=120.0)
    assert len(federation.running_jobs()) == 2
    idle = federation.idle_node_names()
    assert set(idle) == {"m0", "m1"}
    assert federation.idle_node_count() == 4  # 6 nodes, 2 allocated


def test_merged_accounting_and_utilization(env):
    federation, members = make_federation(env)
    members[0].submit(
        JobSpec(name="a", num_nodes=1, time_limit=600.0, actual_runtime=300.0)
    )
    members[1].submit(
        JobSpec(name="b", num_nodes=1, time_limit=600.0, actual_runtime=300.0)
    )
    env.run(until=1000.0)
    per_member = federation.summarize()
    assert set(per_member) == {"m0", "m1"}
    merged = federation.summarize_merged()
    assert merged["main"].jobs_total == 2
    # Every job ran ~300 s on one node; merged node-seconds add.
    assert merged["main"].node_seconds == pytest.approx(
        per_member["m0"]["main"].node_seconds
        + per_member["m1"]["main"].node_seconds
    )
    # utilization weights members by node count: (u0*4 + u1*2) / 6
    u0 = members[0].utilization(0.0, 1000.0)
    u1 = members[1].utilization(0.0, 1000.0)
    assert federation.utilization(0.0, 1000.0) == pytest.approx(
        (u0 * 4 + u1 * 2) / 6
    )


def test_merge_accounts_concatenates_wait_times(env):
    federation, members = make_federation(env)
    members[0].submit(
        JobSpec(name="a", num_nodes=1, time_limit=600.0, actual_runtime=60.0)
    )
    env.run(until=200.0)
    sides = [summarize(member) for member in federation]
    merged = merge_accounts(sides)
    assert merged["main"].wait_times == sides[0]["main"].wait_times


def test_fail_and_restore_cluster(env):
    federation, members = make_federation(env, sizes=(2, 2))
    federation.fail_cluster("m1")
    env.run(until=1.0)
    assert all(
        node.state is NodeState.DOWN for node in members[1].nodes.values()
    )
    assert all(
        node.state is NodeState.IDLE for node in members[0].nodes.values()
    )
    federation.restore_cluster("m1")
    assert all(
        node.state is NodeState.IDLE for node in members[1].nodes.values()
    )
    federation.close_interval_logs()
