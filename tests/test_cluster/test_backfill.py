"""Unit tests for the backfill planner (pure planning, no side effects)."""

import numpy as np
import pytest

from repro.cluster.backfill import BackfillScheduler, SchedulerConfig
from repro.cluster.job import Job, JobSpec
from repro.cluster.node import Node
from repro.cluster.partition import default_partitions


def make_nodes(count):
    return {f"n{i:04d}": Node(f"n{i:04d}") for i in range(count)}


def make_job(now=0.0, **kwargs):
    return Job(JobSpec(**kwargs), submit_time=now)


@pytest.fixture
def partitions():
    return default_partitions()


@pytest.fixture
def scheduler():
    return BackfillScheduler(SchedulerConfig(), rng=np.random.default_rng(0))


def plan(scheduler, partitions, nodes, pending, now=0.0, committed=None, **kwargs):
    return scheduler.plan(
        now=now,
        pending=pending,
        nodes=nodes,
        partitions=partitions,
        committed=committed or {},
        **kwargs,
    )


# ----------------------------------------------------------------------
# basic placement
# ----------------------------------------------------------------------
def test_starts_job_on_idle_nodes(scheduler, partitions):
    nodes = make_nodes(4)
    job = make_job(name="j", num_nodes=2, time_limit=600)
    result = plan(scheduler, partitions, nodes, [job])
    assert len(result.starts) == 1
    decision = result.starts[0]
    assert decision.job is job
    assert len(decision.nodes) == 2
    assert decision.granted_time == 600


def test_insufficient_nodes_blocks(scheduler, partitions):
    nodes = make_nodes(1)
    job = make_job(name="wide", num_nodes=3)
    result = plan(scheduler, partitions, nodes, [job])
    assert result.starts == []


def test_priority_order_within_tier(scheduler, partitions):
    nodes = make_nodes(1)
    low = make_job(name="low", priority=1.0)
    high = make_job(name="high", priority=9.0)
    result = plan(scheduler, partitions, nodes, [low, high])
    assert [d.job.spec.name for d in result.starts] == ["high"]


def test_begin_time_gates_eligibility(scheduler, partitions):
    nodes = make_nodes(2)
    future = make_job(name="later", begin_time=500.0)
    result = plan(scheduler, partitions, nodes, [future], now=100.0)
    assert result.starts == []
    result = plan(scheduler, partitions, nodes, [future], now=500.0)
    assert len(result.starts) == 1


def test_pinned_job_gets_its_nodes(scheduler, partitions):
    nodes = make_nodes(4)
    job = make_job(name="pinned", num_nodes=1, required_nodes=("n0002",))
    result = plan(scheduler, partitions, nodes, [job])
    assert result.starts[0].nodes[0].name == "n0002"


def test_pinned_job_blocked_by_busy_required_node(scheduler, partitions):
    nodes = make_nodes(2)
    blocker = make_job(name="blocker", num_nodes=1)
    nodes["n0000"].allocate(blocker, 0.0)
    blocker.state = blocker.state.__class__.RUNNING
    job = make_job(name="pinned", num_nodes=1, required_nodes=("n0000",))
    result = plan(scheduler, partitions, nodes, [job])
    assert result.starts == []


# ----------------------------------------------------------------------
# tier-0 backfill & windows
# ----------------------------------------------------------------------
def test_tier0_fixed_fits_only_within_window(scheduler, partitions):
    nodes = make_nodes(1)
    # A pinned tier-1 job claims the node at t=600.
    upcoming = make_job(name="prime", num_nodes=1, required_nodes=("n0000",), begin_time=600.0)
    short_pilot = make_job(name="p-short", partition="whisk", time_limit=240, priority=240)
    long_pilot = make_job(name="p-long", partition="whisk", time_limit=1200, priority=1200)
    result = plan(scheduler, partitions, nodes, [upcoming, long_pilot, short_pilot])
    # Only the short pilot fits into the 600 s window.
    assert [d.job.spec.name for d in result.starts] == ["p-short"]
    assert result.reservations["n0000"] == 600.0


def test_tier0_longest_first_in_unbounded_window(scheduler, partitions):
    nodes = make_nodes(1)
    short_pilot = make_job(name="p-short", partition="whisk", time_limit=240, priority=240)
    long_pilot = make_job(name="p-long", partition="whisk", time_limit=1200, priority=1200)
    result = plan(scheduler, partitions, nodes, [short_pilot, long_pilot])
    assert [d.job.spec.name for d in result.starts] == ["p-long"]


def test_tier0_best_fit_node_choice(scheduler, partitions):
    """The pilot should take the node with the smallest adequate window."""
    nodes = make_nodes(2)
    claim_a = make_job(name="a", num_nodes=1, required_nodes=("n0000",), begin_time=1000.0)
    claim_b = make_job(name="b", num_nodes=1, required_nodes=("n0001",), begin_time=400.0)
    pilot = make_job(name="p", partition="whisk", time_limit=300, priority=300)
    result = plan(scheduler, partitions, nodes, [claim_a, claim_b, pilot])
    assert result.starts[0].nodes[0].name == "n0001"


def test_flexible_job_granted_slot_multiple(partitions):
    config = SchedulerConfig(flex_extension_min=1.0, flex_extension_max=1.0)
    scheduler = BackfillScheduler(config, rng=np.random.default_rng(0))
    nodes = make_nodes(1)
    claim = make_job(name="prime", num_nodes=1, required_nodes=("n0000",), begin_time=500.0)
    flexible = make_job(
        name="flex", partition="whisk", time_limit=7200, time_min=120
    )
    result = plan(scheduler, partitions, nodes, [claim, flexible])
    assert len(result.starts) == 1
    granted = result.starts[0].granted_time
    # 500 s window → floor to slot (120 s) → 480 s.
    assert granted == 480.0


def test_flexible_extension_fraction(partitions):
    config = SchedulerConfig(flex_extension_min=0.5, flex_extension_max=0.5)
    scheduler = BackfillScheduler(config, rng=np.random.default_rng(0))
    nodes = make_nodes(1)
    flexible = make_job(name="flex", partition="whisk", time_limit=7200, time_min=120)
    result = plan(scheduler, partitions, nodes, [flexible])
    granted = result.starts[0].granted_time
    # fit = 7200 (unbounded window, capped at limit); granted = floor(120 + 0.5*7080)
    assert granted == config.floor_slot(120 + 0.5 * (7200 - 120))


def test_flexible_respects_time_min(partitions):
    config = SchedulerConfig(flex_extension_min=1.0, flex_extension_max=1.0)
    scheduler = BackfillScheduler(config, rng=np.random.default_rng(0))
    nodes = make_nodes(1)
    claim = make_job(name="prime", num_nodes=1, required_nodes=("n0000",), begin_time=100.0)
    flexible = make_job(name="flex", partition="whisk", time_limit=7200, time_min=120)
    result = plan(scheduler, partitions, nodes, [claim, flexible])
    assert result.starts == []  # 100 s window < time_min


def test_include_tier0_false_skips_pilots(scheduler, partitions):
    nodes = make_nodes(2)
    pilot = make_job(name="p", partition="whisk", time_limit=240)
    prime = make_job(name="j", partition="main", time_limit=240)
    result = plan(scheduler, partitions, nodes, [pilot, prime], include_tier0=False)
    assert [d.job.spec.name for d in result.starts] == ["j"]


def test_flex_budget_limits_starts(partitions):
    config = SchedulerConfig(max_flex_starts_per_pass=2, flex_extension_min=1.0)
    scheduler = BackfillScheduler(config, rng=np.random.default_rng(0))
    nodes = make_nodes(8)
    flex_jobs = [
        make_job(name=f"f{i}", partition="whisk", time_limit=7200, time_min=120)
        for i in range(8)
    ]
    result = plan(scheduler, partitions, nodes, flex_jobs)
    assert len(result.starts) == 2


def test_fixed_budget_limits_starts(partitions):
    config = SchedulerConfig(max_fixed_starts_per_pass=3)
    scheduler = BackfillScheduler(config, rng=np.random.default_rng(0))
    nodes = make_nodes(8)
    pilots = [
        make_job(name=f"p{i}", partition="whisk", time_limit=240) for i in range(8)
    ]
    result = plan(scheduler, partitions, nodes, pilots)
    assert len(result.starts) == 3


# ----------------------------------------------------------------------
# preemption planning
# ----------------------------------------------------------------------
def _running_pilot(nodes, node_name, granted=5400.0):
    pilot = make_job(name="pilot", partition="whisk", time_limit=granted)
    pilot.state = pilot.state.__class__.RUNNING
    pilot.start_time = 0.0
    pilot.granted_time = granted
    pilot.nodes = (nodes[node_name],)
    nodes[node_name].allocate(pilot, 0.0)
    return pilot


def test_pinned_prime_preempts_pilot(scheduler, partitions):
    nodes = make_nodes(1)
    pilot = _running_pilot(nodes, "n0000")
    prime = make_job(name="prime", num_nodes=1, required_nodes=("n0000",))
    result = plan(scheduler, partitions, nodes, [prime], now=100.0)
    assert len(result.preemptions) == 1
    assert result.preemptions[0].victim is pilot
    assert result.commits.get("n0000") == prime.job_id


def test_unpinned_prime_preempts_when_needed(scheduler, partitions):
    nodes = make_nodes(2)
    pilot = _running_pilot(nodes, "n0001")
    prime = make_job(name="prime", num_nodes=2)
    result = plan(scheduler, partitions, nodes, [prime])
    assert [p.victim for p in result.preemptions] == [pilot]
    # Both the idle node and the pilot's node are committed.
    assert set(result.commits) == {"n0000", "n0001"}


def test_equal_tier_job_never_preempted(scheduler, partitions):
    nodes = make_nodes(1)
    running = make_job(name="running", partition="main", time_limit=1000)
    running.state = running.state.__class__.RUNNING
    running.start_time = 0.0
    running.granted_time = 1000.0
    running.nodes = (nodes["n0000"],)
    nodes["n0000"].allocate(running, 0.0)
    prime = make_job(name="prime", num_nodes=1, required_nodes=("n0000",))
    result = plan(scheduler, partitions, nodes, [prime], now=10.0)
    assert result.preemptions == []
    assert result.starts == []


def test_committed_nodes_not_given_to_pilots(scheduler, partitions):
    nodes = make_nodes(1)
    pilot = make_job(name="pilot", partition="whisk", time_limit=240)
    result = plan(
        scheduler, partitions, nodes, [pilot], committed={"n0000": 999}
    )
    assert result.starts == []


def test_no_pilot_on_node_with_immediate_claim(scheduler, partitions):
    """A node claimed *now* by an eligible-but-waiting prime job must not
    receive a pilot."""
    nodes = make_nodes(1)
    # prime is eligible now but its node is occupied by a running pilot.
    running = _running_pilot(nodes, "n0000")
    prime = make_job(name="prime", num_nodes=1, required_nodes=("n0000",))
    new_pilot = make_job(name="p2", partition="whisk", time_limit=240)
    result = plan(scheduler, partitions, nodes, [prime, new_pilot], now=50.0)
    names = [d.job.spec.name for d in result.starts]
    assert "p2" not in names
