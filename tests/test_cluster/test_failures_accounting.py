"""Tests for node-failure injection and the sacct-like accounting."""

import pytest

from repro.cluster import JobSpec, JobState, NodeState, SlurmConfig, SlurmController
from repro.cluster.accounting import prime_wait_comparison, render_sacct, summarize
from repro.sim import Interrupt


def test_fail_idle_node_goes_down(env):
    controller = SlurmController(env, SlurmConfig(num_nodes=2))
    env.run(until=1)
    controller.fail_node("n0000")
    env.run(until=5)
    assert controller.nodes["n0000"].state is NodeState.DOWN


def test_fail_node_kills_running_job(env):
    controller = SlurmController(env, SlurmConfig(num_nodes=1))
    job = controller.submit(JobSpec(name="j", time_limit=1000, actual_runtime=1000))
    env.run(until=50)
    controller.fail_node("n0000")
    env.run(until=100)
    assert job.state is JobState.NODE_FAIL
    assert controller.nodes["n0000"].state is NodeState.DOWN


def test_fail_node_hard_kills_body_without_drain(env):
    controller = SlurmController(env, SlurmConfig(num_nodes=1))
    events = []

    def body(env, job, nodes):
        try:
            yield env.timeout(10**9)
        except Interrupt as interrupt:
            events.append((env.now, interrupt.cause.signal.value))
            # A graceful body would drain here; SIGKILL means no time for it.
            raise

    job = controller.submit(
        JobSpec(name="pilot", partition="whisk", time_limit=3600, body=body)
    )
    env.run(until=50)
    controller.fail_node("n0000")
    env.run(until=100)
    assert job.state is JobState.NODE_FAIL
    assert events and events[0][1] == "SIGKILL"


def test_restore_node_returns_to_service(env):
    controller = SlurmController(env, SlurmConfig(num_nodes=1))
    env.run(until=1)
    controller.fail_node("n0000")
    env.run(until=5)
    controller.restore_node("n0000")
    job = controller.submit(JobSpec(name="j", time_limit=60, actual_runtime=60))
    env.run(until=200)
    assert job.state is JobState.COMPLETED


def test_down_node_not_scheduled(env):
    controller = SlurmController(env, SlurmConfig(num_nodes=2))
    env.run(until=1)
    controller.fail_node("n0000")
    env.run(until=5)
    job = controller.submit(JobSpec(name="wide", num_nodes=2, time_limit=60))
    env.run(until=120)
    assert job.is_pending  # only one schedulable node remains


# ----------------------------------------------------------------------
# accounting
# ----------------------------------------------------------------------
def run_cluster_with_jobs(env):
    controller = SlurmController(env, SlurmConfig(num_nodes=2))
    jobs = [
        controller.submit(JobSpec(name="a", time_limit=300, actual_runtime=100)),
        controller.submit(JobSpec(name="b", time_limit=300, actual_runtime=200)),
        controller.submit(
            JobSpec(name="p", partition="whisk", time_limit=240, actual_runtime=50)
        ),
    ]
    env.run(until=2000)
    return controller, jobs


def test_summarize_partitions(env):
    controller, _jobs = run_cluster_with_jobs(env)
    accounts = summarize(controller)
    assert set(accounts) == {"main", "whisk"}
    main = accounts["main"]
    assert main.jobs_total == 2
    assert main.by_state == {"completed": 2}
    assert main.node_seconds == pytest.approx(300.0)
    assert main.mean_wait < 35.0  # scheduled essentially immediately


def test_render_sacct(env):
    controller, _jobs = run_cluster_with_jobs(env)
    text = render_sacct(summarize(controller))
    assert "main" in text and "whisk" in text
    assert "completed:2" in text


def test_prime_wait_comparison(env):
    controller, _jobs = run_cluster_with_jobs(env)
    accounts = summarize(controller)
    comparison = prime_wait_comparison(accounts, accounts)
    assert comparison["mean_wait_delta"] == pytest.approx(0.0)
    with pytest.raises(ValueError):
        prime_wait_comparison(accounts, accounts, partition="ghost")


def test_wait_uses_begin_time_anchor(env):
    controller = SlurmController(env, SlurmConfig(num_nodes=1))
    job = controller.submit(
        JobSpec(name="late", time_limit=60, actual_runtime=60, begin_time=500.0)
    )
    env.run(until=1000)
    accounts = summarize(controller)
    # Wait is measured from begin_time (500), not submit (0).
    assert accounts["main"].wait_times[0] < 40.0
