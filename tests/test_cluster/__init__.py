"""Test package (gives colliding basenames unique module paths)."""
