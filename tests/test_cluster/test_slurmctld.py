"""Integration tests for the controller + slurmd over the DES."""

import pytest

from repro.cluster import JobSpec, JobState, SlurmConfig, SlurmController
from repro.cluster.backfill import SchedulerConfig
from repro.sim import Environment, Interrupt


def make_cluster(env, nodes=4, **sched_kwargs):
    config = SlurmConfig(num_nodes=nodes, scheduler=SchedulerConfig(**sched_kwargs))
    return SlurmController(env, config)


def test_submit_unknown_partition_rejected(env):
    controller = make_cluster(env)
    with pytest.raises(ValueError):
        controller.submit(JobSpec(name="x", partition="nope"))


def test_partition_max_time_enforced_at_submit(env):
    controller = make_cluster(env)
    with pytest.raises(ValueError):
        controller.submit(JobSpec(name="x", partition="whisk", time_limit=7201.0))


def test_job_runs_and_completes(env):
    controller = make_cluster(env)
    job = controller.submit(JobSpec(name="j", time_limit=600, actual_runtime=100))
    env.run(until=1000)
    assert job.state is JobState.COMPLETED
    assert job.runtime() == pytest.approx(100.0)


def test_sleep_job_without_actual_runs_to_limit(env):
    controller = make_cluster(env)
    job = controller.submit(JobSpec(name="j", time_limit=300))
    env.run(until=1000)
    assert job.state is JobState.COMPLETED
    assert job.runtime() == pytest.approx(300.0)


def test_job_exceeding_limit_is_timeout(env):
    controller = make_cluster(env)
    job = controller.submit(JobSpec(name="j", time_limit=100, actual_runtime=500))
    env.run(until=1000)
    assert job.state is JobState.TIMEOUT
    assert job.runtime() == pytest.approx(100.0)


def test_cancel_pending_job(env):
    controller = make_cluster(env, nodes=1)
    blocker = controller.submit(JobSpec(name="a", time_limit=1000, actual_runtime=1000))
    waiting = controller.submit(JobSpec(name="b", time_limit=100))
    env.run(until=10)
    controller.cancel(waiting)
    assert waiting.state is JobState.CANCELLED
    assert waiting not in controller.pending


def test_cancel_running_job(env):
    controller = make_cluster(env)
    job = controller.submit(JobSpec(name="j", time_limit=1000, actual_runtime=1000))
    env.run(until=50)
    controller.cancel(job)
    env.run(until=2000)
    assert job.state is JobState.CANCELLED
    assert job.end_time < 1000


def test_jobs_queue_when_cluster_full(env):
    controller = make_cluster(env, nodes=1)
    first = controller.submit(JobSpec(name="a", time_limit=100, actual_runtime=100))
    second = controller.submit(JobSpec(name="b", time_limit=100, actual_runtime=100))
    env.run(until=500)
    assert first.state is JobState.COMPLETED
    assert second.state is JobState.COMPLETED
    assert second.start_time >= first.end_time


def test_begin_time_respected(env):
    controller = make_cluster(env)
    job = controller.submit(
        JobSpec(name="j", time_limit=100, actual_runtime=50, begin_time=400.0)
    )
    env.run(until=1000)
    assert job.start_time >= 400.0
    assert job.state is JobState.COMPLETED


def test_node_exclusive_allocation(env):
    controller = make_cluster(env, nodes=2)
    a = controller.submit(JobSpec(name="a", num_nodes=2, time_limit=100, actual_runtime=100))
    b = controller.submit(JobSpec(name="b", num_nodes=1, time_limit=100, actual_runtime=100))
    env.run(until=500)
    # b could only start after a released its two nodes.
    assert b.start_time >= a.end_time


def test_allocation_log_intervals_close(env):
    controller = make_cluster(env)
    controller.submit(JobSpec(name="j", time_limit=100, actual_runtime=100))
    env.run(until=500)
    assert len(controller.allocation_log) == 1
    interval = controller.allocation_log[0]
    assert interval.end is not None
    assert interval.end - interval.start == pytest.approx(100.0)


def test_utilization_accounting(env):
    controller = make_cluster(env, nodes=2)
    controller.submit(JobSpec(name="j", num_nodes=2, time_limit=500, actual_runtime=500))
    env.run(until=501)
    controller.close_interval_log()
    # 2 nodes busy 1..501 of a 501 s window on 2 nodes ≈ 1.0
    assert controller.utilization(0.0, 501.0) == pytest.approx(2 * 500 / (2 * 501), rel=1e-6)


def test_on_job_callbacks_fire(env):
    controller = make_cluster(env)
    started, ended = [], []
    controller.on_job_start.append(lambda j: started.append(j.job_id))
    controller.on_job_end.append(lambda j: ended.append(j.job_id))
    job = controller.submit(JobSpec(name="j", time_limit=50, actual_runtime=50))
    env.run(until=200)
    assert started == [job.job_id]
    assert ended == [job.job_id]


# ----------------------------------------------------------------------
# preemption end-to-end
# ----------------------------------------------------------------------
def pilot_body_factory(drain_seconds=5.0, record=None):
    def body(env, job, nodes):
        try:
            yield env.timeout(10**9)
        except Interrupt as interrupt:
            if record is not None:
                record.append((env.now, interrupt.cause))
            yield env.timeout(drain_seconds)
            return "drained"

    return body


def test_preemption_delivers_sigterm_then_job_preempted(env):
    controller = make_cluster(env, nodes=1)
    signals = []
    pilot = controller.submit(
        JobSpec(
            name="pilot", partition="whisk", time_limit=3600,
            body=pilot_body_factory(record=signals),
        )
    )
    env.run(until=100)
    assert pilot.state is JobState.RUNNING
    prime = controller.submit(JobSpec(name="prime", time_limit=600, actual_runtime=60))
    env.run(until=1000)
    assert pilot.state is JobState.PREEMPTED
    assert pilot.result == "drained"
    assert prime.state is JobState.COMPLETED
    assert len(signals) == 1
    from repro.cluster.slurmd import TermSignal
    from repro.cluster.job import JobSignal

    cause = signals[0][1]
    assert isinstance(cause, TermSignal)
    assert cause.signal is JobSignal.SIGTERM
    assert cause.reason == "preempt"


def test_preemption_prime_delay_bounded_by_drain(env):
    controller = make_cluster(env, nodes=1)
    pilot = controller.submit(
        JobSpec(name="pilot", partition="whisk", time_limit=3600,
                body=pilot_body_factory(drain_seconds=5.0))
    )
    env.run(until=100)
    arrival = env.now
    prime = controller.submit(JobSpec(name="prime", time_limit=600, actual_runtime=60))
    env.run(until=1000)
    # prime started shortly after the pilot's 5 s drain, not after 3 min.
    assert prime.start_time - arrival < 60.0


def test_slow_drain_killed_at_grace(env):
    controller = make_cluster(env, nodes=1)
    pilot = controller.submit(
        JobSpec(name="pilot", partition="whisk", time_limit=3600,
                body=pilot_body_factory(drain_seconds=10**6))
    )
    env.run(until=100)
    controller.submit(JobSpec(name="prime", time_limit=600, actual_runtime=60))
    env.run(until=2000)
    assert pilot.state is JobState.PREEMPTED
    # grace is 180 s: the pilot ended within grace + epsilon of SIGTERM
    assert pilot.end_time - pilot.sigterm_time == pytest.approx(180.0, abs=1.0)


def test_pilot_timeout_gets_sigterm_at_limit(env):
    controller = make_cluster(env, nodes=1)
    signals = []
    pilot = controller.submit(
        JobSpec(name="pilot", partition="whisk", time_limit=240,
                body=pilot_body_factory(record=signals))
    )
    env.run(until=2000)
    assert pilot.state is JobState.TIMEOUT
    assert signals and signals[0][1].reason == "timeout"
    # SIGTERM arrived at the granted limit (start + 240).
    assert signals[0][0] == pytest.approx(pilot.start_time + 240.0)


def test_higher_tier_never_delayed_by_pilot_placement(env):
    """Submitting pilot jobs must not delay a prime job's start."""
    # Run once without pilots.
    env_a = Environment()
    controller_a = make_cluster(env_a, nodes=2)
    prime_a = controller_a.submit(
        JobSpec(name="p", num_nodes=2, time_limit=300, actual_runtime=300, begin_time=100.0)
    )
    env_a.run(until=1000)

    # And once with a flood of pilots.
    env_b = Environment()
    controller_b = make_cluster(env_b, nodes=2)
    for i in range(20):
        controller_b.submit(
            JobSpec(name=f"pilot{i}", partition="whisk", time_limit=240,
                    body=pilot_body_factory())
        )
    prime_b = controller_b.submit(
        JobSpec(name="p", num_nodes=2, time_limit=300, actual_runtime=300, begin_time=100.0)
    )
    env_b.run(until=1000)

    # The prime start may shift only by the pilots' drain time (≤ ~10 s),
    # never by a pilot's full length.
    assert prime_b.start_time - prime_a.start_time < 30.0
