"""Property-based invariants of the backfill planner."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.backfill import BackfillScheduler, SchedulerConfig
from repro.cluster.job import Job, JobSpec
from repro.cluster.node import Node, NodeState
from repro.cluster.partition import default_partitions

pilot_spec = st.tuples(
    st.sampled_from([120.0, 240.0, 480.0, 1320.0, 5400.0]),  # fixed lengths
    st.booleans(),                                            # flexible?
)


def build_state(num_nodes, busy_mask, claims):
    """Nodes with some busy (prime jobs) and pending pinned future jobs."""
    nodes = {f"n{i:04d}": Node(f"n{i:04d}") for i in range(num_nodes)}
    pending = []
    for i, busy in enumerate(busy_mask):
        name = f"n{i:04d}"
        if busy:
            job = Job(JobSpec(name="prime", time_limit=3600.0), 0.0)
            job.state = job.state.__class__.RUNNING
            job.start_time = 0.0
            job.granted_time = 3600.0
            job.nodes = (nodes[name],)
            nodes[name].allocate(job, 0.0)
    for i, begin in enumerate(claims):
        if begin is None:
            continue
        name = f"n{i % num_nodes:04d}"
        pending.append(
            Job(
                JobSpec(
                    name=f"future-{i}", time_limit=1800.0,
                    required_nodes=(name,), begin_time=float(begin),
                ),
                0.0,
            )
        )
    return nodes, pending


@given(
    num_nodes=st.integers(min_value=1, max_value=6),
    busy=st.lists(st.booleans(), min_size=6, max_size=6),
    claims=st.lists(
        st.one_of(st.none(), st.floats(min_value=60.0, max_value=7000.0)),
        min_size=3,
        max_size=3,
    ),
    pilots=st.lists(pilot_spec, min_size=1, max_size=8),
)
@settings(max_examples=150, deadline=None)
def test_tier0_placements_never_violate_claims(num_nodes, busy, claims, pilots):
    """A tier-0 start must (a) land on an idle node, (b) fit entirely
    before any higher-tier claim on that node, and (c) flexible grants are
    slot multiples within [time_min, time_limit]."""
    nodes, pending = build_state(num_nodes, busy[:num_nodes], claims)
    for index, (length, flexible) in enumerate(pilots):
        if flexible:
            spec = JobSpec(
                name=f"p{index}", partition="whisk",
                time_limit=7200.0, time_min=120.0, priority=1.0,
            )
        else:
            spec = JobSpec(
                name=f"p{index}", partition="whisk",
                time_limit=length, priority=length,
            )
        pending.append(Job(spec, 0.0))

    config = SchedulerConfig()
    scheduler = BackfillScheduler(config, rng=np.random.default_rng(0))
    plan = scheduler.plan(
        now=0.0,
        pending=pending,
        nodes=nodes,
        partitions=default_partitions(),
        committed={},
        include_tier0=True,
        include_flexible=True,
    )
    for decision in plan.starts:
        if decision.job.spec.partition != "whisk":
            continue
        node = decision.nodes[0]
        assert node.state is NodeState.IDLE
        claim_at = plan.reservations.get(node.name)
        if claim_at is not None:
            assert decision.granted_time <= claim_at + 1e-9
        spec = decision.job.spec
        if spec.is_flexible:
            assert spec.time_min <= decision.granted_time <= spec.time_limit
            assert decision.granted_time % config.slot == 0.0
        else:
            assert decision.granted_time == spec.time_limit

    # No node receives two starts in one plan.
    started_nodes = [n.name for d in plan.starts for n in d.nodes]
    assert len(started_nodes) == len(set(started_nodes))


@given(
    num_pilots=st.integers(min_value=0, max_value=10),
    num_primes=st.integers(min_value=0, max_value=4),
)
@settings(max_examples=80, deadline=None)
def test_preemptions_only_target_preemptible_lower_tiers(num_pilots, num_primes):
    nodes = {f"n{i:04d}": Node(f"n{i:04d}") for i in range(4)}
    pending = []
    # Fill all nodes with running pilots (preemptible tier 0).
    running_pilots = []
    for i, name in enumerate(list(nodes)[: min(num_pilots, 4)]):
        pilot = Job(JobSpec(name=f"pl{i}", partition="whisk", time_limit=5400.0), 0.0)
        pilot.state = pilot.state.__class__.RUNNING
        pilot.start_time = 0.0
        pilot.granted_time = 5400.0
        pilot.nodes = (nodes[name],)
        nodes[name].allocate(pilot, 0.0)
        running_pilots.append(pilot)
    for i in range(num_primes):
        pending.append(Job(JobSpec(name=f"pr{i}", num_nodes=2, time_limit=600.0), 0.0))

    scheduler = BackfillScheduler(SchedulerConfig(), rng=np.random.default_rng(0))
    plan = scheduler.plan(
        now=10.0, pending=pending, nodes=nodes,
        partitions=default_partitions(), committed={},
    )
    for preemption in plan.preemptions:
        assert preemption.victim.spec.partition == "whisk"
        assert preemption.victim in running_pilots
    # Victims are unique.
    victims = [p.victim.job_id for p in plan.preemptions]
    assert len(victims) == len(set(victims))
