"""Property-based invariants of the cluster scheduler."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import JobSpec, JobState, SlurmConfig, SlurmController
from repro.sim import Environment

job_strategy = st.tuples(
    st.integers(min_value=1, max_value=4),          # num_nodes
    st.floats(min_value=60.0, max_value=3600.0),    # time_limit
    st.floats(min_value=30.0, max_value=4000.0),    # actual_runtime
    st.floats(min_value=0.0, max_value=2000.0),     # submit offset
)


@given(jobs=st.lists(job_strategy, min_size=1, max_size=12))
@settings(max_examples=60, deadline=None)
def test_no_node_ever_double_allocated_and_all_jobs_finish(jobs):
    env = Environment()
    controller = SlurmController(env, SlurmConfig(num_nodes=4))
    submitted = []

    def submitter(env):
        for num_nodes, limit, actual, offset in sorted(jobs, key=lambda j: j[3]):
            if offset > env.now:
                yield env.timeout(offset - env.now)
            submitted.append(
                controller.submit(
                    JobSpec(
                        name="j",
                        num_nodes=num_nodes,
                        time_limit=limit,
                        actual_runtime=actual,
                    )
                )
            )

    env.process(submitter(env))

    # Invariant checker: a node never hosts two jobs (Node.allocate raises,
    # so surviving the run is itself the check), and allocation intervals
    # per node never overlap.
    env.run(until=100000)
    assert all(job.finished for job in submitted)

    by_node = {}
    controller.close_interval_log()
    for interval in controller.allocation_log:
        by_node.setdefault(interval.node, []).append((interval.start, interval.end))
    for intervals in by_node.values():
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2, "overlapping allocations on one node"

    # Completion semantics: jobs with actual <= limit complete, others TIMEOUT.
    for job, (num_nodes, limit, actual, _offset) in zip(
        submitted, sorted(jobs, key=lambda j: j[3])
    ):
        if actual <= limit:
            assert job.state is JobState.COMPLETED
            assert job.runtime() is not None
        else:
            assert job.state is JobState.TIMEOUT


@given(
    widths=st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=8),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40, deadline=None)
def test_fifo_jobs_start_in_priority_then_submit_order(widths, seed):
    """Within one tier at equal priority, a narrower later job never starts
    before an earlier job *could* have started (no unfair overtaking of the
    head-of-line reservation)."""
    env = Environment()
    controller = SlurmController(env, SlurmConfig(num_nodes=3))
    jobs = []
    for index, width in enumerate(widths):
        jobs.append(
            controller.submit(
                JobSpec(
                    name=f"j{index}",
                    num_nodes=width,
                    time_limit=600.0,
                    actual_runtime=300.0,
                )
            )
        )
    env.run(until=50000)
    assert all(job.state is JobState.COMPLETED for job in jobs)
    # The head of the queue (first submitted) must be among the first to run.
    first_start = jobs[0].start_time
    assert all(job.start_time >= first_start - 1e-9 for job in jobs)
