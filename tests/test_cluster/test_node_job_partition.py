"""Unit tests for nodes, job specs and partitions."""

import pytest

from repro.cluster import Job, JobSpec, JobState, Node, NodeState, Partition
from repro.cluster.partition import default_partitions


# ----------------------------------------------------------------------
# Node
# ----------------------------------------------------------------------
def test_node_defaults_match_prometheus():
    node = Node("n0001")
    assert node.cores == 24
    assert node.memory_mb == 131072
    assert node.state is NodeState.IDLE


def test_node_allocate_release_cycle():
    node = Node("n")
    job = Job(JobSpec(name="j"), submit_time=0.0)
    node.allocate(job, now=1.0)
    assert node.state is NodeState.ALLOCATED and node.job is job
    node.release(now=2.0)
    assert node.state is NodeState.IDLE and node.job is None
    assert node.idle_since == 2.0


def test_node_double_allocate_rejected():
    node = Node("n")
    job = Job(JobSpec(name="j"), submit_time=0.0)
    node.allocate(job, 0.0)
    with pytest.raises(RuntimeError):
        node.allocate(job, 0.0)


def test_node_release_idle_rejected():
    with pytest.raises(RuntimeError):
        Node("n").release(0.0)


def test_node_down_and_back():
    node = Node("n")
    node.set_down()
    assert node.state is NodeState.DOWN
    assert not node.available
    node.set_idle(5.0)
    assert node.available


def test_node_down_with_job_rejected():
    node = Node("n")
    node.allocate(Job(JobSpec(name="j"), 0.0), 0.0)
    with pytest.raises(RuntimeError):
        node.set_down()


# ----------------------------------------------------------------------
# JobSpec / Job
# ----------------------------------------------------------------------
def test_jobspec_validation():
    with pytest.raises(ValueError):
        JobSpec(name="bad", num_nodes=0)
    with pytest.raises(ValueError):
        JobSpec(name="bad", time_limit=0)
    with pytest.raises(ValueError):
        JobSpec(name="bad", time_limit=100, time_min=200)
    with pytest.raises(ValueError):
        JobSpec(name="bad", num_nodes=2, required_nodes=("only-one",))


def test_jobspec_flexible_flag():
    assert JobSpec(name="f", time_limit=7200, time_min=120).is_flexible
    assert not JobSpec(name="x", time_limit=7200).is_flexible
    assert not JobSpec(name="y", time_limit=7200, time_min=7200).is_flexible


def test_job_ids_increment():
    a = Job(JobSpec(name="a"), 0.0)
    b = Job(JobSpec(name="b"), 0.0)
    assert b.job_id == a.job_id + 1


def test_job_planned_end_requires_start():
    job = Job(JobSpec(name="j", time_limit=100), 0.0)
    assert job.planned_end is None
    job.start_time = 10.0
    job.granted_time = 100.0
    assert job.planned_end == 110.0


def test_job_state_helpers():
    job = Job(JobSpec(name="j"), 0.0)
    assert job.is_pending and not job.is_running and not job.finished
    job.state = JobState.RUNNING
    assert job.is_running
    job.state = JobState.PREEMPTED
    assert job.finished


# ----------------------------------------------------------------------
# Partition
# ----------------------------------------------------------------------
def test_default_partitions_layout():
    partitions = default_partitions()
    assert partitions["main"].priority_tier == 1
    assert partitions["whisk"].priority_tier == 0
    assert partitions["whisk"].preemptible
    assert not partitions["main"].preemptible
    assert partitions["whisk"].grace_time == 180.0
    assert partitions["whisk"].max_time == 7200.0


def test_partition_max_time_enforced():
    partition = Partition(name="p", max_time=100.0)
    partition.validate_time_limit(100.0)
    with pytest.raises(ValueError):
        partition.validate_time_limit(101.0)


def test_partition_validation():
    with pytest.raises(ValueError):
        Partition(name="p", priority_tier=-1)
    with pytest.raises(ValueError):
        Partition(name="p", grace_time=-1.0)
    with pytest.raises(ValueError):
        Partition(name="p", max_time=0.0)
