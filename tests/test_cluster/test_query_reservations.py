"""Tests for the query interface and commercial reservations."""

import numpy as np
import pytest

from repro.cluster import JobSpec, NodeState, QueryLatencyModel, SlurmConfig, SlurmController
from repro.cluster.query import sinfo
from repro.cluster.reservations import Reservation, ReservationManager


# ----------------------------------------------------------------------
# latency model
# ----------------------------------------------------------------------
def test_latency_mixture_matches_measured_bands(rng):
    model = QueryLatencyModel(rng)
    samples = np.array([model.sample() for _ in range(20000)])
    assert np.mean(samples < 1.0) == pytest.approx(0.7643, abs=0.02)
    assert np.mean((samples >= 1.0) & (samples <= 3.0)) == pytest.approx(0.2326, abs=0.02)
    assert np.mean(samples > 3.0) == pytest.approx(0.0031, abs=0.005)
    assert samples.max() <= 10.0


# ----------------------------------------------------------------------
# sinfo
# ----------------------------------------------------------------------
def test_sinfo_classifies_states(env):
    controller = SlurmController(env, SlurmConfig(num_nodes=3))
    controller.submit(JobSpec(name="prime", time_limit=500, actual_runtime=500))
    controller.submit(JobSpec(name="pilot", partition="whisk", time_limit=240))
    # Pilot placement happens at the periodic backfill pass (30 s cadence).
    env.run(until=40)
    snapshot = sinfo(controller)
    assert len(snapshot.busy_nodes) == 1
    assert len(snapshot.whisk_nodes) == 1
    assert len(snapshot.idle_nodes) == 1


def test_sinfo_excludes_requested_nodes(env):
    controller = SlurmController(env, SlurmConfig(num_nodes=3))
    env.run(until=1)
    snapshot = sinfo(controller, exclude={"n0000"})
    assert "n0000" not in snapshot.idle_nodes
    assert len(snapshot.idle_nodes) == 2


def test_sinfo_reports_unavailable(env):
    controller = SlurmController(env, SlurmConfig(num_nodes=2))
    controller.nodes["n0001"].set_down()
    env.run(until=1)
    snapshot = sinfo(controller)
    assert snapshot.unavailable_nodes == ("n0001",)


# ----------------------------------------------------------------------
# reservations
# ----------------------------------------------------------------------
def test_reservation_validation():
    with pytest.raises(ValueError):
        Reservation(name="r", node_names=(), start=0, end=10)
    with pytest.raises(ValueError):
        Reservation(name="r", node_names=("n",), start=10, end=10)


def test_reservation_blocks_scheduling(env):
    controller = SlurmController(env, SlurmConfig(num_nodes=2))
    ReservationManager(
        controller,
        [Reservation(name="commercial", node_names=("n0000",), start=0.0, end=500.0)],
    )
    job = controller.submit(JobSpec(name="wide", num_nodes=2, time_limit=100, actual_runtime=100))
    env.run(until=50)
    # Only one node is schedulable: the 2-node job cannot start.
    assert job.is_pending
    env.run(until=1000)
    # Reservation ended at 500: the job ran afterwards.
    assert job.start_time >= 500.0


def test_reservation_release_returns_node(env):
    controller = SlurmController(env, SlurmConfig(num_nodes=1))
    ReservationManager(
        controller,
        [Reservation(name="r", node_names=("n0000",), start=10.0, end=20.0)],
    )
    env.run(until=15)
    assert controller.nodes["n0000"].state is NodeState.RESERVED
    env.run(until=30)
    assert controller.nodes["n0000"].state is NodeState.IDLE


def test_reservation_unknown_node_rejected(env):
    controller = SlurmController(env, SlurmConfig(num_nodes=1))
    with pytest.raises(ValueError):
        ReservationManager(
            controller,
            [Reservation(name="r", node_names=("ghost",), start=0.0, end=10.0)],
        )


def test_reserved_node_names_view(env):
    controller = SlurmController(env, SlurmConfig(num_nodes=2))
    manager = ReservationManager(
        controller,
        [Reservation(name="r", node_names=("n0001",), start=5.0, end=15.0)],
    )
    assert manager.reserved_node_names(0.0) == set()
    assert manager.reserved_node_names(10.0) == {"n0001"}
    assert manager.reserved_node_names(20.0) == set()
