"""Direct tests of job execution and signal delivery (slurmd)."""

import pytest

from repro.cluster.job import Job, JobSignal, JobSpec, JobState
from repro.cluster.node import Node
from repro.cluster.slurmd import NodeDaemon, TermSignal
from repro.sim import Interrupt


def launch(env, spec, granted=None, kill_wait=30.0):
    daemon = NodeDaemon(env, kill_wait=kill_wait)
    job = Job(spec, submit_time=env.now)
    node = Node("n0000")
    ended = []
    execution = daemon.execute(
        job, [node], granted if granted is not None else spec.time_limit,
        on_end=lambda j: ended.append(j),
    )
    return job, node, execution, ended


def test_body_result_captured(env):
    def body(env, job, nodes):
        yield env.timeout(10)
        return {"answer": 42}

    job, node, _exec, ended = launch(env, JobSpec(name="j", time_limit=100, body=body))
    env.run(until=200)
    assert job.state is JobState.COMPLETED
    assert job.result == {"answer": 42}
    assert ended == [job]
    assert node.available


def test_body_exception_means_failed(env):
    def body(env, job, nodes):
        yield env.timeout(5)
        raise RuntimeError("bug in the body")

    job, node, _exec, _ended = launch(env, JobSpec(name="j", time_limit=100, body=body))
    env.run(until=200)
    assert job.state is JobState.FAILED
    assert node.available  # node released despite the failure


def test_sigterm_cause_carries_grace_and_reason(env):
    seen = []

    def body(env, job, nodes):
        try:
            yield env.timeout(10**9)
        except Interrupt as interrupt:
            seen.append(interrupt.cause)
            return "done"

    job, _node, execution, _ended = launch(
        env, JobSpec(name="j", time_limit=7200, body=body)
    )
    env.run(until=10)
    execution.preempt(reason="preempt", grace=90.0)
    env.run(until=200)
    cause = seen[0]
    assert isinstance(cause, TermSignal)
    assert cause.signal is JobSignal.SIGTERM
    assert cause.reason == "preempt"
    assert cause.grace == 90.0
    assert job.state is JobState.PREEMPTED


def test_sigkill_backstop_at_kill_wait(env):
    """A body ignoring SIGTERM at its limit dies at limit + kill_wait."""
    phases = []

    def stubborn(env, job, nodes):
        try:
            yield env.timeout(10**9)
        except Interrupt:
            phases.append(("sigterm", env.now))
            try:
                yield env.timeout(10**9)  # ignore it
            except Interrupt:
                phases.append(("sigkill", env.now))
                raise

    job, _node, _exec, _ended = launch(
        env, JobSpec(name="j", time_limit=100, body=stubborn), kill_wait=30.0
    )
    env.run(until=1000)
    assert job.state is JobState.TIMEOUT
    assert phases[0] == ("sigterm", pytest.approx(101.0, abs=2))
    assert phases[1][0] == "sigkill"
    assert phases[1][1] == pytest.approx(phases[0][1] + 30.0, abs=0.5)
    assert job.end_time == pytest.approx(phases[1][1], abs=0.5)


def test_cancel_uses_kill_wait_grace(env):
    def body(env, job, nodes):
        try:
            yield env.timeout(10**9)
        except Interrupt:
            yield env.timeout(2)
            return "cleaned up"

    job, _node, execution, _ended = launch(
        env, JobSpec(name="j", time_limit=7200, body=body)
    )
    env.run(until=10)
    execution.cancel()
    env.run(until=100)
    assert job.state is JobState.CANCELLED
    assert job.result == "cleaned up"


def test_double_preempt_is_idempotent(env):
    def body(env, job, nodes):
        try:
            yield env.timeout(10**9)
        except Interrupt:
            yield env.timeout(5)

    job, _node, execution, _ended = launch(
        env, JobSpec(name="j", time_limit=7200, body=body)
    )
    env.run(until=10)
    execution.preempt(grace=60.0)
    execution.preempt(grace=60.0)  # second call: no-op
    env.run(until=200)
    assert job.state is JobState.PREEMPTED
    # Preempted at t=10, drained 5 s: exactly one drain, not two.
    assert job.end_time == pytest.approx(15.0, abs=2.0)


def test_node_fail_skips_sigterm(env):
    signals = []

    def body(env, job, nodes):
        try:
            yield env.timeout(10**9)
        except Interrupt as interrupt:
            signals.append(interrupt.cause.signal)
            raise

    job, node, execution, _ended = launch(
        env, JobSpec(name="j", time_limit=7200, body=body)
    )
    env.run(until=10)
    execution.node_fail()
    env.run(until=20)
    assert signals == [JobSignal.SIGKILL]
    assert job.state is JobState.NODE_FAIL
    assert node.available  # release happened; the controller downs it


def test_sleep_job_preemption_grace_window(env):
    """A body-less (sleep) job under eviction ends at min(natural, grace)."""
    job, _node, execution, _ended = launch(
        env, JobSpec(name="j", time_limit=7200, actual_runtime=1000)
    )
    env.run(until=100)
    execution.preempt(grace=50.0)
    env.run(until=400)
    assert job.state is JobState.PREEMPTED
    assert job.end_time == pytest.approx(150.0, abs=1.0)


def test_sleep_job_finishing_within_grace_completes(env):
    job, _node, execution, _ended = launch(
        env, JobSpec(name="j", time_limit=7200, actual_runtime=120)
    )
    env.run(until=100)  # 20 s of natural runtime left
    execution.preempt(grace=50.0)
    env.run(until=400)
    assert job.state is JobState.COMPLETED
    assert job.runtime() == pytest.approx(120.0, abs=1.0)
