"""Registry round-trip: declaration, resolution, and spec rebuilding."""

import pytest

from repro.experiments import run_fig3
from repro.scenarios import REGISTRY, load_builtin

EXPECTED = [
    "fig1", "fig2", "fig3", "table1", "day", "fig7", "optimize", "longterm",
    "federation", "supply", "supply_matrix", "stream_day",
]


@pytest.fixture(autouse=True)
def _loaded():
    load_builtin()


def test_all_experiments_registered_in_cli_order():
    assert REGISTRY.names() == EXPECTED


def test_full_scale_defaults_match_paper():
    spec = REGISTRY.build_spec("fig1", {}, "full")
    assert spec.params["days"] == 7.0
    assert spec.nodes == 2239
    assert spec.horizon == 7 * 24 * 3600.0
    assert spec.seed == 2022
    assert spec.workload == "idleness-trace"


def test_quick_scale_defaults_shrink():
    spec = REGISTRY.build_spec("fig1", {}, "quick")
    assert spec.params["days"] == 1.0
    assert spec.nodes == 512


def test_explicit_override_beats_scale():
    spec = REGISTRY.build_spec("fig1", {"days": 0.5, "nodes": 64}, "quick")
    assert spec.params["days"] == 0.5
    assert spec.horizon == 0.5 * 86400.0
    assert spec.nodes == 64


def test_unknown_parameter_rejected():
    with pytest.raises(KeyError, match="no parameter"):
        REGISTRY.build_spec("fig1", {"bogus": 1})


def test_unknown_scenario_rejected():
    with pytest.raises(KeyError, match="unknown scenario"):
        REGISTRY.build_spec("fig99", {})


def test_day_seed_defaults_are_per_model():
    assert REGISTRY.build_spec("day", {}).seed == 317
    assert REGISTRY.build_spec("day", {"model": "var"}).seed == 321
    assert REGISTRY.build_spec("day", {"model": "var", "seed": 1}).seed == 1


def test_day_workload_follows_no_load():
    assert REGISTRY.build_spec("day", {}).workload == "gatling"
    assert REGISTRY.build_spec("day", {"no_load": True}).workload == "none"


def test_spec_overrides_round_trip():
    for name in EXPECTED:
        spec = REGISTRY.build_spec(name, {}, "quick")
        rebuilt = REGISTRY.build_spec(name, spec.overrides(), "quick")
        assert rebuilt == spec, name


def test_scenario_result_matches_direct_run():
    result = REGISTRY.run("fig3", {"seed": 7})
    direct = run_fig3(seed=7)
    assert result.metrics == direct.stats
    assert result.text == direct.render()
    assert result.spec.seed == 7
    assert result.to_dict()["metrics"]["ready_coverage"] == pytest.approx(
        direct.ready_coverage
    )
