"""Sweep executor: seed derivation, grid expansion, aggregation,
and serial vs parallel equivalence."""

import math

import pytest

from repro.scenarios import (
    SweepExecutor,
    SweepSpec,
    derive_run_seed,
    expand_grid,
    load_builtin,
)
from repro.scenarios.sweep import aggregate_metrics, cell_key


@pytest.fixture(autouse=True)
def _loaded():
    load_builtin()


def test_derive_run_seed_is_deterministic():
    assert derive_run_seed(317, "model=fib", 0) == derive_run_seed(317, "model=fib", 0)


def test_derive_run_seed_separates_cells_and_replicates():
    seeds = {
        derive_run_seed(base, key, replicate)
        for base in (317, 321)
        for key in ("model=fib", "model=var", "")
        for replicate in range(4)
    }
    assert len(seeds) == 2 * 3 * 4


def test_cell_key_is_order_independent():
    assert cell_key({"b": 2, "a": 1}) == cell_key({"a": 1, "b": 2}) == "a=1,b=2"


def test_expand_grid_orders_and_counts():
    cells = expand_grid({"model": ["fib", "var"], "nodes": [150, 300]})
    assert cells == [
        {"model": "fib", "nodes": 150},
        {"model": "fib", "nodes": 300},
        {"model": "var", "nodes": 150},
        {"model": "var", "nodes": 300},
    ]
    assert expand_grid({}) == [{}]


def test_aggregate_metrics_mean_stdev_ci():
    runs = [{"x": 1.0, "y": 5.0}, {"x": 2.0, "y": 5.0}, {"x": 3.0}]
    aggregates = aggregate_metrics(runs)
    assert set(aggregates) == {"x"}  # y missing from one replicate
    x = aggregates["x"]
    assert x["mean"] == pytest.approx(2.0)
    assert x["stdev"] == pytest.approx(1.0)
    assert x["ci95"] == pytest.approx(1.96 / math.sqrt(3))
    assert x["n"] == 3.0
    assert (x["min"], x["max"]) == (1.0, 3.0)


def test_single_replicate_has_zero_spread():
    agg = aggregate_metrics([{"x": 4.0}])["x"]
    assert (agg["stdev"], agg["ci95"], agg["n"]) == (0.0, 0.0, 1.0)


def test_sweeping_seed_directly_is_rejected():
    with pytest.raises(ValueError, match="seed"):
        SweepExecutor().plan(SweepSpec("fig1", grid={"seed": [1, 2]}))


def test_sweeping_non_sweepable_param_is_rejected():
    with pytest.raises(ValueError, match="not sweepable"):
        SweepExecutor().plan(SweepSpec("fig1", grid={"plot": [True]}))


def test_plan_seeds_do_not_depend_on_other_cells():
    one = SweepExecutor().plan(SweepSpec("day", grid={"model": ["fib"]}, seeds=2))
    two = SweepExecutor().plan(
        SweepSpec("day", grid={"model": ["fib", "var"]}, seeds=2)
    )
    assert one[0][1] == two[0][1]  # fib cell seeds identical either way


def test_serial_and_parallel_sweeps_are_byte_identical():
    spec_serial = SweepSpec("fig3", seeds=2, jobs=1, scale="quick")
    spec_parallel = SweepSpec("fig3", seeds=2, jobs=2, scale="quick")
    serial = SweepExecutor().run(spec_serial)
    parallel = SweepExecutor().run(spec_parallel)
    assert serial.to_json() == parallel.to_json()
    assert len(parallel.cells[0].runs) == 2
    assert parallel.cells[0].metrics["ready_coverage"]["n"] == 2.0


def test_sweep_csv_lists_every_cell_metric():
    result = SweepExecutor().run(
        SweepSpec("fig2", grid={"count": [500, 1000]}, seeds=2, scale="smoke")
    )
    csv_text = result.to_csv()
    lines = csv_text.strip().splitlines()
    assert lines[0] == "scenario,scale,base_seed,count,metric,n,mean,stdev,ci95"
    metric_count = len(result.cells[0].metrics)
    assert len(lines) == 1 + 2 * metric_count
    # count=500 rows come before count=1000 rows (grid order)
    assert lines[1].startswith("fig2,smoke,2022,500,")


def test_sweep_csv_records_fixed_overrides():
    result = SweepExecutor().run(
        SweepSpec("fig2", fixed={"count": 300}, seeds=1, scale="smoke")
    )
    lines = result.to_csv().strip().splitlines()
    assert lines[0] == "scenario,scale,base_seed,count,metric,n,mean,stdev,ci95"
    assert lines[1].startswith("fig2,smoke,2022,300,")


def test_aggregate_metrics_nan_is_order_independent():
    nan = float("nan")
    forward = aggregate_metrics([{"x": nan}, {"x": 1.0}])["x"]
    backward = aggregate_metrics([{"x": 1.0}, {"x": nan}])["x"]
    for agg in (forward, backward):
        assert math.isnan(agg["mean"])
        assert math.isnan(agg["min"]) and math.isnan(agg["max"])


def test_custom_registry_runs_serially_but_not_in_parallel():
    from repro.scenarios import ScenarioRegistry, ScenarioResult, register

    registry = ScenarioRegistry()

    @register("custom", help="test scenario", seed=1, registry=registry)
    def _runner(spec):
        return ScenarioResult(spec=spec, metrics={"x": float(spec.seed)}, text="")

    executor = SweepExecutor(registry)
    result = executor.run(SweepSpec("custom", seeds=2, jobs=1))
    assert result.cells[0].metrics["x"]["n"] == 2.0
    with pytest.raises(ValueError, match="global registry"):
        executor.run(SweepSpec("custom", seeds=2, jobs=2))


def test_sweep_base_seed_overrides_scenario_default():
    executor = SweepExecutor()
    default = executor.run(SweepSpec("fig2", grid={"count": [200]}, scale="smoke"))
    assert default.base_seed == 2022
    custom = executor.run(
        SweepSpec("fig2", grid={"count": [200]}, base_seed=7, scale="smoke")
    )
    assert custom.base_seed == 7
    assert custom.cells[0].run_seeds != default.cells[0].run_seeds
