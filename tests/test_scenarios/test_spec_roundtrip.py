"""The ``ScenarioSpec.overrides()`` round-trip property.

``registry.build_spec(spec.name, spec.overrides(), spec.scale)`` must
rebuild an *identical* spec — including the first-class fields
(``nodes``, ``horizon``, ``supply``, ``workload``): every one of them is
derived from a declared parameter whose resolved value the override
mapping carries, so nothing is lost.  The sweep executor and the
persistence layer rely on this; these tests prove it over every
registered scenario, every scale, and hypothesis-sampled overrides.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scenarios import REGISTRY, SCALE_NAMES, load_builtin

load_builtin()

ALL_SCENARIOS = REGISTRY.names()


@pytest.mark.parametrize("scale", SCALE_NAMES)
@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_default_spec_roundtrips(name, scale):
    spec = REGISTRY.build_spec(name, {}, scale)
    assert REGISTRY.build_spec(name, spec.overrides(), scale) == spec


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_roundtrip_is_scale_independent_given_full_overrides(name):
    """The override mapping pins every parameter, so rebuilding at any
    scale differs only in the recorded ``scale`` label."""
    import dataclasses

    spec = REGISTRY.build_spec(name, {}, "smoke")
    for scale in SCALE_NAMES:
        rebuilt = REGISTRY.build_spec(name, spec.overrides(), scale)
        assert dataclasses.replace(rebuilt, scale=spec.scale) == spec


def _override_strategy(param):
    if param.choices is not None:
        return st.sampled_from(param.choices)
    if param.type is bool:
        return st.booleans()
    if param.type is int:
        return st.integers(min_value=1, max_value=10_000)
    return st.floats(
        min_value=0.01, max_value=1000.0, allow_nan=False, allow_infinity=False
    )


@st.composite
def scenario_and_overrides(draw):
    name = draw(st.sampled_from(ALL_SCENARIOS))
    scenario = REGISTRY.get(name)
    overrides = {"seed": draw(st.integers(min_value=0, max_value=2**31 - 1))}
    for param in scenario.params:
        if draw(st.booleans()):
            overrides[param.name] = draw(_override_strategy(param))
    scale = draw(st.sampled_from(SCALE_NAMES))
    return name, overrides, scale


@settings(max_examples=80, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(scenario_and_overrides())
def test_sampled_overrides_roundtrip(case):
    name, overrides, scale = case
    spec = REGISTRY.build_spec(name, overrides, scale)
    rebuilt = REGISTRY.build_spec(name, spec.overrides(), scale)
    assert rebuilt == spec
    # and the first-class fields specifically survive the trip
    for field in ("nodes", "horizon", "supply", "workload", "seed"):
        assert getattr(rebuilt, field) == getattr(spec, field)
