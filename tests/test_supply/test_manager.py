"""PolicyJobManager integration: budgets, determinism, federation."""

import pytest

from repro.cluster import SlurmConfig
from repro.faas import FunctionDef
from repro.hpcwhisk import HPCWhiskConfig, PolicyJobManager, build_system
from repro.hpcwhisk.lengths import JobLengthSet
from repro.supply import (
    FEEDBACK_POLICIES,
    SupplyPolicy,
    fill_to_depth,
    make_policy,
)

TINY = JobLengthSet("tiny", (2, 4))


def policy_config(name, **kwargs):
    defaults = dict(
        policy_factory=lambda: make_policy(name, TINY, **kwargs),
        replenish_interval=5.0,
    )
    return HPCWhiskConfig(**defaults)


def drive_load(system, horizon, period=5.0):
    system.controller.deploy(FunctionDef(name="f", duration=0.01))

    def client(env):
        while env.now < horizon:
            yield env.timeout(period)
            yield from system.client.invoke("f")

    system.env.process(client(system.env))


# ----------------------------------------------------------------------
# the shared loop
# ----------------------------------------------------------------------
class _GreedyPolicy(SupplyPolicy):
    """Asks for far more than the queue cap every round."""

    name = "greedy"

    def observe(self, observation):
        return fill_to_depth(500, 120.0)


def test_budget_truncates_greedy_policies():
    config = HPCWhiskConfig(
        policy_factory=_GreedyPolicy, max_queued=20, replenish_interval=5.0
    )
    system = build_system(config, SlurmConfig(num_nodes=1), seed=3)
    system.env.run(until=120)
    manager = system.manager
    assert isinstance(manager, PolicyJobManager)
    assert manager.stats.truncated > 0
    assert manager.stats.requested >= manager.stats.submitted
    # The cap holds on the real queue, not just in accounting.
    assert len(system.slurm.pending_jobs(partition="whisk")) <= 20
    assert all(depth <= 20 for depth in manager.stats.queue_depths)


def test_pilot_jobs_carry_the_policy_name():
    system = build_system(
        policy_config("queue-aware", base_depth=2), SlurmConfig(num_nodes=1), seed=3
    )
    system.env.run(until=60)
    pending = system.slurm.pending_jobs(partition="whisk")
    assert pending
    assert all(job.spec.name.startswith("whisk-queue-aware-") for job in pending)
    assert all(job.spec.user == "hpc-whisk" for job in pending)


def test_observation_sees_middleware_state():
    """Healthy-invoker counts flow into the policy once pilots register."""
    seen = []

    class _Recorder(SupplyPolicy):
        name = "recorder"

        def observe(self, observation):
            seen.append(observation)
            return fill_to_depth(2 - observation.queue_depth, 240.0)

    config = HPCWhiskConfig(policy_factory=_Recorder, replenish_interval=5.0)
    system = build_system(config, SlurmConfig(num_nodes=2), seed=3)
    drive_load(system, horizon=500)
    system.env.run(until=600)
    assert max(obs.healthy_invokers for obs in seen) > 0
    assert max(obs.inflight_activations for obs in seen) >= 0
    assert all(obs.total_nodes == 2 for obs in seen)
    rounds = [obs.round_index for obs in seen]
    assert rounds == sorted(rounds)


@pytest.mark.parametrize("name", FEEDBACK_POLICIES)
def test_feedback_policies_are_seed_reproducible(name):
    def run_once():
        system = build_system(
            policy_config(name), SlurmConfig(num_nodes=2), seed=11
        )
        drive_load(system, horizon=700)
        system.env.run(until=900)
        return (
            [
                (t.job_started_at, t.healthy_at, t.finished_at)
                for t in system.pilot_timelines
            ],
            system.manager.stats.submitted,
            system.manager.policy.diagnostics(),
        )

    assert run_once() == run_once()


def test_inflight_count_scopes_by_member_cluster():
    """Federated demand signals stay member-local (review regression)."""
    from repro.faas.activation import ActivationRecord
    from repro.faas.broker import Broker
    from repro.faas.controller import Controller
    from repro.sim import Environment, Event

    env = Environment()
    controller = Controller(env, Broker(env))
    for index, cluster in enumerate(["alpha", "alpha", "beta"]):
        record = ActivationRecord(
            activation_id=f"a{index}",
            function="f",
            submitted_at=0.0,
            invoker_id=f"inv-{index}",
            cluster_id=cluster,
        )
        # The tracked-insertion path invoke() uses: keeps the per-member
        # inflight counters in lockstep with _pending.
        controller._pending_add(Event(env), record)
    assert controller.inflight_count == 3
    assert controller.inflight_count_for(None) == 3
    assert controller.inflight_count_for("alpha") == 2
    assert controller.inflight_count_for("beta") == 1
    assert controller.inflight_count_for("gamma") == 0


# ----------------------------------------------------------------------
# federation: per-member controller instances
# ----------------------------------------------------------------------
def test_federated_members_get_independent_policy_instances():
    from repro.hpcwhisk import build_federation

    config = policy_config("pid")
    system = build_federation(
        [
            SlurmConfig(num_nodes=2, cluster_id="alpha"),
            SlurmConfig(num_nodes=1, cluster_id="beta"),
        ],
        config,
        seed=5,
    )
    assert set(system.managers) == {"alpha", "beta"}
    alpha, beta = system.managers["alpha"], system.managers["beta"]
    assert alpha.policy is not beta.policy
    system.env.run(until=300)
    # Both controllers ran their loops against their own cluster.
    assert alpha.stats.replenish_rounds > 0
    assert beta.stats.replenish_rounds > 0
    assert alpha.controller is not beta.controller
    # Observations are member-scoped: beta's single node can never show
    # more than one healthy invoker, whatever alpha is running.
    healthy_beta, _inflight, _buffered, _fastlane = beta._middleware_state()
    assert healthy_beta <= 1
