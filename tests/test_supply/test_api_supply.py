"""Supply components + supply-stats probe through the composable API."""

import pytest

from repro.api import (
    ClusterSpec,
    MiddlewareSpec,
    ProbeSpec,
    RouterSpec,
    Stack,
    SupplySpec,
    WorkloadSpec,
)
from repro.api.components import resolve_gains
from repro.supply import PidGains


def small_stack(supply: SupplySpec, probes=(), clusters=(), router=None):
    return Stack(
        cluster=ClusterSpec(nodes=4),
        clusters=clusters,
        supply=supply,
        middleware=MiddlewareSpec(),
        router=router,
        workloads=(
            WorkloadSpec("idleness-trace"),
            WorkloadSpec("gatling", qps=2.0, functions=10),
        ),
        probes=tuple(probes),
        seed=13,
        horizon=600.0,
        name="supply-api-test",
    )


def test_resolve_gains_accepts_mappings_and_instances():
    assert resolve_gains(None) == PidGains()
    assert resolve_gains(PidGains(1.0, 0.5, 0.1)) == PidGains(1.0, 0.5, 0.1)
    assert resolve_gains({"kp": 2.0, "ki": 0.0}) == PidGains(kp=2.0, ki=0.0)
    with pytest.raises(TypeError):
        resolve_gains({"bogus": 1.0})


def test_pid_supply_component_validates_options_eagerly():
    stack = small_stack(SupplySpec("pid", gains={"kp": -1.0}))
    with pytest.raises(ValueError, match="gains must be >= 0"):
        stack.build()


def test_supply_stats_probe_single_cluster():
    report = small_stack(
        SupplySpec("queue-aware", base_depth=2),
        probes=(ProbeSpec("supply-stats"),),
    ).run()
    metrics = report.metrics
    assert metrics["supply_rounds"] > 0
    assert metrics["supply_submitted"] >= metrics["pilots_started"]
    assert 0.0 <= metrics["cold_start_rate"] <= 1.0
    assert metrics["supply_target_depth"] >= 0.0  # policy diagnostics flow in


def test_supply_stats_probe_requires_a_manager():
    stack = Stack(
        cluster=ClusterSpec(nodes=2),
        supply=SupplySpec("static", invokers=2),
        middleware=MiddlewareSpec(),
        workloads=(WorkloadSpec("gatling", qps=1.0, functions=5),),
        probes=(ProbeSpec("supply-stats"),),
        seed=1,
        horizon=120.0,
    )
    with pytest.raises(ValueError, match="needs a pilot supply manager"):
        stack.run()


def test_supply_stats_probe_federated_merges_members():
    report = small_stack(
        SupplySpec("pid", target_idle=1),
        probes=(ProbeSpec("supply-stats"),),
        clusters=(
            ClusterSpec(nodes=3, cluster_id="alpha"),
            ClusterSpec(nodes=2, cluster_id="beta"),
        ),
        router=RouterSpec("failover"),
    ).run()
    metrics = report.metrics
    for key in ("supply_submitted", "pilots_started", "supply_pid_output"):
        assert f"{key}@alpha" in metrics
        assert f"{key}@beta" in metrics
    assert metrics["supply_submitted"] == (
        metrics["supply_submitted@alpha"] + metrics["supply_submitted@beta"]
    )
    assert metrics["pilots_started"] == (
        metrics["pilots_started@alpha"] + metrics["pilots_started@beta"]
    )


def test_feedback_supplies_compose_from_yaml_configs(tmp_path):
    from repro.api import run_config

    config = {
        "name": "yaml-pid",
        "seed": 3,
        "horizon": 300,
        "stack": {
            "cluster": {"nodes": 3},
            "supply": {
                "name": "pid",
                "target_idle": 1,
                "gains": {"kp": 1.0, "ki": 0.2, "kd": 0.0},
            },
            "workloads": [
                "idleness-trace",
                {"name": "gatling", "qps": 2.0, "functions": 5},
            ],
            "probes": ["supply-stats"],
        },
    }
    report = run_config(config)
    assert report.metrics["supply_rounds"] > 0
    assert "supply_pid_integral" in report.metrics
