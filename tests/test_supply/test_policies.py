"""Supply-policy unit + property tests.

The hypothesis properties pin the controller-loop contract of ISSUE 5:

* **conservation** — no policy ever plans past its declared inventory
  cap, whatever the observation says;
* **determinism** — two fresh controller instances fed the same
  observation sequence produce identical plans (controller state
  evolves deterministically; nothing draws randomness);
* **fib/var equivalence** — the policy implementations reproduce the
  historical ``FibJobManager``/``VarJobManager`` decision rules exactly
  (the golden-trace suite additionally pins the end-to-end behaviour
  byte-for-byte).
"""

from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpcwhisk.lengths import SET_A1, JobLengthSet
from repro.supply import (
    EwmaPolicy,
    FibPolicy,
    HybridPolicy,
    PidGains,
    PidPolicy,
    PilotRequest,
    QueueAwarePolicy,
    SupplyObservation,
    VarPolicy,
    make_policy,
)

TINY = JobLengthSet("tiny", (2, 4, 8))


@dataclass
class _StubSpec:
    time_limit: float


@dataclass
class _StubJob:
    spec: _StubSpec


def make_observation(
    pending_limits=(),
    *,
    now=0.0,
    round_index=0,
    max_queued=100,
    running_pilots=0,
    idle_nodes=4,
    total_nodes=8,
    healthy=0,
    inflight=0,
    buffered=0,
    fastlane=0,
) -> SupplyObservation:
    pending = tuple(_StubJob(_StubSpec(limit)) for limit in pending_limits)
    return SupplyObservation(
        now=now,
        round_index=round_index,
        pending=pending,
        queue_depth=len(pending),
        budget=max(0, max_queued - len(pending)),
        running_pilots=running_pilots,
        idle_nodes=idle_nodes,
        total_nodes=total_nodes,
        healthy_invokers=healthy,
        inflight_activations=inflight,
        buffered_activations=buffered,
        fastlane_activations=fastlane,
    )


#: plausible pilot lengths, including ones outside the policy length set
pending_lists = st.lists(
    st.sampled_from([120.0, 240.0, 480.0, 600.0]), max_size=60
)

observations = st.builds(
    make_observation,
    pending_lists,
    healthy=st.integers(0, 40),
    inflight=st.integers(0, 200),
    buffered=st.integers(0, 120),
    fastlane=st.integers(0, 60),
    idle_nodes=st.integers(0, 64),
    running_pilots=st.integers(0, 32),
)

ALL_POLICY_FACTORIES = [
    lambda: FibPolicy(TINY, queue_per_length=3),
    lambda: VarPolicy(depth=20, time_min=120.0, time_max=7200.0),
    lambda: QueueAwarePolicy(base_depth=2, backlog_gain=0.5, max_depth=15),
    lambda: EwmaPolicy(TINY, alpha=0.4, target_depth=6),
    lambda: PidPolicy(target_idle=2, gains=PidGains(1.0, 0.3, 0.1), max_depth=12),
    lambda: HybridPolicy(TINY, floor_per_length=1, burst_threshold=3, burst_size=5),
]


# ----------------------------------------------------------------------
# conservation: plans never exceed the policy's inventory cap
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(observation=observations, factory=st.sampled_from(ALL_POLICY_FACTORIES))
def test_plan_never_exceeds_inventory_cap(observation, factory):
    policy = factory()
    plan = policy.observe(observation)
    cap = policy.inventory_cap()
    assert cap is not None
    assert 0 <= len(plan.requests) <= cap
    for request in plan.requests:
        assert request.seconds > 0


@settings(max_examples=40, deadline=None)
@given(observation=observations)
def test_depth_targeting_policies_never_overfill(observation):
    """Depth-targeting controllers keep depth + plan within their cap."""
    for policy in (
        VarPolicy(depth=20),
        QueueAwarePolicy(base_depth=2, backlog_gain=0.5, max_depth=15),
        EwmaPolicy(TINY, target_depth=6),
        PidPolicy(max_depth=12),
    ):
        plan = policy.observe(observation)
        if observation.queue_depth <= policy.inventory_cap():
            assert observation.queue_depth + len(plan.requests) <= (
                policy.inventory_cap()
            )
        else:  # already over target: never add more
            assert len(plan.requests) == 0


# ----------------------------------------------------------------------
# determinism: same observations in, same plans out
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    sequence=st.lists(observations, min_size=1, max_size=8),
    factory=st.sampled_from(ALL_POLICY_FACTORIES),
)
def test_fresh_instances_replay_identically(sequence, factory):
    first = [factory().observe(obs) for obs in [sequence[0]]]  # warm check
    a, b = factory(), factory()
    plans_a = [a.observe(obs) for obs in sequence]
    plans_b = [b.observe(obs) for obs in sequence]
    assert plans_a == plans_b
    assert a.diagnostics() == b.diagnostics()
    assert first[0] == plans_a[0]


# ----------------------------------------------------------------------
# fib/var equivalence with the historical managers
# ----------------------------------------------------------------------
def _legacy_fib_desired(pending, length_set, queue_per_length):
    """Verbatim port of the pre-refactor FibJobManager._desired_submissions."""
    counts = {seconds: 0 for seconds in length_set.seconds}
    for job in pending:
        counts[job.spec.time_limit] = counts.get(job.spec.time_limit, 0) + 1
    desired = []
    for seconds in sorted(length_set.seconds, reverse=True):
        deficit = queue_per_length - counts.get(seconds, 0)
        for _ in range(max(0, deficit)):
            desired.append((seconds, seconds))  # (time_limit, priority)
    return desired


@settings(max_examples=60, deadline=None)
@given(pending_limits=pending_lists, queue_per_length=st.integers(1, 12))
def test_fib_policy_matches_legacy_manager(pending_limits, queue_per_length):
    observation = make_observation(pending_limits)
    plan = FibPolicy(TINY, queue_per_length).observe(observation)
    legacy = _legacy_fib_desired(observation.pending, TINY, queue_per_length)
    assert [(r.seconds, r.priority) for r in plan.requests] == legacy
    assert all(not r.is_flexible for r in plan.requests)


@settings(max_examples=60, deadline=None)
@given(pending_limits=pending_lists, depth=st.integers(1, 120))
def test_var_policy_matches_legacy_manager(pending_limits, depth):
    observation = make_observation(pending_limits)
    plan = VarPolicy(depth=depth).observe(observation)
    legacy_deficit = max(0, depth - len(pending_limits))
    assert len(plan.requests) == legacy_deficit
    for request in plan.requests:
        assert request.is_flexible
        assert request.time_min == 120.0
        assert request.seconds == 7200.0
        assert request.priority is None


# ----------------------------------------------------------------------
# controller-specific behaviour
# ----------------------------------------------------------------------
def test_queue_aware_scales_with_backlog():
    policy = QueueAwarePolicy(base_depth=2, backlog_gain=1.0, max_depth=10)
    quiet = policy.observe(make_observation())
    assert len(quiet.requests) == 2
    busy = policy.observe(make_observation(buffered=6))
    assert len(busy.requests) == 8  # base 2 + backlog 6
    flooded = policy.observe(make_observation(buffered=1000))
    assert len(flooded.requests) == 10  # clamped at max_depth


def test_ewma_lengths_track_sustained_load():
    policy = EwmaPolicy(TINY, alpha=1.0, target_depth=3)
    idle = policy.observe(make_observation(healthy=4, inflight=0))
    assert {r.seconds for r in idle.requests} == {120.0}  # shortest class
    saturated = policy.observe(make_observation(healthy=4, inflight=50))
    assert {r.seconds for r in saturated.requests} == {480.0}  # longest
    assert 0.0 <= policy.level <= 1.0


def test_pid_anti_windup_bounds_the_integral():
    policy = PidPolicy(
        target_idle=4, gains=PidGains(kp=1.0, ki=1.0, kd=0.0), max_depth=10
    )
    # Persistent max error: without anti-windup the integral would grow
    # by ki*error every round, far past any useful actuation.
    for _ in range(50):
        policy.observe(make_observation(healthy=0, inflight=0))
    assert policy.integral <= policy.max_depth
    # Recovery: plenty of idle capacity drives the output back to zero
    # promptly instead of bleeding off 50 rounds of windup.
    for _ in range(10):
        plan = policy.observe(make_observation(healthy=30, inflight=0))
    assert len(plan.requests) == 0
    assert policy.diagnostics()["pid_output"] == 0.0


def test_hybrid_floor_plus_burst():
    policy = HybridPolicy(
        TINY, floor_per_length=1, burst_threshold=2, burst_size=4, burst_minutes=2
    )
    quiet = policy.observe(make_observation())
    assert len(quiet.requests) == 3  # one per length class
    busy = policy.observe(make_observation(buffered=2))
    assert len(busy.requests) == 3 + 4
    # Floor requests come first: the budget prefers guaranteed inventory.
    assert [r.seconds for r in busy.requests[:3]] == [480.0, 240.0, 120.0]
    assert all(r.seconds == 120.0 for r in busy.requests[3:])


def test_hybrid_burst_only_mode():
    """floor_per_length=0 is a valid burst-only controller."""
    policy = HybridPolicy(
        TINY, floor_per_length=0, burst_threshold=2, burst_size=3
    )
    assert len(policy.observe(make_observation()).requests) == 0
    burst = policy.observe(make_observation(buffered=5))
    assert len(burst.requests) == 3
    assert policy.inventory_cap() == 3


def test_observation_scope_arithmetic_excludes_fastlane():
    """executing/idle stay member-scoped; backlog still sees the fast lane."""
    observation = make_observation(
        healthy=4, inflight=4, buffered=1, fastlane=10
    )
    assert observation.backlog == 11
    assert observation.executing_activations == 3  # not floored by fastlane
    assert observation.idle_invokers == 1


def test_make_policy_rejects_unknown_names():
    with pytest.raises(KeyError, match="unknown supply policy"):
        make_policy("bogus", SET_A1)


def test_pilot_request_validation():
    with pytest.raises(ValueError):
        PilotRequest(seconds=0.0)
    with pytest.raises(ValueError):
        PilotRequest(seconds=100.0, time_min=200.0)
    with pytest.raises(ValueError):
        PidGains(kp=-1.0)
