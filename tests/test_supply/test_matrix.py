"""Matrix runner: scoring, determinism, scenario + CLI front doors."""

import json

import pytest

from repro.cli import main
from repro.scenarios import REGISTRY, load_builtin
from repro.supply.matrix import (
    MatrixCell,
    matrix_sweep_spec,
    run_matrix,
    score_cells,
)


@pytest.fixture(autouse=True)
def _loaded():
    load_builtin()


def _cell(policy, workload="gatling", nodes=8, **objectives):
    defaults = dict(
        harvest=0.5, slowdown_s=5.0, cold_start_rate=0.5, churn_per_h=50.0
    )
    defaults.update(objectives)
    return MatrixCell(
        policy=policy, workload=workload, nodes=nodes, objectives=defaults
    )


# ----------------------------------------------------------------------
# scoring
# ----------------------------------------------------------------------
def test_score_cells_ranks_dominant_cell_first():
    better = _cell("pid", harvest=0.9, slowdown_s=1.0, cold_start_rate=0.1,
                   churn_per_h=10.0)
    worse = _cell("fib", harvest=0.2, slowdown_s=9.0, cold_start_rate=0.9,
                  churn_per_h=90.0)
    ranked, missing = score_cells([worse, better])
    assert missing == ()
    assert [cell.policy for cell in ranked] == ["pid", "fib"]
    assert [cell.rank for cell in ranked] == [1, 2]
    assert ranked[0].score == 1.0 and ranked[1].score == 0.0


def test_score_cells_zero_spread_is_neutral_and_ties_break_on_label():
    ranked, _missing = score_cells([_cell("var"), _cell("fib")])
    assert [cell.score for cell in ranked] == [0.5, 0.5]
    assert [cell.policy for cell in ranked] == ["fib", "var"]  # label order


def test_score_cells_drops_objectives_absent_everywhere():
    cells = [
        MatrixCell("fib", "gatling", 8, {"harvest": 0.2}),
        MatrixCell("pid", "gatling", 8, {"harvest": 0.8}),
    ]
    ranked, missing = score_cells(cells)
    assert set(missing) == {"slowdown_s", "cold_start_rate", "churn_per_h"}
    # harvest's weight renormalizes to 1.0: best cell scores 1.0
    assert ranked[0].policy == "pid" and ranked[0].score == 1.0


def test_matrix_sweep_spec_shapes_the_grid():
    spec = matrix_sweep_spec(
        ["fib", "pid"], ["gatling"], [8, 16], hours=0.2, qps=4.0, seeds=2
    )
    assert spec.scenario == "supply"
    assert spec.grid == {
        "policy": ["fib", "pid"],
        "workload": ["gatling"],
        "nodes": [8, 16],
    }
    assert spec.fixed == {"hours": 0.2, "qps": 4.0}
    with pytest.raises(ValueError, match="matrix needs"):
        matrix_sweep_spec([], ["gatling"], [8], hours=0.2, qps=4.0)


# ----------------------------------------------------------------------
# end-to-end (small smoke matrices)
# ----------------------------------------------------------------------
def test_run_matrix_smoke_two_cells():
    result = run_matrix(
        ["fib", "queue-aware"], ["gatling"], [8],
        hours=0.2, qps=4.0, scale="smoke", base_seed=9,
    )
    assert len(result.cells) == 2
    assert {cell.policy for cell in result.cells} == {"fib", "queue-aware"}
    assert [cell.rank for cell in result.cells] == [1, 2]
    assert result.missing_objectives == ()
    for cell in result.cells:
        assert set(cell.objectives) == {
            "harvest", "slowdown_s", "cold_start_rate", "churn_per_h"
        }
    assert not result.label_nodes  # single shape: labels omit the node count
    payload = json.loads(result.to_json())
    assert payload["cells"][0]["rank"] == 1
    header = result.to_csv().splitlines()[0]
    assert header.startswith("rank,label,policy,workload,nodes,score")


def test_supply_matrix_scenario_serial_parallel_identical():
    overrides = {
        "policies": "fib,queue-aware", "workloads": "gatling", "shapes": "8",
    }
    serial = REGISTRY.run("supply_matrix", {**overrides, "jobs": 1}, "smoke")
    parallel = REGISTRY.run("supply_matrix", {**overrides, "jobs": 2}, "smoke")
    assert serial.metrics == parallel.metrics
    assert serial.text == parallel.text


def test_supply_matrix_rejects_unknown_policy():
    with pytest.raises(ValueError, match="unknown policy"):
        REGISTRY.run("supply_matrix", {"policies": "fib,bogus"}, "smoke")


def test_matrix_cli_writes_ranked_json_and_csv(tmp_path, capsys):
    json_path = tmp_path / "matrix.json"
    csv_path = tmp_path / "matrix.csv"
    assert main([
        "matrix", "--scale", "smoke", "--policies", "fib,queue-aware",
        "--workloads", "gatling", "--shapes", "8", "-j", "1",
        "--json", str(json_path), "--csv", str(csv_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "SUPPLY MATRIX" in out and "rank" in out
    payload = json.loads(json_path.read_text())
    assert len(payload["cells"]) == 2
    assert payload["cells"][0]["label"] in ("fib+gatling", "queue-aware+gatling")
    assert len(csv_path.read_text().splitlines()) == 3  # header + 2 cells


def test_matrix_cli_rejects_unknown_names():
    with pytest.raises(SystemExit, match="unknown policy"):
        main(["matrix", "--scale", "smoke", "--policies", "nope", "-j", "1"])
