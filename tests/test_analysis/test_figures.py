"""Tests for the ASCII figure renderers."""

import numpy as np

from repro.analysis.figures import ascii_cdf, ascii_timeseries, histogram, sparkline


def test_sparkline_range():
    line = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8])
    assert line[0] == " "
    assert line[-1] == "█"
    assert len(line) == 9


def test_sparkline_compresses_long_series():
    line = sparkline(np.sin(np.linspace(0, 10, 1000)), width=60)
    assert len(line) == 60


def test_sparkline_empty():
    assert sparkline([]) == ""


def test_sparkline_constant_series():
    line = sparkline([5.0] * 10)
    assert len(line) == 10  # no crash on zero span


def test_ascii_timeseries_structure():
    times = np.linspace(0, 7200, 100)
    values = np.abs(np.sin(times / 1000)) * 10
    art = ascii_timeseries(times, values, title="workers", height=8)
    lines = art.splitlines()
    assert lines[0] == "workers"
    assert len(lines) == 1 + 8 + 2  # title + grid + axis + labels
    assert "•" in art
    assert "2.0h" in lines[-1]


def test_ascii_timeseries_empty():
    assert "(empty series)" in ascii_timeseries([], [], title="t")


def test_ascii_cdf_monotone_render():
    art = ascii_cdf(np.random.default_rng(0).lognormal(0, 1, 500), title="cdf")
    assert art.splitlines()[0] == "cdf"
    assert "1.0" in art and "0.0" in art
    assert "·" in art


def test_ascii_cdf_with_transform():
    values = np.array([1.0, 10.0, 100.0, 1000.0])
    art = ascii_cdf(values, x_transform=np.log10, x_label="log10 seconds")
    assert "log10 seconds" in art


def test_histogram_bars_and_counts():
    art = histogram([1, 1, 1, 2, 3], bins=3, title="h")
    lines = art.splitlines()
    assert lines[0] == "h"
    assert len(lines) == 4
    assert "#" in lines[1]
    assert lines[1].rstrip().endswith("3")


def test_histogram_empty():
    assert "(empty)" in histogram([], title="h")
