"""Tests for the Slurm-level sampler, interval reconstruction and OW log."""

import numpy as np
import pytest

from repro.analysis.idle_periods import intervals_by_node, samples_to_intervals
from repro.analysis.owlog import ow_level_states, ready_period_stats
from repro.analysis.sampler import SlurmSample, SlurmSampler
from repro.cluster import JobSpec, SlurmConfig, SlurmController
from repro.hpcwhisk.pilot import PilotTimeline


# ----------------------------------------------------------------------
# sampler
# ----------------------------------------------------------------------
def test_sampler_cadence_matches_paper(env, rng):
    controller = SlurmController(env, SlurmConfig(num_nodes=2))
    sampler = SlurmSampler(env, controller, rng)
    env.run(until=3600)
    sampler.stop()
    log = sampler.log
    # Paper: average distance ≈ 10.3–10.7 s.
    assert log.mean_gap() == pytest.approx(10.5, abs=0.8)
    gaps = np.diff([s.time for s in log.samples])
    assert np.mean(gaps < 11.0) == pytest.approx(0.76, abs=0.12)


def test_sampler_sees_cluster_states(env, rng):
    controller = SlurmController(env, SlurmConfig(num_nodes=2))
    controller.submit(JobSpec(name="j", time_limit=1000, actual_runtime=1000))
    sampler = SlurmSampler(env, controller, rng)
    env.run(until=300)
    sampler.stop()
    sample = sampler.log.samples[-1]
    assert len(sample.idle_nodes) == 1
    assert sampler.log.idle_counts()[-1] == 1


def test_available_is_union(env):
    sample = SlurmSample(time=0.0, idle_nodes=("a", "b"), whisk_nodes=("b", "c"))
    assert sample.available_nodes == ("a", "b", "c")


def test_sampler_history_free_mode_keeps_streaming_aggregates(env, rng):
    controller = SlurmController(env, SlurmConfig(num_nodes=2))
    lean = SlurmSampler(env, controller, rng, keep_history=False)
    env.run(until=3600)
    lean.stop()
    log = lean.log
    assert log.samples == []
    assert len(log) > 300
    assert log.mean_gap() == pytest.approx(10.5, abs=0.8)
    assert log.available_series.count == len(log)
    # per-sample arrays are gone, and say so usefully
    with pytest.raises(RuntimeError, match="history=true"):
        log.idle_counts()
    with pytest.raises(RuntimeError, match="history=true"):
        log.available_counts()


def test_sampler_streaming_aggregates_match_history(env, rng):
    controller = SlurmController(env, SlurmConfig(num_nodes=4))
    controller.submit(JobSpec(name="j", time_limit=900, actual_runtime=900))
    sampler = SlurmSampler(env, controller, rng)
    env.run(until=1800)
    sampler.stop()
    log = sampler.log
    idle = log.idle_counts()
    assert log.idle_series.count == len(idle)
    assert log.idle_series.total == int(idle.sum())
    assert log.idle_series.as_array().tolist() == sorted(idle)
    assert log.mean_gap() == pytest.approx(
        float(np.diff([s.time for s in log.samples]).mean())
    )


# ----------------------------------------------------------------------
# interval reconstruction
# ----------------------------------------------------------------------
def make_samples(times_and_idle):
    return [
        SlurmSample(time=t, idle_nodes=tuple(idle), whisk_nodes=())
        for t, idle in times_and_idle
    ]


def test_samples_to_intervals_basic():
    samples = make_samples([
        (0.0, ["n1"]),
        (10.0, ["n1", "n2"]),
        (20.0, ["n2"]),
        (30.0, []),
    ])
    intervals = samples_to_intervals(samples, lambda s: s.idle_nodes)
    assert intervals["n1"] == [(0.0, 20.0)]
    assert intervals["n2"] == [(10.0, 30.0)]


def test_samples_to_intervals_closes_at_end_time():
    samples = make_samples([(0.0, ["n1"]), (10.0, ["n1"])])
    intervals = samples_to_intervals(samples, lambda s: s.idle_nodes, end_time=25.0)
    assert intervals["n1"] == [(0.0, 25.0)]


def test_samples_to_intervals_reopens():
    samples = make_samples([
        (0.0, ["n1"]),
        (10.0, []),
        (20.0, ["n1"]),
        (30.0, []),
    ])
    intervals = samples_to_intervals(samples, lambda s: s.idle_nodes)
    assert intervals["n1"] == [(0.0, 10.0), (20.0, 30.0)]


def test_intervals_by_node_kinds():
    samples = [
        SlurmSample(time=0.0, idle_nodes=("a",), whisk_nodes=("b",)),
        SlurmSample(time=10.0, idle_nodes=(), whisk_nodes=()),
    ]
    assert intervals_by_node(samples, "idle")["a"] == [(0.0, 10.0)]
    assert intervals_by_node(samples, "whisk")["b"] == [(0.0, 10.0)]
    available = intervals_by_node(samples, "available")
    assert set(available) == {"a", "b"}
    with pytest.raises(ValueError):
        intervals_by_node(samples, "bogus")


# ----------------------------------------------------------------------
# OW-level states
# ----------------------------------------------------------------------
def timeline(job_start, healthy, sigterm, finished, reason="timeout"):
    t = PilotTimeline(
        invoker_id="i", node="n", job_id=1, job_started_at=job_start
    )
    t.healthy_at = healthy
    t.sigterm_at = sigterm
    t.finished_at = finished
    t.end_reason = reason
    return t


def test_ow_states_partition_lifecycle():
    t = timeline(0.0, 15.0, 100.0, 105.0)
    states = ow_level_states([t], horizon=200.0, step=1.0)
    # warm-up 0–15, healthy 15–100, irresponsive 100–105
    assert states.warmup_counts[:15].sum() == 15
    assert states.healthy_counts[20] == 1
    assert states.healthy_counts[110] == 0
    assert states.irresponsive_counts[102] == 1
    assert states.non_availability == pytest.approx((200 - 85) / 200, abs=0.02)


def test_ow_states_never_registered():
    t = PilotTimeline(invoker_id="i", node="n", job_id=1, job_started_at=10.0)
    t.finished_at = 40.0
    states = ow_level_states([t], horizon=100.0, step=1.0)
    assert states.warmup_counts.sum() == pytest.approx(30, abs=1)
    assert states.healthy_counts.sum() == 0


def test_ow_longest_and_total_outage():
    t1 = timeline(0.0, 10.0, 50.0, 52.0)
    t2 = timeline(100.0, 110.0, 150.0, 152.0)
    states = ow_level_states([t1, t2], horizon=200.0, step=1.0)
    # healthy in [10,50) and [110,150): outage = 10 + 60 + 50 = 120
    assert states.total_outage() == pytest.approx(120.0, abs=3.0)
    assert states.longest_outage() == pytest.approx(60.0, abs=3.0)


def test_ready_period_stats():
    stats = ready_period_stats([
        timeline(0.0, 10.0, 70.0, 75.0),    # 60 s healthy
        timeline(0.0, 20.0, 140.0, 145.0),  # 120 s healthy
    ])
    assert stats["count"] == 2
    assert stats["mean"] == pytest.approx(90.0)
    assert stats["median"] == pytest.approx(90.0)


def test_ready_period_stats_empty():
    assert ready_period_stats([]) == {"count": 0}
