"""Tests for the clairvoyant coverage simulator (Table I machinery)."""

import numpy as np
import pytest

from repro.analysis.coverage import CoverageSimulator, greedy_fill_window
from repro.hpcwhisk.lengths import JOB_LENGTH_SETS, SET_A1, SET_B, SET_C2


def test_greedy_fill_paper_example():
    """21-minute window + A1 → a 14 and a 6, one minute unused."""
    packed = greedy_fill_window(21 * 60.0, SET_A1.seconds)
    assert packed == [14 * 60.0, 6 * 60.0]


def test_greedy_fill_empty_window():
    assert greedy_fill_window(60.0, SET_A1.seconds) == []


def simple_intervals():
    return {
        "n0": [(0.0, 21 * 60.0)],          # 21 min
        "n1": [(100.0, 100.0 + 4 * 60.0)],  # 4 min
    }


def test_accounting_identity():
    simulator = CoverageSimulator(warmup=20.0)
    result = simulator.run(simple_intervals(), SET_A1, horizon=1500.0)
    assert result.total_surface == pytest.approx(25 * 60.0)
    assert (
        result.warmup_surface + result.ready_surface + result.unused_surface
        == pytest.approx(result.total_surface)
    )
    # 3 jobs: 14 + 6 in the long window, 4 in the short one.
    assert result.num_jobs == 3
    assert result.warmup_surface == pytest.approx(3 * 20.0)
    assert result.unused_surface == pytest.approx(60.0)  # 1 odd minute


def test_jobs_never_overlap_within_node():
    rng = np.random.default_rng(0)
    intervals = {}
    for i in range(5):
        cursor = 0.0
        node_intervals = []
        for _ in range(5):
            cursor += float(rng.integers(100, 5000))  # gap
            width = float(rng.integers(60, 7000))
            node_intervals.append((cursor, cursor + width))
            cursor += width
        intervals[f"n{i}"] = node_intervals
    simulator = CoverageSimulator()
    result = simulator.run(intervals, SET_A1)
    by_node = {}
    for node, start, end in result.jobs:
        by_node.setdefault(node, []).append((start, end))
    for jobs in by_node.values():
        jobs.sort()
        for (s1, e1), (s2, e2) in zip(jobs, jobs[1:]):
            assert e1 <= s2 + 1e-9


def test_jobs_stay_inside_their_interval():
    simulator = CoverageSimulator()
    intervals = simple_intervals()
    result = simulator.run(intervals, SET_B)
    for node, start, end in result.jobs:
        containing = [
            iv for iv in intervals[node] if iv[0] - 1e-9 <= start and end <= iv[1] + 1e-9
        ]
        assert containing, (node, start, end)


def test_unused_share_identical_across_sets():
    """Table I: every set tiles even windows exactly, so the 'not used'
    column is identical across sets."""
    rng = np.random.default_rng(7)
    intervals = {
        f"n{i}": [(0.0, float(rng.integers(60, 7200)))] for i in range(200)
    }
    shares = set()
    for name, length_set in JOB_LENGTH_SETS.items():
        result = CoverageSimulator().run(intervals, length_set, horizon=7200.0)
        shares.add(round(result.unused_share, 9))
    assert len(shares) == 1


def test_c2_places_fewest_jobs_and_least_warmup():
    """Table I ordering: finer sets → fewer jobs → less warm-up."""
    rng = np.random.default_rng(11)
    intervals = {
        f"n{i}": [(0.0, float(rng.integers(240, 7200)))] for i in range(300)
    }
    a1 = CoverageSimulator().run(intervals, SET_A1, horizon=7200.0)
    b = CoverageSimulator().run(intervals, SET_B, horizon=7200.0)
    c2 = CoverageSimulator().run(intervals, SET_C2, horizon=7200.0)
    assert c2.num_jobs <= a1.num_jobs <= b.num_jobs
    assert c2.warmup_surface <= a1.warmup_surface <= b.warmup_surface
    assert c2.ready_share >= a1.ready_share >= b.ready_share


def test_short_job_fully_charged_to_warmup():
    simulator = CoverageSimulator(warmup=200.0)  # longer than a 2-min job
    result = simulator.run({"n0": [(0.0, 120.0)]}, SET_A1, horizon=120.0)
    assert result.ready_surface == 0.0
    assert result.warmup_surface == pytest.approx(120.0)


def test_non_availability_tracks_zero_ready():
    simulator = CoverageSimulator(warmup=20.0, step=10.0)
    # One 10-minute window in a 1-hour horizon → mostly zero ready workers.
    result = simulator.run({"n0": [(0.0, 600.0)]}, SET_A1, horizon=3600.0)
    assert result.non_availability == pytest.approx(1.0 - 580.0 / 3600.0, abs=0.02)


def test_warmup_validation():
    with pytest.raises(ValueError):
        CoverageSimulator(warmup=-1.0)
