"""Unit tests for the statistics toolbox."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    cdf,
    interval_coverage,
    interval_total,
    merge_intervals,
    node_surface,
    per_minute_bins,
    percentile_summary,
    share_at_zero,
    time_weighted_counts,
)


def test_cdf_basic():
    values, probabilities = cdf([3.0, 1.0, 2.0])
    assert list(values) == [1.0, 2.0, 3.0]
    assert list(probabilities) == [pytest.approx(1 / 3), pytest.approx(2 / 3), 1.0]


def test_cdf_empty():
    values, probabilities = cdf([])
    assert values.size == 0 and probabilities.size == 0


def test_percentile_summary():
    summary = percentile_summary(range(1, 101))
    assert summary.p25 == pytest.approx(25.75)
    assert summary.p50 == pytest.approx(50.5)
    assert summary.p75 == pytest.approx(75.25)
    assert summary.avg == pytest.approx(50.5)


def test_percentile_summary_empty_is_nan():
    summary = percentile_summary([])
    assert np.isnan(summary.avg)


def test_merge_intervals():
    merged = merge_intervals([(0, 2), (1, 3), (5, 6), (6, 7)])
    assert merged == [(0, 3), (5, 7)]


def test_merge_drops_empty():
    assert merge_intervals([(3, 3), (5, 4)]) == []


def test_interval_total():
    assert interval_total([(0, 2), (1, 3), (10, 11)]) == pytest.approx(4.0)


def test_node_surface_counts_per_node():
    """Different nodes' overlapping intervals must all count (regression
    test for the fig3 under-count bug)."""
    intervals = {
        "a": [(0.0, 10.0)],
        "b": [(0.0, 10.0)],  # same time range, different node
    }
    assert node_surface(intervals) == pytest.approx(20.0)
    # ...while within a node, overlaps merge:
    assert node_surface({"a": [(0, 10), (5, 15)]}) == pytest.approx(15.0)


def test_interval_coverage():
    base = [(0, 10)]
    cover = [(2, 4), (6, 8)]
    assert interval_coverage(base, cover) == pytest.approx(0.4)


def test_interval_coverage_clips_outside():
    assert interval_coverage([(0, 10)], [(-5, 100)]) == pytest.approx(1.0)


def test_interval_coverage_empty_base():
    assert interval_coverage([], [(0, 1)]) == 0.0


def test_time_weighted_counts():
    counts = time_weighted_counts([(0, 30), (10, 20)], horizon=40.0, step=10.0)
    assert list(counts) == [1, 2, 1, 0]


def test_share_at_zero():
    assert share_at_zero(np.array([0, 1, 0, 2])) == 0.5
    assert share_at_zero(np.array([])) == 0.0


def test_per_minute_bins():
    bins = per_minute_bins([0.0, 59.0, 60.0, 125.0], horizon=180.0)
    assert list(bins) == [2, 1, 1]
