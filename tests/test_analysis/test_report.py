"""Tests for the table renderers."""

from repro.analysis.coverage import CoverageSimulator
from repro.analysis.metrics import PercentileSummary
from repro.analysis.report import render_kv, render_table1, render_table23
from repro.hpcwhisk.lengths import SET_A1, SET_C2


def make_coverage():
    intervals = {"n0": [(0.0, 3600.0)], "n1": [(0.0, 1800.0)]}
    return CoverageSimulator().run(intervals, SET_A1, horizon=3600.0)


def test_render_table1_contains_all_sets():
    cov = make_coverage()
    text = render_table1({"A1": (SET_A1, cov), "C2": (SET_C2, cov)})
    assert "TABLE I" in text
    assert "A1" in text and "C2" in text
    assert "%" in text
    # One header + one rule + two data rows.
    assert len(text.splitlines()) == 4


def test_render_table23_layout():
    cov = make_coverage()
    summary = PercentileSummary(p25=2.0, p50=4.0, p75=8.0, avg=5.0)
    text = render_table23(
        "TABLE II (test)",
        cov,
        slurm_workers=summary,
        slurm_used_share=0.9,
        ow_warmup=summary,
        ow_healthy=summary,
        ow_irresponsive=summary,
    )
    assert "Simulation" in text
    assert "Slurm-level" in text
    assert "OW-level" in text
    assert "90.00%" in text
    assert "10.00%" in text  # 1 - used


def test_render_kv_alignment():
    text = render_kv("Title", {"alpha": 1.23456, "beta_long_key": "x"})
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert lines[1].startswith("  alpha")
    assert ":" in lines[1] and ":" in lines[2]
    # floats formatted compactly
    assert "1.235" in lines[1]
