"""Streaming aggregates must agree with the exact re-scan they replace."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import percentile_summary
from repro.analysis.streaming import CountSeries, ReservoirSketch, StreamingStats

_COUNTS = st.lists(st.integers(min_value=0, max_value=512), min_size=1, max_size=300)
_FLOATS = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=300,
)


# ---------------------------------------------------------------------------
# CountSeries: the integer-count path must be *byte-identical* to re-scan


@given(values=_COUNTS)
@settings(max_examples=200, deadline=None)
def test_count_series_summary_equals_rescan(values):
    series = CountSeries()
    for value in values:
        series.add(value)
    rescan = percentile_summary(np.array(values))
    assert series.summary() == rescan


@given(values=_COUNTS)
@settings(max_examples=200, deadline=None)
def test_count_series_scalar_aggregates_equal_rescan(values):
    series = CountSeries()
    for value in values:
        series.add(value)
    arr = np.array(values)
    assert series.count == len(values)
    assert series.total == int(arr.sum())
    assert series.mean == float(np.mean(arr))
    assert series.zero_share == float(np.mean(arr == 0))


@given(values=_COUNTS)
@settings(max_examples=100, deadline=None)
def test_count_series_as_array_is_sorted_multiset(values):
    series = CountSeries()
    for value in values:
        series.add(value)
    assert series.as_array().tolist() == sorted(values)


def test_count_series_empty():
    series = CountSeries()
    assert series.count == 0
    assert math.isnan(series.mean)
    assert series.zero_share == 0.0
    assert series.as_array().tolist() == []


# ---------------------------------------------------------------------------
# StreamingStats: exact for count/min/max/sum; Welford variance to rtol


@given(values=_FLOATS)
@settings(max_examples=200, deadline=None)
def test_streaming_stats_exact_fields(values):
    stats = StreamingStats()
    for value in values:
        stats.add(value)
    assert stats.count == len(values)
    assert stats.min == min(values)
    assert stats.max == max(values)
    # running sum is sequential left-to-right — identical to math.fsum-free
    # Python sum(), and within 1 ulp-per-step of np.mean*n
    assert stats.total == sum(values)


@given(values=st.lists(st.integers(min_value=-10_000, max_value=10_000), min_size=1, max_size=128))
@settings(max_examples=200, deadline=None)
def test_streaming_mean_bit_equal_to_numpy_for_integer_streams(values):
    """Integer-valued streams: every partial sum is exact in float64, and
    np.mean's pairwise summation is sequential for n <= 128, so the
    running mean is bit-equal to the re-scan mean."""
    stats = StreamingStats()
    for value in values:
        stats.add(float(value))
    assert stats.mean == float(np.mean(np.array(values, dtype=float)))


@given(values=_FLOATS)
@settings(max_examples=200, deadline=None)
def test_streaming_variance_matches_numpy(values):
    stats = StreamingStats()
    for value in values:
        stats.add(value)
    expected = float(np.var(np.asarray(values, dtype=float)))
    assert stats.variance == pytest.approx(expected, rel=1e-9, abs=1e-9)
    assert stats.std == pytest.approx(math.sqrt(expected), rel=1e-9, abs=1e-9)


def test_streaming_stats_empty():
    stats = StreamingStats()
    assert math.isnan(stats.mean)
    assert math.isnan(stats.variance)
    assert math.isnan(stats.std)


def test_streaming_quantile_requires_sketch():
    stats = StreamingStats()
    stats.add(1.0)
    with pytest.raises(RuntimeError, match="quantiles=True"):
        stats.quantile(0.5)


def test_streaming_quantile_with_sketch_exact_below_capacity():
    stats = StreamingStats(quantiles=True, capacity=64)
    values = [float(v) for v in range(50)]
    for value in values:
        stats.add(value)
    assert stats.sketch.exact
    assert stats.quantile(0.5) == float(np.percentile(values, 50.0))


# ---------------------------------------------------------------------------
# ReservoirSketch


def test_reservoir_exact_until_capacity_then_samples():
    sketch = ReservoirSketch(capacity=10)
    for value in range(10):
        sketch.add(float(value))
    assert sketch.exact
    assert sorted(sketch.values) == [float(v) for v in range(10)]
    for value in range(10, 1000):
        sketch.add(float(value))
    assert not sketch.exact
    assert sketch.seen == 1000
    assert len(sketch.values) == 10
    assert all(0.0 <= v < 1000.0 for v in sketch.values)


def test_reservoir_is_deterministic():
    def build():
        sketch = ReservoirSketch(capacity=16)
        for value in range(500):
            sketch.add(float(value))
        return sketch.values

    assert build() == build()


def test_reservoir_keeps_roughly_uniform_sample():
    sketch = ReservoirSketch(capacity=200)
    for value in range(20_000):
        sketch.add(float(value))
    # a uniform 200-sample of [0, 20000) has mean ~10000; allow wide slack
    assert 7_000 < np.mean(sketch.values) < 13_000


def test_reservoir_rejects_bad_args():
    with pytest.raises(ValueError):
        ReservoirSketch(capacity=0)
    sketch = ReservoirSketch(capacity=4)
    with pytest.raises(ValueError):
        sketch.quantile(1.5)
    assert math.isnan(sketch.quantile(0.5))  # empty sketch


# ---------------------------------------------------------------------------
# merge: the shard-fold contract (coordinator merges per-member aggregates)


@given(left=_FLOATS, right=_FLOATS)
@settings(max_examples=200, deadline=None)
def test_streaming_stats_merge_equals_whole_stream(left, right):
    merged = StreamingStats()
    for value in left:
        merged.add(value)
    other = StreamingStats()
    for value in right:
        other.add(value)
    merged.merge(other)
    whole = np.asarray(left + right, dtype=float)
    assert merged.count == len(whole)
    assert merged.min == float(whole.min())
    assert merged.max == float(whole.max())
    assert merged.total == pytest.approx(float(whole.sum()), rel=1e-12, abs=1e-9)
    # parallel (Chan et al.) moment combination: exact up to float rounding
    assert merged.variance == pytest.approx(float(np.var(whole)), rel=1e-9, abs=1e-9)


def test_streaming_stats_merge_empty_sides():
    stats = StreamingStats()
    stats.add(3.0)
    stats.merge(StreamingStats())  # no-op
    assert stats.count == 1 and stats.mean == 3.0
    empty = StreamingStats()
    empty.merge(stats)  # adopts the other side's moments
    assert empty.count == 1 and empty.mean == 3.0 and empty.variance == 0.0


def test_streaming_stats_merge_folds_sketches():
    left = StreamingStats(quantiles=True, capacity=64)
    right = StreamingStats(quantiles=True, capacity=64)
    for value in range(20):
        left.add(float(value))
    for value in range(20, 50):
        right.add(float(value))
    left.merge(right)
    assert left.sketch.exact  # union (50) fits the capacity (64)
    assert left.quantile(0.5) == float(np.percentile(np.arange(50.0), 50.0))


@given(left=_COUNTS, right=_COUNTS)
@settings(max_examples=200, deadline=None)
def test_count_series_merge_equals_whole_stream(left, right):
    merged = CountSeries()
    for value in left:
        merged.add(value)
    other = CountSeries()
    for value in right:
        other.add(value)
    merged.merge(other)
    whole = CountSeries()
    for value in left + right:
        whole.add(value)
    assert merged.histogram == whole.histogram
    assert merged.count == whole.count
    assert merged.total == whole.total
    assert merged.zeros == whole.zeros
    # histograms add exactly -> percentiles identical to the re-scan
    assert merged.summary() == percentile_summary(np.array(left + right))


def test_reservoir_merge_exact_while_union_fits():
    left = ReservoirSketch(capacity=32)
    right = ReservoirSketch(capacity=32)
    for value in range(10):
        left.add(float(value))
    for value in range(10, 25):
        right.add(float(value))
    left.merge(right)
    assert left.seen == 25
    assert left.exact
    assert sorted(left.values) == [float(v) for v in range(25)]


def test_reservoir_merge_deterministic_and_seen_proportional():
    def build():
        left = ReservoirSketch(capacity=16)
        right = ReservoirSketch(capacity=16)
        for value in range(300):
            left.add(float(value))
        for value in range(300, 1000):
            right.add(float(value))
        left.merge(right)
        return left

    first, second = build(), build()
    assert first.values == second.values  # no RNG draw in the merge
    assert first.seen == 1000
    assert len(first.values) == 16
    # each side contributes proportionally to how much it has *seen*:
    # right saw 70% of the stream -> ~11 of 16 slots
    from_right = sum(1 for value in first.values if value >= 300.0)
    assert 9 <= from_right <= 13


def test_reservoir_merge_empty_other_is_noop():
    sketch = ReservoirSketch(capacity=8)
    for value in range(5):
        sketch.add(float(value))
    before = (list(sketch.values), sketch.seen)
    sketch.merge(ReservoirSketch(capacity=8))
    assert (list(sketch.values), sketch.seen) == before


# ---------------------------------------------------------------------------
# end-to-end: the sampler probe's verification mode (REPRO_VERIFY_METRICS)


def test_sampler_probe_streaming_agrees_with_rescan_verification(monkeypatch):
    """Run a real scenario probe with REPRO_VERIFY_METRICS=1: the probe
    recomputes every metric from the retained history and raises on any
    mismatch, so a clean run *is* the assertion."""
    from repro.api import (
        ClusterSpec,
        ProbeSpec,
        Stack,
        SupplySpec,
        WorkloadSpec,
    )

    monkeypatch.setenv("REPRO_VERIFY_METRICS", "1")
    report = Stack(
        cluster=ClusterSpec(nodes=8),
        supply=SupplySpec("fib"),
        workloads=(
            WorkloadSpec("idleness-trace", min_intensity=4.0, outage_share=0.0),
        ),
        probes=(ProbeSpec("slurm-sampler"),),
        seed=7,
        horizon=600.0,
        name="verify-streaming",
    ).run()
    artifact = report.artifacts["slurm-sampler"]
    assert artifact.slurm_workers is not None
    assert artifact.zero_available_share == artifact.log.available_series.zero_share
