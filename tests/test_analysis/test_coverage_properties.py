"""Property-based tests of the coverage simulator's packing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.coverage import CoverageSimulator, greedy_fill_window
from repro.hpcwhisk.lengths import JOB_LENGTH_SETS, SET_A1


@given(window=st.floats(min_value=0.0, max_value=7200.0))
@settings(max_examples=300, deadline=None)
def test_greedy_pack_never_overflows_and_is_sorted(window):
    packed = greedy_fill_window(window, SET_A1.seconds)
    assert sum(packed) <= window + 1e-9
    assert packed == sorted(packed, reverse=True)
    # The residue is smaller than the shortest job.
    assert window - sum(packed) < min(SET_A1.seconds)or not packed or (
        window - sum(packed) < min(SET_A1.seconds)
    )


@given(
    window_minutes=st.integers(min_value=2, max_value=120),
    set_name=st.sampled_from(sorted(JOB_LENGTH_SETS)),
)
@settings(max_examples=300, deadline=None)
def test_even_windows_tile_exactly(window_minutes, set_name):
    """Every set tiles every even window in [2,120] exactly — Table I's
    structurally identical 'not used' column."""
    if window_minutes % 2:
        window_minutes += 1
    length_set = JOB_LENGTH_SETS[set_name]
    packed = length_set.greedy_pack(window_minutes)
    assert sum(packed) == window_minutes


@given(
    intervals=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=50_000.0),
            st.floats(min_value=1.0, max_value=9_000.0),
        ),
        min_size=1,
        max_size=25,
    ),
    warmup=st.floats(min_value=0.0, max_value=120.0),
)
@settings(max_examples=100, deadline=None)
def test_accounting_identity_holds_for_any_input(intervals, warmup):
    """warm-up + ready + unused == total surface, always."""
    # Build per-node non-overlapping intervals from (gap, width) pairs.
    by_node = {}
    cursor = 0.0
    node_intervals = []
    for gap, width in intervals:
        cursor += gap
        node_intervals.append((cursor, cursor + width))
        cursor += width
    by_node["n0"] = node_intervals
    result = CoverageSimulator(warmup=warmup).run(by_node, SET_A1)
    assert result.total_surface == sum(e - s for s, e in node_intervals)
    assert (
        abs(
            result.warmup_surface
            + result.ready_surface
            + result.unused_surface
            - result.total_surface
        )
        < 1e-6 * max(result.total_surface, 1.0)
    )
    assert result.warmup_surface >= 0
    assert result.ready_surface >= 0
    assert result.unused_surface >= -1e-9


@given(window_minutes=st.integers(min_value=2, max_value=60))
@settings(max_examples=60, deadline=None)
def test_greedy_warmup_count_at_most_optimal_plus_margin(window_minutes):
    """For even windows, greedy longest-first uses at most a few more jobs
    than the true minimum (computed by DP) — bounding the warm-up waste the
    heuristic can cause."""
    if window_minutes % 2:
        window_minutes += 1
    lengths = list(SET_A1.minutes)
    # DP: minimum number of jobs summing exactly to the window.
    INF = 10**9
    best = [INF] * (window_minutes + 1)
    best[0] = 0
    for total in range(1, window_minutes + 1):
        for length in lengths:
            if length <= total and best[total - length] + 1 < best[total]:
                best[total] = best[total - length] + 1
    greedy_count = len(SET_A1.greedy_pack(window_minutes))
    assert best[window_minutes] < INF
    assert greedy_count <= best[window_minutes] + 2
