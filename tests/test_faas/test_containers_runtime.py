"""Unit tests for container pools and runtimes."""

import numpy as np
import pytest

from repro.faas.containers import ContainerPool
from repro.faas.functions import FunctionDef
from repro.faas.runtime import ContainerRuntime, DockerRuntime, SingularityRuntime
from repro.sim import Interrupt


class InstantRuntime(ContainerRuntime):
    """Deterministic runtime for tests."""

    def cold_start_delay(self) -> float:
        return 1.0

    def warm_start_delay(self) -> float:
        return 0.0


@pytest.fixture
def pool(env, rng):
    return ContainerPool(env, InstantRuntime(rng), capacity=2)


def run_acquire(env, pool, function):
    """Helper: acquire once, release immediately, return (container, init)."""
    result = {}

    def proc(env):
        container, init = yield from pool.acquire(function)
        result["container"] = container
        result["init"] = init
        pool.release(container)

    env.process(proc(env))
    env.run()
    return result


def test_first_acquire_is_cold(env, pool):
    function = FunctionDef(name="f", duration=0.01)
    result = run_acquire(env, pool, function)
    assert result["init"] == 1.0
    assert pool.cold_starts == 1


def test_second_acquire_is_warm(env, pool):
    function = FunctionDef(name="f", duration=0.01)
    run_acquire(env, pool, function)
    result = run_acquire(env, pool, function)
    assert result["init"] == 0.0
    assert pool.warm_hits == 1


def test_different_function_needs_new_container(env, pool):
    run_acquire(env, pool, FunctionDef(name="f1", duration=0.01))
    result = run_acquire(env, pool, FunctionDef(name="f2", duration=0.01))
    assert result["init"] == 1.0
    assert pool.cold_starts == 2
    assert pool.size == 2


def test_lru_eviction_when_full(env, rng):
    pool = ContainerPool(env, InstantRuntime(rng), capacity=2)
    run_acquire(env, pool, FunctionDef(name="f1", duration=0.01))
    run_acquire(env, pool, FunctionDef(name="f2", duration=0.01))
    run_acquire(env, pool, FunctionDef(name="f3", duration=0.01))
    assert pool.evictions == 1
    assert pool.size == 2
    functions = {c.function for c in pool._containers}
    assert "f1" not in functions  # least recently used got evicted


def test_acquire_waits_when_all_busy(env, rng):
    pool = ContainerPool(env, InstantRuntime(rng), capacity=1)
    function = FunctionDef(name="f", duration=0.01)
    order = []

    def holder(env):
        container, _ = yield from pool.acquire(function)
        order.append(("hold", env.now))
        yield env.timeout(10)
        pool.release(container)

    def waiter(env):
        container, _ = yield from pool.acquire(function)
        order.append(("wait-served", env.now))
        pool.release(container)

    env.process(holder(env))
    env.process(waiter(env))
    env.run()
    assert order[0][0] == "hold"
    assert order[1] == ("wait-served", 11.0)


def test_interrupted_waiter_withdraws(env, rng):
    pool = ContainerPool(env, InstantRuntime(rng), capacity=1)
    function = FunctionDef(name="f", duration=0.01)

    def holder(env):
        container, _ = yield from pool.acquire(function)
        yield env.timeout(100)
        pool.release(container)

    def waiter(env):
        try:
            yield from pool.acquire(function)
        except Interrupt:
            return "interrupted"

    env.process(holder(env))
    waiter_proc = env.process(waiter(env))

    def killer(env):
        yield env.timeout(5)
        waiter_proc.interrupt()

    env.process(killer(env))
    env.run()
    assert waiter_proc.value == "interrupted"
    assert not pool._waiters


def test_interrupted_cold_start_discards_container(env, rng):
    pool = ContainerPool(env, InstantRuntime(rng), capacity=2)
    function = FunctionDef(name="f", duration=0.01)

    def starter(env):
        try:
            yield from pool.acquire(function)
        except Interrupt:
            return "stopped"

    proc = env.process(starter(env))

    def killer(env):
        yield env.timeout(0.5)  # mid-cold-start
        proc.interrupt()

    env.process(killer(env))
    env.run()
    assert proc.value == "stopped"
    assert pool.size == 0


def test_destroy_all_clears_and_wakes(env, rng):
    pool = ContainerPool(env, InstantRuntime(rng), capacity=1)
    function = FunctionDef(name="f", duration=0.01)

    def holder(env):
        container, _ = yield from pool.acquire(function)
        yield env.timeout(5)
        pool.destroy_all()

    env.process(holder(env))
    env.run()
    assert pool.size == 0


# ----------------------------------------------------------------------
# runtimes
# ----------------------------------------------------------------------
def test_singularity_is_hpc_compatible(rng):
    assert SingularityRuntime(rng).hpc_compatible()
    assert not DockerRuntime(rng).hpc_compatible()


def test_docker_has_full_isolation(rng):
    assert DockerRuntime(rng).capabilities.supports_full_isolation
    assert not SingularityRuntime(rng).capabilities.supports_full_isolation


def test_both_run_docker_images(rng):
    assert DockerRuntime(rng).capabilities.runs_docker_images
    assert SingularityRuntime(rng).capabilities.runs_docker_images


def test_cold_start_distributions(rng):
    docker = DockerRuntime(rng)
    singularity = SingularityRuntime(rng)
    docker_times = np.array([docker.cold_start_delay() for _ in range(2000)])
    singularity_times = np.array([singularity.cold_start_delay() for _ in range(2000)])
    # "usually in less than 500 milliseconds" for Docker
    assert np.median(docker_times) == pytest.approx(0.45, rel=0.1)
    # Singularity cold starts are modestly slower
    assert np.median(singularity_times) > np.median(docker_times)


def test_runtime_names(rng):
    assert DockerRuntime(rng).name == "docker"
    assert SingularityRuntime(rng).name == "singularity"
