"""Tests for the client wrappers: plain, commercial, and Alg. 1."""

import numpy as np
import pytest

from repro.faas import (
    ActivationStatus,
    Alg1Wrapper,
    Broker,
    CommercialCloud,
    Controller,
    FaaSClient,
    FaaSConfig,
    FunctionDef,
    Invoker,
)
from repro.sim import Interrupt


def build(env, with_invoker=False):
    config = FaaSConfig(system_overhead=0.0, publish_latency=0.001)
    broker = Broker(env, publish_latency=0.001)
    controller = Controller(env, broker, config=config, rng=np.random.default_rng(0))
    controller.deploy(FunctionDef(name="f", duration=0.01))
    client = FaaSClient(controller)
    commercial = CommercialCloud(env, np.random.default_rng(1), overhead_median=0.1, overhead_sigma=0.0)
    wrapper = Alg1Wrapper(client, commercial)
    if with_invoker:
        invoker = Invoker(env, "inv-1", "n0", broker, controller.registry,
                          config=config, rng=np.random.default_rng(2))

        def lifecycle(env):
            yield from invoker.register()
            try:
                yield from invoker.serve()
            except Interrupt:
                yield from invoker.drain()

        env.process(lifecycle(env))
    return client, commercial, wrapper


def test_commercial_cloud_always_succeeds(env):
    _, commercial, _ = build(env)

    def client_proc(env):
        result = yield from commercial.invoke("whatever", duration=0.5)
        return result

    proc = env.process(client_proc(env))
    env.run(until=10)
    result = proc.value
    assert result.status is ActivationStatus.SUCCESS
    assert result.backend == "commercial"
    # duration × 1.15 slowdown + 0.1 overhead
    assert result.response_time == pytest.approx(0.5 * 1.15 + 0.1, abs=1e-6)


def test_commercial_validation(env, rng):
    with pytest.raises(ValueError):
        CommercialCloud(env, rng, slowdown=0.0)


def test_wrapper_routes_to_hpc_when_available(env):
    _, commercial, wrapper = build(env, with_invoker=True)

    def client_proc(env):
        yield env.timeout(1)
        result = yield from wrapper.invoke("f", duration=0.01)
        return result

    proc = env.process(client_proc(env))
    env.run(until=10)
    assert proc.value.backend == "hpc-whisk"
    assert wrapper.stats.hpc_calls == 1
    assert wrapper.stats.commercial_calls == 0


def test_wrapper_falls_back_on_503_and_retries_commercially(env):
    _, commercial, wrapper = build(env)  # no invoker: always 503

    def client_proc(env):
        result = yield from wrapper.invoke("f", duration=0.01)
        return result

    proc = env.process(client_proc(env))
    env.run(until=10)
    assert proc.value.status is ActivationStatus.SUCCESS
    assert proc.value.backend == "commercial"
    assert wrapper.stats.rejections_503 == 1
    assert wrapper.stats.commercial_calls == 1


def test_wrapper_backoff_window(env):
    _, commercial, wrapper = build(env)

    def client_proc(env):
        first = yield from wrapper.invoke("f", duration=0.01)   # 503 → commercial
        yield env.timeout(30)                                   # within 60 s window
        second = yield from wrapper.invoke("f", duration=0.01)  # straight commercial
        yield env.timeout(61)                                   # window expired
        third = yield from wrapper.invoke("f", duration=0.01)   # probes HPC again
        return first, second, third

    proc = env.process(client_proc(env))
    env.run(until=200)
    assert wrapper.stats.rejections_503 == 2  # first probe and third probe
    assert wrapper.stats.commercial_calls == 3
    assert wrapper.stats.hpc_calls == 2


def test_wrapper_validation(env):
    client, commercial, _ = build(env)
    with pytest.raises(ValueError):
        Alg1Wrapper(client, commercial, backoff=0.0)
