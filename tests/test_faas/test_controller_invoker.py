"""Integration tests for the controller + invoker protocol."""

import numpy as np
import pytest

from repro.faas import (
    ActivationStatus,
    Broker,
    Controller,
    FaaSConfig,
    FunctionDef,
    Invoker,
    InvokerStatus,
)
from repro.faas.broker import FASTLANE_TOPIC
from repro.sim import Interrupt


def fast_config(**overrides):
    defaults = dict(
        publish_latency=0.001,
        system_overhead=0.0,
        drain_notify_delay=0.01,
        drain_republish_delay=0.001,
        drain_deregister_delay=0.01,
    )
    defaults.update(overrides)
    return FaaSConfig(**defaults)


def build_stack(env, config=None):
    config = config or fast_config()
    broker = Broker(env, publish_latency=config.publish_latency)
    controller = Controller(env, broker, config=config, rng=np.random.default_rng(0))
    return broker, controller, config


def spawn_invoker(env, broker, controller, config, invoker_id="inv-1", node="n0000"):
    invoker = Invoker(
        env, invoker_id, node, broker, controller.registry,
        config=config, rng=np.random.default_rng(1),
    )

    def lifecycle(env):
        yield from invoker.register()
        try:
            yield from invoker.serve()
        except Interrupt:
            yield from invoker.drain()

    proc = env.process(lifecycle(env))
    return invoker, proc


# ----------------------------------------------------------------------
# registration & health
# ----------------------------------------------------------------------
def test_register_makes_invoker_healthy(env):
    broker, controller, config = build_stack(env)
    invoker, _ = spawn_invoker(env, broker, controller, config)
    env.run(until=1)
    assert controller.healthy_invokers() == ["inv-1"]
    assert controller.invokers["inv-1"].status is InvokerStatus.HEALTHY


def test_missed_pings_mark_invoker_gone(env):
    """An invoker that registers and then falls silent (crash / SIGKILL
    without drain) is detected by the ping scanner."""
    broker, controller, config = build_stack(env)
    from repro.faas.messages import PingMessage

    broker.publish("health", PingMessage("crashed", "register", 0.0, node="n0000"))
    env.run(until=30)  # ping_timeout is 10 s, scanner period 2 s
    assert controller.invokers["crashed"].status is InvokerStatus.GONE
    assert any(e.kind == "invoker_lost" for e in controller.events)


def test_invoke_without_function_fails(env):
    broker, controller, config = build_stack(env)

    def client(env):
        result = yield from controller.invoke("ghost")
        return result

    proc = env.process(client(env))
    env.run(until=5)
    assert proc.value.status is ActivationStatus.FAILED


def test_invoke_without_invokers_returns_503(env):
    broker, controller, config = build_stack(env)
    controller.deploy(FunctionDef(name="f", duration=0.01))

    def client(env):
        result = yield from controller.invoke("f")
        return result

    proc = env.process(client(env))
    env.run(until=5)
    assert proc.value.status is ActivationStatus.UNAVAILABLE
    assert controller.unavailable_count == 1


# ----------------------------------------------------------------------
# invocation path
# ----------------------------------------------------------------------
def test_end_to_end_invocation(env):
    broker, controller, config = build_stack(env)
    controller.deploy(FunctionDef(name="f", duration=0.05))
    spawn_invoker(env, broker, controller, config)

    def client(env):
        yield env.timeout(1)  # let registration land
        result = yield from controller.invoke("f")
        return result

    proc = env.process(client(env))
    env.run(until=10)
    result = proc.value
    assert result.status is ActivationStatus.SUCCESS
    assert result.response_time > 0.05  # duration + cold start
    record = controller.records[0]
    assert record.status is ActivationStatus.SUCCESS
    assert record.duration == pytest.approx(0.05)
    assert record.init_time > 0  # cold start charged


def test_warm_second_invocation_faster(env):
    broker, controller, config = build_stack(env)
    controller.deploy(FunctionDef(name="f", duration=0.05))
    spawn_invoker(env, broker, controller, config)

    def client(env):
        yield env.timeout(1)
        first = yield from controller.invoke("f")
        second = yield from controller.invoke("f")
        return first, second

    proc = env.process(client(env))
    env.run(until=10)
    first, second = proc.value
    assert second.response_time < first.response_time


def test_hash_affinity_routes_same_function_to_same_invoker(env):
    broker, controller, config = build_stack(env)
    controller.deploy(FunctionDef(name="f", duration=0.01))
    spawn_invoker(env, broker, controller, config, invoker_id="inv-1")
    spawn_invoker(env, broker, controller, config, invoker_id="inv-2", node="n0001")

    def client(env):
        yield env.timeout(1)
        for _ in range(5):
            yield from controller.invoke("f")

    env.process(client(env))
    env.run(until=10)
    assert len({r.invoker_id for r in controller.records}) == 1


def test_activation_timeout_when_invoker_silent(env):
    config = fast_config(activation_timeout=5.0)
    broker, controller, _ = build_stack(env, config)
    controller.deploy(FunctionDef(name="f", duration=0.01))
    # Register a ghost invoker that never pulls its topic but pings.
    from repro.faas.messages import PingMessage

    broker.publish("health", PingMessage("ghost", "register", 0.0, node="x"))

    def keep_alive(env):
        while True:
            yield env.timeout(1.0)
            broker.publish("health", PingMessage("ghost", "healthy", env.now))

    env.process(keep_alive(env))

    def client(env):
        yield env.timeout(0.5)
        result = yield from controller.invoke("f")
        return result

    proc = env.process(client(env))
    env.run(until=20)
    assert proc.value.status is ActivationStatus.TIMEOUT
    assert proc.value.response_time == pytest.approx(5.0, abs=0.1)


def test_overload_rejection(env):
    config = fast_config(buffer_limit=2, max_containers=1)
    broker, controller, _ = build_stack(env, config)
    controller.deploy(FunctionDef(name="slow", duration=30.0))
    invoker, _ = spawn_invoker(env, broker, controller, config)

    def client(env):
        yield env.timeout(1)
        results = []
        procs = [env.process(controller.invoke("slow")) for _ in range(6)]
        for proc in procs:
            results.append((yield proc))
        return results

    proc = env.process(client(env))
    env.run(until=300)
    statuses = [r.status for r in proc.value]
    assert statuses.count(ActivationStatus.FAILED) >= 3
    assert invoker.stats.rejected_overload >= 3


# ----------------------------------------------------------------------
# drain protocol (Sec. III-C)
# ----------------------------------------------------------------------
def test_drain_deregisters_and_moves_unpulled_to_fastlane(env):
    broker, controller, config = build_stack(env)
    controller.deploy(FunctionDef(name="f", duration=0.01))
    invoker, proc = spawn_invoker(env, broker, controller, config)
    env.run(until=1)
    # Park messages in the invoker topic while it is busy pulling: publish
    # directly (controller would route here anyway).
    proc.interrupt("sigterm")
    env.run(until=5)
    assert controller.invokers["inv-1"].status is InvokerStatus.GONE
    assert invoker.stats.deregistered_at is not None


def test_drain_requeues_buffered_work_to_fastlane_and_other_invoker_serves(env):
    config = fast_config(activation_timeout=30.0)
    broker, controller, _ = build_stack(env, config)
    controller.deploy(FunctionDef(name="job", duration=5.0))
    # Single invoker first: it will receive the work.
    invoker1, proc1 = spawn_invoker(env, broker, controller, config, "inv-1")

    results = []

    def client(env):
        yield env.timeout(1)
        procs = [env.process(controller.invoke("job")) for _ in range(4)]
        for p in procs:
            results.append((yield p))

    env.process(client(env))

    def second_invoker(env):
        yield env.timeout(2.5)
        spawn_invoker(env, broker, controller, config, "inv-2", node="n0001")

    env.process(second_invoker(env))

    def sigterm(env):
        yield env.timeout(3.0)  # inv-1 executing + buffered work
        proc1.interrupt("sigterm")

    env.process(sigterm(env))
    env.run(until=60)
    statuses = [r.status for r in results]
    assert statuses.count(ActivationStatus.SUCCESS) == 4
    # At least one activation travelled through the fast lane.
    assert any(r.fast_laned for r in results)
    served_by = {r.activation_id: None for r in results}
    assert any(rec.invoker_id == "inv-2" for rec in controller.records)


def test_drain_without_other_invokers_loses_requeued_work_to_timeout(env):
    config = fast_config(activation_timeout=8.0)
    broker, controller, _ = build_stack(env, config)
    controller.deploy(FunctionDef(name="job", duration=5.0))
    invoker, proc = spawn_invoker(env, broker, controller, config)

    results = []

    def client(env):
        yield env.timeout(1)
        procs = [env.process(controller.invoke("job")) for _ in range(2)]
        for p in procs:
            results.append((yield p))

    env.process(client(env))

    def sigterm(env):
        yield env.timeout(2.0)
        proc.interrupt("sigterm")

    env.process(sigterm(env))
    env.run(until=60)
    # Requeued messages sat in the fast lane with nobody to serve them.
    statuses = {r.status for r in results}
    assert ActivationStatus.TIMEOUT in statuses


def test_non_interruptible_execution_finishes_during_drain(env):
    config = fast_config(interrupt_running=True, activation_timeout=30.0)
    broker, controller, _ = build_stack(env, config)
    controller.deploy(FunctionDef(name="job", duration=4.0))
    invoker, proc = spawn_invoker(env, broker, controller, config)

    results = []

    def client(env):
        yield env.timeout(1)
        result = yield from controller.invoke("job", interruptible=False)
        results.append(result)

    env.process(client(env))

    def sigterm(env):
        yield env.timeout(2.0)  # mid-execution
        proc.interrupt("sigterm")

    env.process(sigterm(env))
    env.run(until=60)
    assert results[0].status is ActivationStatus.SUCCESS
    # It was NOT fast-laned: the execution ran to completion locally.
    assert invoker.stats.completed == 1


def test_interruptible_execution_requeued_on_drain(env):
    config = fast_config(interrupt_running=True, activation_timeout=30.0)
    broker, controller, _ = build_stack(env, config)
    controller.deploy(FunctionDef(name="job", duration=10.0))
    invoker1, proc1 = spawn_invoker(env, broker, controller, config, "inv-1")
    spawn_stage = {}

    results = []

    def client(env):
        yield env.timeout(1)
        result = yield from controller.invoke("job", interruptible=True)
        results.append(result)

    env.process(client(env))

    def sigterm(env):
        yield env.timeout(3.0)
        proc1.interrupt("sigterm")
        # A second invoker appears and picks the requeued execution up.
        spawn_invoker(env, broker, controller, config, "inv-2", node="n0001")

    env.process(sigterm(env))
    env.run(until=60)
    assert results and results[0].status is ActivationStatus.SUCCESS
    assert results[0].fast_laned
    assert invoker1.stats.requeued_on_drain == 1


def test_fastlane_served_before_own_topic(env):
    broker, controller, config = build_stack(env)
    controller.deploy(FunctionDef(name="f", duration=0.01))
    from repro.faas.messages import ActivationMessage

    # Pre-load both topics before the invoker starts pulling.
    own = ActivationMessage("act-own", "f", None, 0.0, duration=0.01)
    fast = ActivationMessage("act-fast", "f", None, 0.0, duration=0.01)
    broker.topic("invoker-inv-1").put(own)
    broker.topic(FASTLANE_TOPIC).put(fast)

    served = []
    invoker = Invoker(
        env, "inv-1", "n0000", broker, controller.registry,
        config=config, rng=np.random.default_rng(1),
    )
    original = invoker._accept

    def spy(message):
        served.append(message.activation_id)
        original(message)

    invoker._accept = spy

    def lifecycle(env):
        yield from invoker.register()
        try:
            yield from invoker.serve()
        except Interrupt:
            pass

    env.process(lifecycle(env))
    env.run(until=5)
    assert served[0] == "act-fast"
