"""Unit tests for the message broker."""

import pytest

from repro.faas.broker import Broker, FASTLANE_TOPIC


def test_topic_created_on_demand(env):
    broker = Broker(env)
    topic = broker.topic("t1")
    assert broker.topic("t1") is topic
    assert broker.topic_names() == ["t1"]


def test_publish_delivery_latency(env):
    broker = Broker(env, publish_latency=0.5)
    received = []

    def consumer(env):
        message = yield broker.get("t")
        received.append((message, env.now))

    env.process(consumer(env))
    broker.publish("t", "hello")
    env.run()
    assert received == [("hello", 0.5)]


def test_zero_latency_publish_is_synchronous(env):
    broker = Broker(env, publish_latency=0.0)
    broker.publish("t", "x")
    assert broker.depth("t") == 1


def test_negative_latency_rejected(env):
    with pytest.raises(ValueError):
        Broker(env, publish_latency=-0.1)


def test_per_topic_fifo_order(env):
    broker = Broker(env, publish_latency=0.01)
    received = []

    def consumer(env):
        while True:
            received.append((yield broker.get("t")))

    env.process(consumer(env))
    for i in range(10):
        broker.publish("t", i)
    env.run(until=1)
    assert received == list(range(10))


def test_move_all_is_atomic_and_instant(env):
    broker = Broker(env, publish_latency=0.01)
    for i in range(4):
        broker.publish("src", i)
    env.run(until=1)
    moved = broker.move_all("src", FASTLANE_TOPIC)
    assert moved == 4
    assert broker.depth("src") == 0
    assert broker.depth(FASTLANE_TOPIC) == 4


def test_move_all_wakes_destination_getter(env):
    broker = Broker(env, publish_latency=0.0)
    got = []

    def consumer(env):
        got.append((yield broker.get("dst")))

    env.process(consumer(env))
    broker.publish("src", "m")
    env.run(until=0.1)
    broker.move_all("src", "dst")
    env.run(until=0.2)
    assert got == ["m"]


def test_published_counts(env):
    broker = Broker(env)
    broker.publish("a", 1)
    broker.publish("a", 2)
    broker.publish("b", 3)
    assert broker.published_counts == {"a": 2, "b": 1}


def test_multiple_consumers_share_topic_fifo(env):
    """The fast lane is multi-consumer: each message goes to exactly one."""
    broker = Broker(env, publish_latency=0.0)
    got = {"c1": [], "c2": []}

    def consumer(env, tag):
        while True:
            got[tag].append((yield broker.get(FASTLANE_TOPIC)))

    env.process(consumer(env, "c1"))
    env.process(consumer(env, "c2"))

    def producer(env):
        for i in range(6):
            broker.publish(FASTLANE_TOPIC, i)
            yield env.timeout(1)

    env.process(producer(env))
    env.run(until=10)
    assert sorted(got["c1"] + got["c2"]) == list(range(6))
    assert got["c1"] and got["c2"]  # both actually served
