"""View-identity caching in the federation routers: byte-identical RNG.

The routers cache derived per-view state (candidate lists, cumulative
weights, crc32 homes, failover winners) keyed on the *identity* of the
healthy-view dict the controller hands out.  The cache must be purely an
accelerator: against a reference implementation of the original
rescan-per-call policies, every choice — and the state of the shared RNG
stream afterwards — must match exactly, cache hits and misses alike.
"""

import zlib

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faas.router import ROUTERS, WeightedIdle


def _reference_choose(name, rng, function, clusters):
    """The pre-cache policies, verbatim (rescan + rng.choice per call)."""
    candidates = [cid for cid, healthy in clusters.items() if healthy]
    if name == "weighted-idle":
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0]
        weights = np.array([float(len(clusters[cid])) for cid in candidates])
        weights = weights / weights.sum()
        return candidates[int(rng.choice(len(candidates), p=weights))]
    if name == "affinity-first":
        members = sorted(clusters)
        if not members:
            return None
        home = zlib.crc32(function.encode("utf-8")) % len(members)
        for offset in range(len(members)):
            cid = members[(home + offset) % len(members)]
            if clusters[cid]:
                return cid
        return None
    for cid, healthy in clusters.items():  # failover
        if healthy:
            return cid
    return None


_VIEWS = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=4),
        min_size=1,
        max_size=4,
    ).map(
        lambda counts: {
            f"cl{index}": [f"inv-{index}-{i}" for i in range(count)]
            for index, count in enumerate(counts)
        }
    ),
    min_size=1,
    max_size=8,
)

_CALLS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),  # which view (mod len)
        st.text(alphabet="abcdef", min_size=1, max_size=6),
    ),
    min_size=1,
    max_size=40,
)


@given(
    views=_VIEWS,
    calls=_CALLS,
    policy=st.sampled_from(sorted(ROUTERS)),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=150, deadline=None)
def test_cached_router_matches_reference_with_rng_in_lockstep(
    views, calls, policy, seed
):
    router = ROUTERS[policy]()
    rng_cached = np.random.default_rng(seed)
    rng_reference = np.random.default_rng(seed)
    router.bind_rng(rng_cached)
    # reusing view objects across calls exercises cache *hits*; switching
    # between views exercises invalidation-by-identity
    for view_index, function in calls:
        view = views[view_index % len(views)]
        got = router.choose(function, view, None)
        want = _reference_choose(policy, rng_reference, function, view)
        assert got == want, (policy, view, function)
    # the shared stream is byte-identical afterwards: the next draw from
    # either generator is the same number
    assert rng_cached.random() == rng_reference.random()


def test_weighted_idle_recomputes_when_view_object_changes():
    router = WeightedIdle()
    router.bind_rng(np.random.default_rng(5))
    first = {"a": ["i1", "i2"], "b": ["j1"]}
    for _ in range(10):
        assert router.choose("f", first, None) in ("a", "b")
    # a *new* dict with different populations must not reuse the old cdf
    second = {"a": [], "b": ["j1"]}
    assert router.choose("f", second, None) == "b"
    third = {"a": [], "b": []}
    assert router.choose("f", third, None) is None
