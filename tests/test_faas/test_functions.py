"""Tests for the function registry."""

import pytest

from repro.faas.functions import FunctionDef, FunctionRegistry, sleep_functions


def test_default_duration_for_empty_def():
    function = FunctionDef(name="noop")
    assert function.duration == 0.01


def test_validation():
    with pytest.raises(ValueError):
        FunctionDef(name="bad", duration=-1.0)
    with pytest.raises(ValueError):
        FunctionDef(name="bad", duration=1.0, memory_mb=0)


def test_fixed_duration_sampling(rng):
    function = FunctionDef(name="f", duration=0.25)
    assert function.sample_duration(rng) == 0.25


def test_sampler_duration(rng):
    function = FunctionDef(name="f", duration_sampler=lambda r: float(r.uniform(1, 2)))
    values = {function.sample_duration(rng) for _ in range(10)}
    assert all(1 <= v <= 2 for v in values)
    assert len(values) > 1


def test_callable_without_duration_raises(rng):
    function = FunctionDef(name="f", callable=lambda payload: payload)
    with pytest.raises(RuntimeError):
        function.sample_duration(rng)


def test_registry_deploy_get_remove():
    registry = FunctionRegistry()
    function = FunctionDef(name="f", duration=0.01)
    registry.deploy(function)
    assert "f" in registry
    assert registry.get("f") is function
    registry.remove("f")
    assert "f" not in registry
    with pytest.raises(KeyError):
        registry.get("f")


def test_registry_redeploy_overwrites():
    registry = FunctionRegistry()
    registry.deploy(FunctionDef(name="f", duration=0.01))
    registry.deploy(FunctionDef(name="f", duration=0.5))
    assert registry.get("f").duration == 0.5
    assert len(registry) == 1


def test_sleep_functions_shape():
    functions = sleep_functions(100)
    assert len(functions) == 100
    assert len({f.name for f in functions}) == 100
    assert all(f.duration == 0.010 for f in functions)
