"""Incremental control-plane state vs a brute-force registry rescan.

The controller maintains its healthy-invoker pools, the cached
``healthy_by_cluster`` view, and per-cluster inflight counts
*incrementally* (updated on status transitions / accept / resolve only).
These tests replay random transition scripts through the same helpers
the consumers use and, after every step, compare against the old
full-rescan derivation — the incremental state must be a pure cache,
never an approximation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faas.activation import ActivationRecord
from repro.faas.broker import Broker
from repro.faas.controller import Controller, InvokerRecord, InvokerStatus
from repro.faas.router import Failover
from repro.sim import Environment, Event

CLUSTERS = ["east", "west", "extra-1", "extra-2"]
DECLARED = ["east", "west"]

#: one transition: (invoker index, cluster index, bring it up?)
_SCRIPT = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=len(CLUSTERS) - 1),
        st.booleans(),
    ),
    min_size=1,
    max_size=60,
)


def _controller():
    env = Environment()
    return Controller(
        env,
        Broker(env),
        rng=np.random.default_rng(0),
        router=Failover(),
        cluster_order=list(DECLARED),
    )


def _rescan_healthy(controller, cluster=None):
    """The old derivation: sorted scan over the whole registry."""
    return sorted(
        record.invoker_id
        for record in controller.invokers.values()
        if record.status is InvokerStatus.HEALTHY
        and (cluster is None or record.cluster_id == cluster)
    )


def _rescan_by_cluster(controller):
    """The old view: declared members first, then setdefault-in-sorted-order."""
    view = {cid: [] for cid in controller.cluster_order}
    for invoker_id in sorted(controller.invokers):
        record = controller.invokers[invoker_id]
        if record.status is InvokerStatus.HEALTHY:
            view.setdefault(record.cluster_id, []).append(invoker_id)
    return view


def _apply(controller, invoker_id, cluster_id, up):
    """Replay one transition via the consumers' helpers."""
    record = controller.invokers.get(invoker_id)
    if up:
        if record is not None and record.status is InvokerStatus.HEALTHY:
            controller._pool_remove(record)  # re-registration, maybe moved
        if record is None:
            record = InvokerRecord(
                invoker_id=invoker_id,
                node=f"node-{invoker_id}",
                status=InvokerStatus.HEALTHY,
                registered_at=0.0,
                last_ping=0.0,
                status_since=0.0,
                cluster_id=cluster_id,
            )
            controller.invokers[invoker_id] = record
        else:
            record.status = InvokerStatus.HEALTHY
            record.cluster_id = cluster_id
        controller._pool_add(record)
    elif record is not None:
        if record.status is InvokerStatus.HEALTHY:
            controller._pool_remove(record)
        record.status = InvokerStatus.GONE


@given(script=_SCRIPT)
@settings(max_examples=150, deadline=None)
def test_incremental_pools_match_full_rescan(script):
    controller = _controller()
    for index, cluster_index, up in script:
        _apply(controller, f"inv-{index}", CLUSTERS[cluster_index], up)
        assert controller.healthy_invokers() == _rescan_healthy(controller)
        for cluster in CLUSTERS:
            assert controller.healthy_invokers(cluster=cluster) == _rescan_healthy(
                controller, cluster
            )
        assert controller.healthy_by_cluster() == _rescan_by_cluster(controller)


@given(script=_SCRIPT)
@settings(max_examples=50, deadline=None)
def test_view_identity_is_stable_until_a_transition(script):
    controller = _controller()
    for index, cluster_index, up in script:
        _apply(controller, f"inv-{index}", CLUSTERS[cluster_index], up)
        first = controller.healthy_by_cluster()
        # reads never invalidate: same dict object until the next transition
        assert controller.healthy_by_cluster() is first
        snapshot = {cid: list(members) for cid, members in first.items()}
        _apply(controller, f"inv-{index}", CLUSTERS[cluster_index], up)
        # a transition rebuilds rather than mutates: the old dict object
        # keeps its contents, so identity-keyed router caches stay sound
        assert first == snapshot


@given(
    ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=len(CLUSTERS) - 1), st.booleans()),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=100, deadline=None)
def test_inflight_counts_match_pending_scan(ops):
    controller = _controller()
    env = controller.env
    live = []
    serial = 0
    for cluster_index, accept in ops:
        cluster_id = CLUSTERS[cluster_index]
        if accept or not live:
            serial += 1
            record = ActivationRecord(
                activation_id=f"act-{serial}",
                function="f",
                submitted_at=0.0,
                invoker_id="inv-0",
                cluster_id=cluster_id,
            )
            controller._pending_add(Event(env), record)
            live.append(record)
        else:
            record = live.pop()
            del controller._pending[record.activation_id]
            controller._inflight_dec(record)
        pending = [rec for _done, rec in controller._pending.values()]
        assert controller.inflight_count == len(pending)
        for cluster in CLUSTERS:
            expected = sum(1 for rec in pending if rec.cluster_id == cluster)
            assert controller.inflight_count_for(cluster) == expected
