"""Tests for controller load-balancing strategies."""

import numpy as np
import pytest

from repro.faas.broker import Broker
from repro.faas.loadbalancer import HashAffinity, LeastLoaded, RoundRobin


@pytest.fixture
def broker(env):
    return Broker(env, publish_latency=0.0)


HEALTHY = ["inv-1", "inv-2", "inv-3"]


def test_hash_affinity_stable(broker):
    balancer = HashAffinity()
    first = balancer.choose("my-function", HEALTHY, broker)
    for _ in range(10):
        assert balancer.choose("my-function", HEALTHY, broker) == first


def test_hash_affinity_spreads_functions(broker):
    balancer = HashAffinity()
    chosen = {balancer.choose(f"fn-{i}", HEALTHY, broker) for i in range(50)}
    assert chosen == set(HEALTHY)


def test_hash_affinity_empty(broker):
    assert HashAffinity().choose("f", [], broker) is None


def test_hash_affinity_remaps_on_membership_change(broker):
    balancer = HashAffinity()
    with_three = balancer.choose("f", HEALTHY, broker)
    with_two = balancer.choose("f", HEALTHY[:2], broker)
    assert with_three in HEALTHY
    assert with_two in HEALTHY[:2]


def test_round_robin_cycles(broker):
    balancer = RoundRobin()
    sequence = [balancer.choose("whatever", HEALTHY, broker) for _ in range(6)]
    assert sequence == HEALTHY * 2


def test_round_robin_empty(broker):
    assert RoundRobin().choose("f", [], broker) is None


def test_least_loaded_picks_shallowest(broker):
    balancer = LeastLoaded()
    broker.topic("invoker-inv-1").put("m1")
    broker.topic("invoker-inv-1").put("m2")
    broker.topic("invoker-inv-2").put("m1")
    assert balancer.choose("f", HEALTHY, broker) == "inv-3"


def test_least_loaded_tie_breaks_by_name(broker):
    assert LeastLoaded().choose("f", HEALTHY, broker) == "inv-1"


def test_controller_accepts_custom_balancer(env):
    from repro.faas import Controller, FaaSConfig

    broker = Broker(env, publish_latency=0.0)
    controller = Controller(
        env, broker, config=FaaSConfig(), rng=np.random.default_rng(0),
        load_balancer=RoundRobin(),
    )
    assert controller.load_balancer.name == "round-robin"
