"""Tests for the activation store query layer."""

import pytest

from repro.faas.activation import ActivationRecord, ActivationStatus
from repro.faas.activation_store import ActivationStore


def record(aid, function, submitted, status, duration=0.1, wait=0.01, init=0.0,
           fast_laned=False):
    r = ActivationRecord(
        activation_id=aid, function=function, submitted_at=submitted, invoker_id="inv-1"
    )
    r.status = status
    r.completed_at = submitted + duration + wait
    r.duration = duration
    r.wait_time = wait
    r.init_time = init
    r.fast_laned = fast_laned
    return r


@pytest.fixture
def store():
    return ActivationStore([
        record("a1", "f1", 0.0, ActivationStatus.SUCCESS, init=0.5),
        record("a2", "f1", 10.0, ActivationStatus.SUCCESS),
        record("a3", "f1", 20.0, ActivationStatus.FAILED),
        record("a4", "f2", 30.0, ActivationStatus.SUCCESS, fast_laned=True),
        record("a5", "f2", 40.0, ActivationStatus.TIMEOUT),
    ])


def test_list_newest_first(store):
    listing = store.list()
    assert [r.activation_id for r in listing] == ["a5", "a4", "a3", "a2", "a1"]


def test_list_filters(store):
    assert len(store.list(function="f1")) == 3
    assert len(store.list(status=ActivationStatus.SUCCESS)) == 3
    assert [r.activation_id for r in store.list(since=10.0, upto=30.0)] == ["a3", "a2"]
    assert len(store.list(limit=2)) == 2


def test_get(store):
    assert store.get("a3").function == "f1"
    with pytest.raises(KeyError):
        store.get("ghost")


def test_summaries(store):
    summary = store.summarize_function("f1")
    assert summary.invocations == 3
    assert summary.successes == 2
    assert summary.failures == 1
    assert summary.cold_starts == 1
    assert summary.success_rate == pytest.approx(2 / 3)
    assert summary.cold_start_rate == pytest.approx(1 / 3)
    all_summaries = store.summaries()
    assert set(all_summaries) == {"f1", "f2"}
    assert all_summaries["f2"].timeouts == 1


def test_latency_breakdown(store):
    breakdown = store.latency_breakdown()
    assert breakdown["count"] == 3
    assert breakdown["run"] == pytest.approx(0.1)
    assert breakdown["wait"] == pytest.approx(0.01)


def test_latency_breakdown_empty():
    assert ActivationStore([]).latency_breakdown()["count"] == 0


def test_fast_laned_share(store):
    assert store.fast_laned_share() == pytest.approx(1 / 5)


def test_render(store):
    text = store.render()
    assert "f1" in text and "f2" in text
    assert "cold%" in text


def test_store_over_live_controller_run(env):
    """End-to-end: run a tiny stack and query its ledger."""
    import numpy as np

    from repro.faas import Broker, Controller, FaaSConfig, FunctionDef, Invoker
    from repro.sim import Interrupt

    config = FaaSConfig(system_overhead=0.0)
    broker = Broker(env, publish_latency=0.001)
    controller = Controller(env, broker, config=config, rng=np.random.default_rng(0))
    controller.deploy(FunctionDef(name="f", duration=0.02))
    invoker = Invoker(env, "inv-1", "n0", broker, controller.registry,
                      config=config, rng=np.random.default_rng(1))

    def lifecycle(env):
        yield from invoker.register()
        try:
            yield from invoker.serve()
        except Interrupt:
            pass

    env.process(lifecycle(env))

    def client(env):
        yield env.timeout(1)
        for _ in range(5):
            yield from controller.invoke("f")

    env.process(client(env))
    env.run(until=30)
    store = ActivationStore(controller.records)
    assert len(store) == 5
    summary = store.summarize_function("f")
    assert summary.successes == 5
    assert summary.cold_starts == 1  # first call only
