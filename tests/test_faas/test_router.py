"""FederationRouter policies: validity, determinism, conservation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faas.broker import Broker
from repro.faas.config import FaaSConfig
from repro.faas.controller import Controller
from repro.faas.functions import sleep_functions
from repro.faas.invoker import Invoker
from repro.faas.router import ROUTERS, AffinityFirst, Failover, WeightedIdle
from repro.sim import Interrupt

# ---------------------------------------------------------------------------
# strategies


def pools_strategy():
    """Ordered cluster -> healthy-invoker-list maps (some empty)."""
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=9),
            st.integers(min_value=0, max_value=5),
        ),
        min_size=1,
        max_size=6,
        unique_by=lambda pair: pair[0],
    ).map(
        lambda pairs: {
            f"cl{index}": [f"inv-{index}-{i}" for i in range(count)]
            for index, count in pairs
        }
    )


FUNCTIONS = st.lists(
    st.text(alphabet="abcdef", min_size=1, max_size=8), min_size=1, max_size=20
)


def make_router(name, seed=0):
    router = ROUTERS[name]()
    router.bind_rng(np.random.default_rng(seed))
    return router


# ---------------------------------------------------------------------------
# validity: a routed cluster always has a healthy worker; None only
# when the whole fleet is dry (conservation at the policy level: every
# call yields exactly one valid member or an explicit 503)


@settings(max_examples=200, deadline=None)
@given(pools=pools_strategy(), functions=FUNCTIONS, policy=st.sampled_from(sorted(ROUTERS)))
def test_choice_is_valid_or_none(pools, functions, policy):
    router = make_router(policy)
    populated = any(pools.values())
    for function in functions:
        choice = router.choose(function, pools, broker=None)
        if populated:
            assert choice in pools and pools[choice], (policy, choice, pools)
        else:
            assert choice is None


# ---------------------------------------------------------------------------
# determinism: under a fixed seed the full routing sequence replays


@settings(max_examples=100, deadline=None)
@given(
    pools=pools_strategy(),
    functions=FUNCTIONS,
    policy=st.sampled_from(sorted(ROUTERS)),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_routing_deterministic_under_fixed_seed(pools, functions, policy, seed):
    a = make_router(policy, seed)
    b = make_router(policy, seed)
    sequence_a = [a.choose(function, pools, None) for function in functions]
    sequence_b = [b.choose(function, pools, None) for function in functions]
    assert sequence_a == sequence_b


# ---------------------------------------------------------------------------
# policy shapes


def test_failover_prefers_declaration_order():
    router = Failover()
    pools = {"z": ["i1"], "a": ["i2"]}
    assert router.choose("f", pools, None) == "z"  # declaration, not sorted
    assert router.choose("f", {"z": [], "a": ["i2"]}, None) == "a"


def test_affinity_first_is_stable_and_fails_over():
    router = AffinityFirst()
    pools = {"a": ["i1"], "b": ["i2"]}
    home = router.choose("func-x", pools, None)
    assert all(router.choose("func-x", pools, None) == home for _ in range(5))
    # drying the home cluster moves the function to the other member
    dry = dict(pools, **{home: []})
    other = router.choose("func-x", dry, None)
    assert other != home and dry[other]


def test_weighted_idle_follows_capacity():
    router = make_router("weighted-idle", seed=7)
    pools = {"big": [f"i{i}" for i in range(9)], "small": ["j0"]}
    choices = [router.choose("f", pools, None) for _ in range(500)]
    big_share = choices.count("big") / len(choices)
    assert 0.8 < big_share < 1.0  # ~0.9 expected, never exclusive


def test_weighted_idle_requires_bound_rng():
    router = WeightedIdle()
    with pytest.raises(RuntimeError, match="bind_rng"):
        router.choose("f", {"a": ["i"], "b": ["j"]}, None)
    # single populated member needs no draw
    assert router.choose("f", {"a": ["i"], "b": []}, None) == "a"


# ---------------------------------------------------------------------------
# conservation through the controller: every submitted activation is
# either routed to exactly one cluster-tagged invoker or 503'd


@pytest.mark.parametrize("policy", sorted(ROUTERS))
def test_controller_conserves_activations(policy, env):
    broker = Broker(env)
    config = FaaSConfig(system_overhead=0.0)
    member_ids = ["east", "west"]
    controller = Controller(
        env,
        broker,
        config=config,
        rng=np.random.default_rng(0),
        router=make_router(policy, seed=3),
        cluster_order=member_ids,
    )
    functions = sleep_functions(8, 0.001)
    for function in functions:
        controller.deploy(function)

    fleet_rng = np.random.default_rng(1)
    for cluster_id in member_ids:
        for index in range(2):
            invoker = Invoker(
                env,
                invoker_id=f"inv-{cluster_id}-{index}",
                node=f"n-{cluster_id}-{index}",
                broker=broker,
                registry=controller.registry,
                config=config,
                rng=fleet_rng,
                cluster_id=cluster_id,
            )

            def lifecycle(inv=invoker):
                yield from inv.register()
                try:
                    yield from inv.serve()
                except Interrupt:
                    pass

            env.process(lifecycle())

    submitted = 60
    results = []

    def driver():
        for index in range(submitted):
            result = yield from controller.invoke(
                functions[index % len(functions)].name, duration=0.001
            )
            results.append(result)

    env.process(driver())
    env.run(until=300.0)

    assert len(results) == submitted
    # no drop, no duplicate: ledger + 503s account for every submission
    assert len(controller.records) + controller.unavailable_count == submitted
    ids = [record.activation_id for record in controller.records]
    assert len(ids) == len(set(ids))
    # every routed activation carries a member tag and the per-cluster
    # ledger adds back up to the total
    assert all(record.cluster_id in member_ids for record in controller.records)
    assert sum(controller.routed_counts.values()) == len(controller.records)


def test_controller_healthy_by_cluster_lists_every_declared_member(env):
    broker = Broker(env)
    controller = Controller(
        env,
        broker,
        rng=np.random.default_rng(0),
        router=Failover(),
        cluster_order=["a", "b"],
    )
    pools = controller.healthy_by_cluster()
    assert list(pools) == ["a", "b"]
    assert pools == {"a": [], "b": []}
