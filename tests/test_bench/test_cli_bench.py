"""End-to-end tests of the ``repro bench`` subcommand."""

import json

import pytest

from repro.bench import load_baseline
from repro.cli import main


def test_bench_kernel_writes_artifact(tmp_path, capsys):
    assert main([
        "bench", "kernel", "--preset", "smoke", "--out-dir", str(tmp_path),
    ]) == 0
    artifact = tmp_path / "BENCH_kernel.json"
    assert artifact.exists()
    payload = json.loads(artifact.read_text())
    assert payload["schema"] == "repro-bench/1"
    assert payload["events_per_sec"] > 0
    assert "kernel" in capsys.readouterr().out


def test_bench_default_runs_microbenches_plus_every_scenario(tmp_path, capsys):
    """The acceptance path: microbench artifacts + one file per scenario."""
    assert main(["bench", "--preset", "smoke", "--out-dir", str(tmp_path)]) == 0
    written = {path.name for path in tmp_path.glob("BENCH_*.json")}
    assert "BENCH_kernel.json" in written
    assert "BENCH_kernel-wheel.json" in written
    assert "BENCH_kernel-compiled.json" in written
    assert "BENCH_flood.json" in written
    assert "BENCH_flood-wheel.json" in written
    assert "BENCH_timeout-flood.json" in written
    assert "BENCH_router.json" in written
    assert "BENCH_shards.json" in written
    for name in ("fig1", "fig2", "fig3", "table1", "day", "fig7",
                 "optimize", "longterm", "federation", "supply",
                 "supply_matrix", "stream_day"):
        assert f"BENCH_{name}.json" in written
    assert len(written) == 20


def test_bench_against_passing_baseline(tmp_path):
    out = tmp_path / "out"
    baseline = tmp_path / "BENCH_baseline.json"
    assert main([
        "bench", "kernel", "--preset", "smoke", "--out-dir", str(out),
        "--write-baseline", str(baseline),
    ]) == 0
    assert set(load_baseline(str(baseline))) == {"kernel"}
    # comparing a fresh run against its own just-written baseline with a
    # generous threshold must pass
    assert main([
        "bench", "kernel", "--preset", "smoke", "--out-dir", str(out),
        "--against", str(baseline), "--max-regression", "90%",
    ]) == 0


def test_bench_against_detects_regression(tmp_path, capsys):
    out = tmp_path / "out"
    baseline = tmp_path / "BENCH_baseline.json"
    assert main([
        "bench", "kernel", "--preset", "smoke", "--out-dir", str(out),
        "--write-baseline", str(baseline),
    ]) == 0
    payload = json.loads(baseline.read_text())
    entry = payload["entries"]["kernel"]
    entry["wall_time_s"] /= 100.0  # pretend the baseline was 100x faster
    baseline.write_text(json.dumps(payload))

    assert main([
        "bench", "kernel", "--preset", "smoke", "--out-dir", str(out),
        "--against", str(baseline), "--max-regression", "10%",
    ]) == 1
    assert "REGRESSED" in capsys.readouterr().out


def test_bench_profile_prints_hotspots_and_writes_nothing(tmp_path, capsys):
    assert main([
        "bench", "kernel", "--preset", "smoke", "--out-dir", str(tmp_path),
        "--profile", "5",
    ]) == 0
    out = capsys.readouterr().out
    assert "=== profile: kernel" in out
    assert "tottime" in out
    # profiling replaces the measurement run: no artifacts are written
    assert list(tmp_path.glob("BENCH_*.json")) == []


def test_bench_profile_bad_top_is_a_usage_error(tmp_path):
    with pytest.raises(SystemExit):
        main(["bench", "kernel", "--out-dir", str(tmp_path),
              "--profile", "0"])


def test_bench_unknown_name_is_a_usage_error(tmp_path):
    with pytest.raises(SystemExit):
        main(["bench", "warp-drive", "--out-dir", str(tmp_path)])


def test_bench_bad_threshold_is_a_usage_error(tmp_path):
    with pytest.raises(SystemExit):
        main(["bench", "kernel", "--out-dir", str(tmp_path),
              "--max-regression", "200%"])


def test_bench_gate_fails_when_nothing_compared(tmp_path, capsys):
    baseline = tmp_path / "BENCH_baseline.json"
    out = tmp_path / "out"
    assert main([
        "bench", "fig3", "--preset", "smoke", "--out-dir", str(out),
        "--write-baseline", str(baseline),
    ]) == 0
    # gate a run whose benchmarks share no names with the baseline
    assert main([
        "bench", "kernel", "--preset", "smoke", "--out-dir", str(out),
        "--against", str(baseline),
    ]) == 1
    assert "compared nothing" in capsys.readouterr().err


def test_bench_against_preset_mismatch_is_a_usage_error(tmp_path):
    baseline = tmp_path / "BENCH_baseline.json"
    out = tmp_path / "out"
    assert main([
        "bench", "kernel", "--preset", "smoke", "--out-dir", str(out),
        "--write-baseline", str(baseline),
    ]) == 0
    with pytest.raises(SystemExit):
        main(["bench", "kernel", "--preset", "quick", "--out-dir", str(out),
              "--against", str(baseline)])
