"""Tests for the kernel counters and the KernelProbe."""

import pytest

from repro.bench import KernelProbe
from repro.sim import Environment
from repro.sim.core import KERNEL_TOTALS


def test_environment_counts_processed_events(env):
    for i in range(10):
        env.timeout(float(i))
    env.run()
    assert env.events_processed == 10
    assert env.events_scheduled == 10
    assert env.peak_queue_depth == 10


def test_cancelled_events_are_not_counted_as_processed(env):
    timeouts = [env.timeout(1.0) for _ in range(6)]
    for victim in timeouts[::2]:
        env.cancel(victim)
    env.run()
    assert env.events_processed == 3
    assert env.events_scheduled == 6


def test_step_updates_counters_like_run(env):
    env.timeout(1.0)
    env.timeout(2.0)
    env.step()
    assert env.events_processed == 1
    env.step()
    assert env.events_processed == 2


def test_totals_aggregate_across_environments():
    before = KERNEL_TOTALS.snapshot()
    for _ in range(2):
        env = Environment()
        for i in range(5):
            env.timeout(float(i))
        env.run()
    after = KERNEL_TOTALS.snapshot()
    assert after[0] - before[0] == 10
    assert after[1] - before[1] == 10


def test_probe_measures_only_its_window():
    env = Environment()
    for i in range(7):
        env.timeout(float(i))
    env.run()  # outside the window

    with KernelProbe() as probe:
        inner = Environment()
        for i in range(4):
            inner.timeout(float(i))
        inner.run()
    stats = probe.stats
    assert stats.events_processed == 4
    assert stats.events_scheduled == 4
    assert stats.peak_queue_depth == 4
    assert stats.wall_time_s > 0
    assert stats.events_per_sec > 0


def test_probe_window_peak_is_not_inherited():
    big = Environment()
    for i in range(100):
        big.timeout(float(i))
    big.run()  # drives the process-wide peak to >= 100

    with KernelProbe() as probe:
        small = Environment()
        for i in range(3):
            small.timeout(float(i))
        small.run()
    assert probe.stats.peak_queue_depth == 3
    # monotonicity restored for any enclosing observer
    assert KERNEL_TOTALS.peak_queue_depth >= 100


def test_probe_misuse_raises():
    probe = KernelProbe()
    with pytest.raises(RuntimeError):
        probe.stop()
    probe.start()
    with pytest.raises(RuntimeError):
        probe.start()
    probe.stop()


def test_empty_window_has_zero_throughput():
    with KernelProbe() as probe:
        pass
    assert probe.stats.events_processed == 0
    assert probe.stats.events_per_sec == 0.0


def test_peek_tombstone_gc_does_not_allow_double_cancel(env):
    """Regression: peek() GC must retire the tombstone completely."""
    timeout = env.timeout(5.0)
    assert env.cancel(timeout)
    assert env.peek() == float("inf")  # pops + discards the tombstone
    assert not env.cancel(timeout)     # a second cancel is refused
    assert len(env) == 0
    env.run()
    assert len(env) == 0 and not timeout.processed


def test_cancel_rejects_events_of_other_environments(env):
    other = Environment()
    timeout = other.timeout(1.0)
    assert not env.cancel(timeout)
    assert len(env) == 0 and len(other) == 1
    other.run()
    assert timeout.processed


def test_peak_queue_depth_excludes_tombstones(env):
    """peak_queue_depth counts live entries, like len() and peek()."""
    timeouts = [env.timeout(1.0 + i) for i in range(10)]
    for victim in timeouts[4:]:
        env.cancel(victim)
    env.run()
    assert env.peak_queue_depth == 4
    assert env.events_processed == 4


def test_cancel_refuses_failed_events(env):
    """A failed event's exception must propagate, never be cancelled away."""
    event = env.event()
    event.fail(ValueError("boom"))
    assert not env.cancel(event)
    with pytest.raises(ValueError):
        env.run()


def test_cancel_of_succeeded_event_discards_its_delivery(env):
    event = env.event()
    event.succeed(42)
    assert env.cancel(event)
    env.run()
    assert not event.processed and len(env) == 0
