"""Tests for benchmark records, baselines, and the regression gate."""

import json

import pytest

from repro.bench import (
    BenchRecord,
    bench_names,
    compare_records,
    load_baseline,
    parse_regression,
    run_bench,
    write_baseline,
    write_record,
)
from repro.bench.harness import BASELINE_SCHEMA, BENCH_SCHEMA
from repro.bench.instrument import KernelStats
from repro.bench.kernel import KERNEL_SCALES, run_kernel_bench


def _record(name, eps, kind="kernel"):
    return BenchRecord(
        name=name,
        kind=kind,
        preset="smoke",
        stats=KernelStats(
            events_processed=int(eps),
            events_scheduled=int(eps),
            peak_queue_depth=10,
            wall_time_s=1.0,
        ),
    )


def test_bench_names_lists_microbenches_and_all_scenarios():
    names = bench_names()
    assert names[:8] == ["kernel", "kernel-wheel", "kernel-compiled",
                         "flood", "flood-wheel", "timeout-flood",
                         "router", "shards"]
    assert "day" in names and "fig1" in names and "federation" in names
    assert "supply" in names and "supply_matrix" in names
    assert "stream_day" in names
    assert len(names) == 20


def test_router_microbench_smoke_runs_and_counts():
    from repro.bench.router import ROUTER_SCALES, run_router_bench

    stats = run_router_bench("smoke")
    scale = ROUTER_SCALES["smoke"]
    # every invocation produces several kernel events on the routing path
    assert stats.events_processed > scale.invocations
    assert stats.events_per_sec > 0
    with pytest.raises(KeyError):
        run_router_bench("huge")


def test_run_bench_router_records_kernel_kind():
    record = run_bench("router", preset="smoke")
    assert record.kind == "kernel"
    assert record.seed is None and record.metrics == {}


def test_kernel_microbench_smoke_counts():
    scale = KERNEL_SCALES["smoke"]
    stats = run_kernel_bench("smoke")
    # live events: everything scheduled except the cancelled half
    cancelled = scale.rounds * (scale.cancel_events // 2)
    assert stats.events_processed == scale.approx_events - cancelled
    assert stats.events_scheduled == scale.approx_events
    assert stats.peak_queue_depth >= scale.flood_events
    assert stats.events_per_sec > 0


def test_kernel_microbench_unknown_preset():
    with pytest.raises(KeyError):
        run_kernel_bench("huge")


def test_flood_microbench_smoke_counts():
    from repro.bench.kernel import FLOOD_SCALES, run_flood_bench

    scale = FLOOD_SCALES["smoke"]
    stats = run_flood_bench("smoke")
    # resident events all fire; half the tombstone events are cancelled
    live = scale.resident_events + scale.tombstone_events - scale.tombstone_events // 2
    assert stats.events_processed == scale.rounds * live == scale.approx_events
    # counter flushes land inside the drain windows, so every schedule counts
    assert stats.events_scheduled == scale.rounds * (
        scale.resident_events + scale.tombstone_events
    )
    assert stats.peak_queue_depth >= scale.resident_events
    assert stats.events_per_sec > 0
    with pytest.raises(KeyError):
        run_flood_bench("huge")


def test_timeout_flood_bench_reuses_the_pool():
    from repro.bench.kernel import WAVE_SCALES, run_timeout_flood_bench

    scale = WAVE_SCALES["smoke"]
    stats = run_timeout_flood_bench("smoke")
    assert stats.events_processed == scale.approx_events
    assert stats.events_scheduled == scale.approx_events
    # waves run on one environment: everything after the first wave is
    # served from the freelist, not the allocator
    assert stats.events_reused == (scale.waves - 1) * scale.wave_events
    assert stats.peak_queue_depth == scale.wave_events
    with pytest.raises(KeyError):
        run_timeout_flood_bench("huge")


def test_kernel_compiled_bench_matches_kernel_counts():
    from repro.bench.kernel import run_kernel_compiled_bench

    # same workload as `kernel`, measured in a fresh subprocess under
    # whatever hot-loop build that process selects — counts must agree
    stats = run_kernel_compiled_bench("smoke")
    direct = run_kernel_bench("smoke", queue="heap")
    assert stats.events_processed == direct.events_processed
    assert stats.events_scheduled == direct.events_scheduled
    assert stats.events_reused == direct.events_reused
    assert stats.events_per_sec > 0
    with pytest.raises(KeyError):
        run_kernel_compiled_bench("huge")


def test_from_dict_defaults_events_reused_for_old_records():
    payload = _record("kernel", 1000).to_dict()
    del payload["events_reused"]  # records written before the pool landed
    assert BenchRecord.from_dict(payload).stats.events_reused == 0


def test_flood_bench_identical_counts_across_queues():
    from repro.bench.kernel import run_flood_bench

    heap = run_flood_bench("smoke", queue="heap")
    wheel = run_flood_bench("smoke", queue="wheel")
    assert heap.events_processed == wheel.events_processed
    assert heap.events_scheduled == wheel.events_scheduled
    assert heap.peak_queue_depth == wheel.peak_queue_depth


def test_microbench_runners_pin_their_queues():
    from repro.bench import MICROBENCH_RUNNERS

    assert set(MICROBENCH_RUNNERS) == {
        "kernel", "kernel-wheel", "kernel-compiled", "flood", "flood-wheel",
        "timeout-flood", "router", "shards",
    }
    wheel_record = run_bench("kernel-wheel", preset="smoke")
    assert wheel_record.kind == "kernel"
    assert wheel_record.stats.events_processed == \
        run_bench("kernel", preset="smoke").stats.events_processed


def test_profile_bench_reports_hotspots():
    from repro.bench import profile_bench

    report = profile_bench("kernel", preset="smoke", top=5)
    assert "cumtime" in report and "tottime" in report
    # the kernel run loop must show up among the top entries
    assert "run" in report
    with pytest.raises(ValueError):
        profile_bench("kernel", preset="smoke", top=0)
    with pytest.raises(KeyError):
        profile_bench("warp-drive", preset="smoke")


def test_run_bench_scenario_records_metrics_and_seed(tmp_path):
    record = run_bench("fig3", preset="smoke")
    assert record.kind == "scenario"
    assert record.seed == 7
    assert record.metrics  # fig3's flat metrics came through
    assert record.stats.events_processed > 0

    path = write_record(record, str(tmp_path))
    assert path.endswith("BENCH_fig3.json")
    payload = json.loads(open(path).read())
    assert payload["schema"] == BENCH_SCHEMA
    assert payload["name"] == "fig3"
    assert BenchRecord.from_dict(payload).metrics == dict(record.metrics)


def test_run_bench_unknown_name():
    with pytest.raises(KeyError):
        run_bench("nope", preset="smoke")
    with pytest.raises(ValueError):
        run_bench("kernel", repeats=0)


def test_record_roundtrip_preserves_events_per_sec():
    record = _record("kernel", 1000)
    clone = BenchRecord.from_dict(record.to_dict())
    assert clone == record
    assert clone.events_per_sec == pytest.approx(1000.0)


def test_from_dict_rejects_wrong_schema():
    bad = _record("kernel", 10).to_dict()
    bad["schema"] = "other/9"
    with pytest.raises(ValueError):
        BenchRecord.from_dict(bad)


def test_baseline_roundtrip(tmp_path):
    records = [_record("kernel", 1000), _record("day", 500, kind="scenario")]
    path = str(tmp_path / "BENCH_baseline.json")
    write_baseline(records, path, preset="smoke", notes={"host": "test"})
    payload = json.loads(open(path).read())
    assert payload["schema"] == BASELINE_SCHEMA
    assert payload["notes"] == {"host": "test"}

    loaded = load_baseline(path)
    assert set(loaded) == {"kernel", "day"}
    assert loaded["kernel"] == records[0]


def test_load_single_record_as_baseline(tmp_path):
    path = write_record(_record("kernel", 1000), str(tmp_path))
    loaded = load_baseline(path)
    assert set(loaded) == {"kernel"}


def test_load_baseline_rejects_unknown_schema(tmp_path):
    path = tmp_path / "x.json"
    path.write_text('{"schema": "???"}')
    with pytest.raises(ValueError):
        load_baseline(str(path))


@pytest.mark.parametrize(
    "token,expected",
    [("10%", 0.10), ("2.5%", 0.025), ("0.1", 0.001), ("25", 0.25),
     ("1.5", 0.015), ("1", 0.01), ("0.5", 0.005), ("0", 0.0)],
)
def test_parse_regression(token, expected):
    assert parse_regression(token) == pytest.approx(expected)


@pytest.mark.parametrize("token", ["150%", "-5%", "150", "nope"])
def test_parse_regression_rejects(token):
    with pytest.raises(ValueError):
        parse_regression(token)


def test_compare_records_flags_only_true_regressions():
    current = {
        "kernel": _record("kernel", 950),   # -5%: inside tolerance
        "day": _record("day", 500),         # -50%: regressed
        "fresh": _record("fresh", 100),     # not in baseline: skipped
    }
    baseline = {
        "kernel": _record("kernel", 1000),
        "day": _record("day", 1000),
        "gone": _record("gone", 1000),      # not run now: skipped
    }
    comparisons = compare_records(current, baseline, max_regression=0.10)
    verdicts = {c.name: c.regressed for c in comparisons}
    assert verdicts == {"kernel": False, "day": True}
    deltas = {c.name: c.delta for c in comparisons}
    assert deltas["kernel"] == pytest.approx(-0.05)
    assert deltas["day"] == pytest.approx(-0.50)


def test_compare_records_rejects_preset_mismatch():
    current = {"kernel": _record("kernel", 900)}
    baseline = {"kernel": _record("kernel", 1000)}
    object.__setattr__(baseline["kernel"], "preset", "quick")
    with pytest.raises(ValueError):
        compare_records(current, baseline, max_regression=0.10)
