"""Tests for the length-set optimizer (Sec. IV-B machinery)."""

import numpy as np
import pytest

from repro.hpcwhisk.optimizer import (
    LengthSetOptimizer,
    arithmetic_family,
    default_candidates,
    fibonacci_family,
    geometric_family,
)
from repro.workloads.idleness import IdlenessTraceGenerator


def test_fibonacci_family_shapes():
    sets = fibonacci_family()
    assert len(sets) == 3
    fib24 = next(s for s in sets if s.name == "fib(2,4)")
    # 2,4,6,10,16,26,42,68,110 — floored-even Fibonacci from (2,4)
    assert fib24.minutes == (2, 4, 6, 10, 16, 26, 42, 68, 110)
    for length_set in sets:
        assert length_set.longest <= 120


def test_geometric_family_shapes():
    sets = geometric_family()
    geo2 = next(s for s in sets if s.name == "geo(2)")
    assert geo2.minutes == (2, 4, 8, 16, 32, 64)  # the paper's set B!


def test_arithmetic_family_shapes():
    sets = arithmetic_family()
    ari2 = next(s for s in sets if s.name == "ari(2)")
    assert ari2.minutes == tuple(range(2, 121, 2))  # the paper's set C2!
    with pytest.raises(ValueError):
        arithmetic_family(steps=(3,))


def test_default_candidates_nonempty_unique_names():
    candidates = default_candidates()
    names = [c.name for c in candidates]
    assert len(names) == len(set(names))
    assert len(candidates) >= 8


def test_optimizer_ranks_by_ready_share():
    rng = np.random.default_rng(3)
    trace = IdlenessTraceGenerator(rng, num_nodes=256).generate(24 * 3600.0)
    optimizer = LengthSetOptimizer()
    result = optimizer.optimize(trace)
    shares = [coverage.ready_share for _s, coverage in result.ranking]
    assert shares == sorted(shares, reverse=True)
    assert result.best.name == result.ranking[0][0].name
    text = result.render()
    assert result.best.name in text


def test_optimizer_finds_fine_sets_beat_coarse():
    """On any realistic trace, the finest arithmetic set (C2 shape) must
    rank above the coarsest geometric one (set-B shape) — the Table I
    ordering."""
    rng = np.random.default_rng(7)
    trace = IdlenessTraceGenerator(rng, num_nodes=256).generate(24 * 3600.0)
    result = LengthSetOptimizer().optimize(trace)
    names = [s.name for s, _c in result.ranking]
    assert names.index("ari(2)") < names.index("geo(3)")
