"""Tests for pilot bodies, job managers and system assembly."""

import pytest

from repro.cluster import JobSpec, JobState, SlurmConfig
from repro.faas import FunctionDef
from repro.faas.config import FaaSConfig
from repro.hpcwhisk import (
    HPCWhiskConfig,
    SET_A1,
    SupplyModel,
    build_system,
)
from repro.hpcwhisk.lengths import JobLengthSet


def quick_config(model=SupplyModel.FIB, **kwargs):
    defaults = dict(
        supply_model=model,
        length_set=JobLengthSet("tiny", (2, 4)),
        queue_per_length=2,
        var_queue_depth=10,
        replenish_interval=5.0,
        faas=FaaSConfig(system_overhead=0.0),
    )
    defaults.update(kwargs)
    return HPCWhiskConfig(**defaults)


# ----------------------------------------------------------------------
# config validation
# ----------------------------------------------------------------------
def test_config_validation():
    with pytest.raises(ValueError):
        HPCWhiskConfig(queue_per_length=0)
    with pytest.raises(ValueError):
        HPCWhiskConfig(replenish_interval=0)
    with pytest.raises(ValueError):
        HPCWhiskConfig(var_time_min=0)
    with pytest.raises(ValueError):
        HPCWhiskConfig(var_time_min=8000, var_time_max=7200)
    with pytest.raises(ValueError):
        HPCWhiskConfig(max_queued=0)


# ----------------------------------------------------------------------
# fib manager
# ----------------------------------------------------------------------
def test_fib_manager_maintains_queue_depths():
    system = build_system(quick_config(), SlurmConfig(num_nodes=1), seed=3)
    system.env.run(until=60)
    pending = system.slurm.pending_jobs(partition="whisk")
    by_length = {}
    for job in pending:
        by_length.setdefault(job.spec.time_limit, 0)
        by_length[job.spec.time_limit] += 1
    # Node count is 1: at most one pilot running; queue replenished to ~2/len.
    assert set(by_length) <= {120.0, 240.0}
    assert all(count <= 2 for count in by_length.values())
    assert sum(by_length.values()) >= 2


def test_fib_priority_proportional_to_length():
    system = build_system(quick_config(), SlurmConfig(num_nodes=1), seed=3)
    system.env.run(until=30)
    for job in system.slurm.pending_jobs(partition="whisk"):
        assert job.spec.priority == job.spec.time_limit


def test_fib_manager_respects_max_queued():
    config = quick_config(
        length_set=SET_A1, queue_per_length=50, max_queued=100
    )
    system = build_system(config, SlurmConfig(num_nodes=1), seed=3)
    system.env.run(until=120)
    assert len(system.slurm.pending_jobs(partition="whisk")) <= 100


# ----------------------------------------------------------------------
# var manager
# ----------------------------------------------------------------------
def test_var_manager_submits_flexible_jobs():
    system = build_system(quick_config(model=SupplyModel.VAR), SlurmConfig(num_nodes=1), seed=3)
    system.env.run(until=60)
    pending = system.slurm.pending_jobs(partition="whisk")
    assert pending
    for job in pending:
        assert job.spec.is_flexible
        assert job.spec.time_min == 120.0
        assert job.spec.time_limit == 7200.0


def test_var_manager_queue_depth():
    config = quick_config(model=SupplyModel.VAR, var_queue_depth=10)
    system = build_system(config, SlurmConfig(num_nodes=1), seed=3)
    system.env.run(until=60)
    assert len(system.slurm.pending_jobs(partition="whisk")) <= 10


def test_manager_stop_halts_replenishment():
    system = build_system(quick_config(), SlurmConfig(num_nodes=1), seed=3)
    system.env.run(until=30)
    system.manager.stop()
    rounds = system.manager.stats.replenish_rounds
    system.env.run(until=120)
    assert system.manager.stats.replenish_rounds == rounds


# ----------------------------------------------------------------------
# pilot lifecycle end-to-end
# ----------------------------------------------------------------------
def test_pilot_becomes_healthy_and_serves():
    system = build_system(quick_config(), SlurmConfig(num_nodes=1), seed=3)
    system.controller.deploy(FunctionDef(name="f", duration=0.01))
    env = system.env
    results = []

    def client(env):
        yield env.timeout(120)  # pilot placed at bf pass + warm-up
        result = yield from system.client.invoke("f")
        results.append(result)

    env.process(client(env))
    env.run(until=240)
    assert results and results[0].ok
    timelines = system.pilot_timelines
    assert timelines[0].healthy_at is not None
    assert timelines[0].warmup_duration > 5.0  # warm-up model applied


def test_pilot_timeout_drains_and_deregisters():
    system = build_system(quick_config(), SlurmConfig(num_nodes=1), seed=3)
    env = system.env
    env.run(until=600)  # longest tiny pilot is 4 min, placed by ~30 s
    done = [t for t in system.pilot_timelines if t.finished_at is not None]
    assert done
    timeline = done[0]
    assert timeline.end_reason == "timeout"
    assert timeline.sigterm_at is not None
    # Drain completed well before the 30 s KillWait.
    assert timeline.finished_at - timeline.sigterm_at < 10.0
    assert timeline.stats is not None
    assert timeline.stats.deregistered_at is not None


def test_pilot_preempted_by_prime_job():
    system = build_system(quick_config(length_set=JobLengthSet("long", (90,)),
                                       queue_per_length=1),
                          SlurmConfig(num_nodes=1), seed=3)
    env = system.env
    env.run(until=120)  # pilot running
    assert system.slurm.nodes_running_partition("whisk")
    prime = system.slurm.submit(
        JobSpec(name="prime", time_limit=600, actual_runtime=60)
    )
    env.run(until=1200)
    assert prime.state is JobState.COMPLETED
    preempted = [t for t in system.pilot_timelines if t.end_reason == "preempt"]
    assert preempted
    # The prime job was delayed only by the drain, not by the grace period.
    assert prime.start_time is not None


def test_seed_reproducibility():
    a = build_system(quick_config(), SlurmConfig(num_nodes=2), seed=11)
    a.env.run(until=900)
    b = build_system(quick_config(), SlurmConfig(num_nodes=2), seed=11)
    b.env.run(until=900)
    ta = [(t.job_started_at, t.healthy_at, t.finished_at) for t in a.pilot_timelines]
    tb = [(t.job_started_at, t.healthy_at, t.finished_at) for t in b.pilot_timelines]
    assert ta == tb
