"""Tests for the Table I job-length sets."""

import pytest

from repro.hpcwhisk.lengths import (
    JOB_LENGTH_SETS,
    JobLengthSet,
    SET_A1,
    SET_B,
    SET_C1,
    SET_C2,
)


def test_paper_sets_are_exact():
    assert SET_A1.minutes == (2, 4, 6, 8, 14, 22, 34, 56, 90)
    assert JOB_LENGTH_SETS["A2"].minutes == (2, 4, 8, 12, 20, 34, 54, 88)
    assert JOB_LENGTH_SETS["A3"].minutes == (2, 4, 6, 10, 16, 26, 42, 68, 110)
    assert SET_B.minutes == (2, 4, 8, 16, 32, 64)
    assert SET_C1.minutes == tuple(range(2, 21, 2))
    assert SET_C2.minutes == tuple(range(2, 121, 2))


def test_all_sets_respect_slot_and_window():
    for name, length_set in JOB_LENGTH_SETS.items():
        assert all(m % 2 == 0 for m in length_set.minutes), name
        assert length_set.shortest >= 2
        assert length_set.longest <= 120


def test_validation():
    with pytest.raises(ValueError):
        JobLengthSet("bad", ())
    with pytest.raises(ValueError):
        JobLengthSet("bad", (3,))  # odd
    with pytest.raises(ValueError):
        JobLengthSet("bad", (4, 2))  # not increasing
    with pytest.raises(ValueError):
        JobLengthSet("bad", (2, 2))  # duplicate


def test_seconds_conversion():
    assert SET_B.seconds == (120.0, 240.0, 480.0, 960.0, 1920.0, 3840.0)


def test_greedy_pack_paper_example():
    """The paper: a 21-minute window packs A1 as [14, 6], leaving 1 min."""
    assert SET_A1.greedy_pack(21) == [14, 6]


def test_greedy_pack_exponential_fragmentation():
    """The paper's set-B pathology: a 62-minute window takes 5 set-B jobs
    but only 3 A1 jobs."""
    assert len(SET_B.greedy_pack(62)) == 5
    # "only 2 or 3 jobs from sets A1-A3"
    assert len(SET_A1.greedy_pack(62)) in (2, 3)


def test_greedy_pack_small_windows():
    assert SET_A1.greedy_pack(1.9) == []
    assert SET_A1.greedy_pack(2) == [2]


def test_even_windows_fully_tiled_by_every_set():
    """Any even window in [2, 120] is exactly tiled (the mechanism behind
    Table I's identical 'not used' column across sets)."""
    for name, length_set in JOB_LENGTH_SETS.items():
        for window in range(2, 121, 2):
            packed = length_set.greedy_pack(window)
            assert sum(packed) == window, (name, window)
