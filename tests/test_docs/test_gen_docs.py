"""docs/reference/ is a pure function of the registries — and in sync."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]


def test_reference_docs_in_sync():
    proc = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "gen_docs.py"), "--check"],
        capture_output=True,
        text=True,
        cwd=ROOT,
    )
    assert proc.returncode == 0, (
        "docs/reference/ drifted from the registries — run "
        "`python tools/gen_docs.py` and commit the result.\n"
        + proc.stdout
        + proc.stderr
    )


def test_handwritten_docs_exist_and_link():
    architecture = (ROOT / "docs" / "ARCHITECTURE.md").read_text()
    live = (ROOT / "docs" / "LIVE_MODE.md").read_text()
    assert "LIVE_MODE.md" in architecture
    assert "reference/cli.md" in architecture
    assert "live_loopback.yaml" in live
    # every reference page ARCHITECTURE.md links to is committed
    for page in ("scenarios", "components", "cli", "bench"):
        assert (ROOT / "docs" / "reference" / f"{page}.md").is_file()
