"""The documented modules' examples actually run.

The docstring contract for the public-facing modules (Stack API,
supply protocol, warehouse, live clock) includes *runnable* examples;
this suite executes them so the docs can't rot.  CI additionally runs
``pytest --doctest-modules`` over the same modules, which catches
doctests added to members this list doesn't know about yet.
"""

from __future__ import annotations

import doctest
import importlib

import pytest

#: modules whose docstrings promise runnable examples
DOCUMENTED_MODULES = [
    "repro.api.stack",
    "repro.supply.base",
    "repro.warehouse.store",
    "repro.warehouse.queries",
    "repro.live.clock",
]


@pytest.mark.parametrize("module_name", DOCUMENTED_MODULES)
def test_module_doctests_pass(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module_name} promises examples but has none"
    assert result.failed == 0, f"{module_name}: {result.failed} doctest(s) failed"
