"""The idleness generator must reproduce the paper's Fig 1 statistics.

Tolerances are deliberately generous: the paper measured ONE week; our
generator's week-to-week variance is real and intended.
"""

import numpy as np
import pytest

from repro.workloads.idleness import IdlenessTrace, IdlePeriod, IdlenessTraceGenerator


@pytest.fixture(scope="module")
def week_trace():
    rng = np.random.default_rng(42)
    return IdlenessTraceGenerator(rng, num_nodes=2239).generate(7 * 24 * 3600.0)


def test_period_lengths_match_fig1b(week_trace):
    lengths = week_trace.lengths()
    assert np.median(lengths) == pytest.approx(120.0, rel=0.15)       # 2 min
    assert np.percentile(lengths, 75) == pytest.approx(240.0, rel=0.20)  # 4 min
    assert lengths.mean() == pytest.approx(300.0, rel=0.25)          # >5 min
    assert np.mean(lengths > 23 * 60) == pytest.approx(0.05, abs=0.025)


def test_counts_match_fig1a(week_trace):
    _, counts = week_trace.count_series(10.0)
    assert counts.mean() == pytest.approx(9.23, rel=0.35)
    assert np.median(counts) == pytest.approx(5, abs=2)
    assert np.percentile(counts, 25) == pytest.approx(2, abs=2)
    assert np.percentile(counts, 80) == pytest.approx(13, rel=0.5)


def test_zero_idle_share_matches(week_trace):
    assert week_trace.zero_idle_share() == pytest.approx(0.1011, abs=0.06)


def test_substantial_idle_surface(week_trace):
    # The paper: > 37,000 core-hours over the week (24-core nodes).
    core_hours = week_trace.total_idle_surface() / 3600.0 * 24
    assert core_hours > 15_000


def test_no_overlapping_periods_per_node(week_trace):
    by_node = week_trace.periods_by_node()
    for node, periods in by_node.items():
        for a, b in zip(periods, periods[1:]):
            assert a.end <= b.start + 1e-9, node


def test_periods_within_horizon(week_trace):
    for period in week_trace.periods:
        assert 0.0 <= period.start < period.end <= week_trace.horizon


def test_intensity_scale_scales_supply():
    low = IdlenessTraceGenerator(
        np.random.default_rng(5), num_nodes=512, intensity_scale=0.5
    ).generate(2 * 24 * 3600.0)
    high = IdlenessTraceGenerator(
        np.random.default_rng(5), num_nodes=512, intensity_scale=2.0
    ).generate(2 * 24 * 3600.0)
    _, low_counts = low.count_series(30.0)
    _, high_counts = high.count_series(30.0)
    assert high_counts.mean() > 1.5 * low_counts.mean()


def test_length_scale_preserves_mean_count():
    base = IdlenessTraceGenerator(
        np.random.default_rng(9), num_nodes=512
    ).generate(2 * 24 * 3600.0)
    scaled = IdlenessTraceGenerator(
        np.random.default_rng(9), num_nodes=512, length_scale=4.0
    ).generate(2 * 24 * 3600.0)
    assert np.median(scaled.lengths()) > 2.5 * np.median(base.lengths())
    _, base_counts = base.count_series(30.0)
    _, scaled_counts = scaled.count_series(30.0)
    assert scaled_counts.mean() == pytest.approx(base_counts.mean(), rel=0.5)


def test_min_intensity_floor_eliminates_zeros():
    trace = IdlenessTraceGenerator(
        np.random.default_rng(3), num_nodes=512, outage_share=0.0, min_intensity=8.0
    ).generate(24 * 3600.0)
    assert trace.zero_idle_share() < 0.01


def test_outage_share_zero_means_no_scheduled_outages():
    trace = IdlenessTraceGenerator(
        np.random.default_rng(3), num_nodes=512, outage_share=0.0, min_intensity=8.0
    ).generate(12 * 3600.0)
    _, counts = trace.count_series(10.0)
    assert np.mean(counts == 0) < 0.01


def test_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        IdlenessTraceGenerator(rng, num_nodes=0)
    with pytest.raises(ValueError):
        IdlenessTraceGenerator(rng, intensity_scale=0.0)
    with pytest.raises(ValueError):
        IdlenessTraceGenerator(rng, length_scale=0.0)
    with pytest.raises(ValueError):
        IdlenessTraceGenerator(rng).generate(0.0)


# ----------------------------------------------------------------------
# IdlenessTrace mechanics
# ----------------------------------------------------------------------
def test_count_at_and_series_agree():
    trace = IdlenessTrace(
        horizon=100.0,
        num_nodes=3,
        periods=[
            IdlePeriod("n0000", 10.0, 50.0),
            IdlePeriod("n0001", 30.0, 70.0),
            IdlePeriod("n0002", 90.0, 100.0),
        ],
    )
    assert trace.count_at(5.0) == 0
    assert trace.count_at(40.0) == 2
    assert trace.count_at(95.0) == 1
    times, counts = trace.count_series(10.0)
    assert counts[4] == 2  # t=40
    assert trace.total_idle_surface() == pytest.approx(40 + 40 + 10)


def test_restricted_rebases():
    trace = IdlenessTrace(
        horizon=100.0,
        num_nodes=1,
        periods=[IdlePeriod("n0000", 10.0, 60.0)],
    )
    clipped = trace.restricted(20.0, 50.0)
    assert clipped.horizon == 30.0
    assert clipped.periods == [IdlePeriod("n0000", 0.0, 30.0)]
