"""Tests for FaaS workload models, SeBS kernels and the Lambda model."""

import numpy as np
import pytest

from repro.workloads.faas_trace import AzureDurationModel, PoissonInvocationProcess
from repro.workloads.lambda_model import LambdaPerformanceModel
from repro.workloads.sebs import (
    bfs,
    build_sebs_functions,
    edges_to_adjacency,
    edges_to_csr,
    generate_graph,
    mst,
    pagerank,
    time_invocations,
)


# ----------------------------------------------------------------------
# Azure durations
# ----------------------------------------------------------------------
def test_azure_quantiles(rng):
    """50% under 3 s, 90% under 60 s (Shahrad et al.)."""
    model = AzureDurationModel(rng)
    samples = model.sample(size=100_000)
    assert np.mean(samples <= 3.0) == pytest.approx(0.50, abs=0.02)
    assert np.mean(samples <= 60.0) == pytest.approx(0.90, abs=0.02)
    assert samples.min() >= model.MIN
    assert samples.max() <= model.MAX


def test_poisson_process_rate(rng):
    process = PoissonInvocationProcess(rng, ["f1", "f2"], rate_per_second=5.0)
    invocations = process.generate(3600.0)
    assert len(invocations) == pytest.approx(5.0 * 3600, rel=0.05)
    times = [i.time for i in invocations]
    assert times == sorted(times)


def test_poisson_process_zipf_popularity(rng):
    functions = [f"f{i}" for i in range(20)]
    process = PoissonInvocationProcess(rng, functions, rate_per_second=50.0)
    invocations = process.generate(3600.0)
    counts = {}
    for invocation in invocations:
        counts[invocation.function] = counts.get(invocation.function, 0) + 1
    assert counts["f0"] > counts.get("f19", 0) * 2


def test_poisson_process_validation(rng):
    with pytest.raises(ValueError):
        PoissonInvocationProcess(rng, ["f"], rate_per_second=0.0)
    with pytest.raises(ValueError):
        PoissonInvocationProcess(rng, [], rate_per_second=1.0)


# ----------------------------------------------------------------------
# SeBS kernels (correctness)
# ----------------------------------------------------------------------
def test_generate_graph_shape(rng):
    us, vs = generate_graph(500, rng, attachment=5)
    assert len(us) == len(vs) == (500 - 5) * 5
    assert us.max() < 500 and vs.max() < 500


def test_generate_graph_validation(rng):
    with pytest.raises(ValueError):
        generate_graph(5, rng, attachment=10)


def test_bfs_visits_connected_graph(rng):
    us, vs = generate_graph(1000, rng, attachment=3)
    adjacency = edges_to_adjacency(1000, us, vs)
    result = bfs(adjacency)
    # BA graphs are connected by construction.
    assert result["visited"] == 1000
    assert result["levels"] >= 1


def test_bfs_disconnected_component():
    adjacency = [[1], [0], []]  # vertex 2 isolated
    result = bfs(adjacency, source=0)
    assert result["visited"] == 2


def test_mst_tree_properties(rng):
    size = 300
    us, vs = generate_graph(size, rng, attachment=4)
    weights = rng.random(len(us))
    result = mst(size, us, vs, weights)
    assert result["edges"] == size - 1  # spanning tree of a connected graph
    assert result["weight"] > 0


def test_mst_matches_networkx(rng):
    import networkx as nx

    size = 120
    us, vs = generate_graph(size, rng, attachment=3)
    weights = rng.random(len(us))
    result = mst(size, us, vs, weights)
    graph = nx.Graph()
    for u, v, w in zip(us, vs, weights):
        if graph.has_edge(int(u), int(v)):
            if w < graph[int(u)][int(v)]["weight"]:
                graph[int(u)][int(v)]["weight"] = w
        else:
            graph.add_edge(int(u), int(v), weight=w)
    expected = nx.minimum_spanning_tree(graph, algorithm="kruskal")
    expected_weight = sum(d["weight"] for _u, _v, d in expected.edges(data=True))
    assert result["weight"] == pytest.approx(expected_weight, rel=1e-9)


def test_pagerank_is_probability_vector(rng):
    size = 500
    us, vs = generate_graph(size, rng, attachment=4)
    matrix = edges_to_csr(size, us, vs)
    rank = pagerank(matrix)
    assert rank.shape == (size,)
    assert rank.sum() == pytest.approx(1.0, rel=1e-6)
    assert (rank > 0).all()


def test_pagerank_matches_networkx(rng):
    import networkx as nx

    size = 200
    us, vs = generate_graph(size, rng, attachment=3)
    matrix = edges_to_csr(size, us, vs)
    ours = pagerank(matrix, damping=0.85, iterations=100)
    graph = nx.Graph()
    graph.add_nodes_from(range(size))
    graph.add_edges_from(zip(us.tolist(), vs.tolist()))
    reference = nx.pagerank(graph, alpha=0.85, max_iter=200, tol=1e-12)
    reference_vector = np.array([reference[i] for i in range(size)])
    assert np.allclose(ours, reference_vector, atol=1e-6)


def test_build_and_time_functions(rng):
    functions = build_sebs_functions(rng, graph_size=2000)
    assert [f.name for f in functions] == ["bfs", "mst", "pagerank"]
    times = time_invocations(functions[0], count=3)
    assert times.shape == (3,)
    assert (times > 0).all()


# ----------------------------------------------------------------------
# Lambda model
# ----------------------------------------------------------------------
def test_lambda_cpu_share():
    model = LambdaPerformanceModel()
    assert model.cpu_share(1792.0) == 1.0
    assert model.cpu_share(2048.0) == 1.0
    assert model.cpu_share(896.0) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        model.cpu_share(0)


def test_lambda_15_percent_slowdown_at_2gb(rng):
    model = LambdaPerformanceModel(jitter_sigma=0.0)
    assert model.execution_time(1.0, 2048.0, rng) == pytest.approx(1.15)


def test_lambda_memory_scaling(rng):
    model = LambdaPerformanceModel(jitter_sigma=0.0)
    t_full = model.execution_time(1.0, 1792.0, rng)
    t_half = model.execution_time(1.0, 896.0, rng)
    assert t_half == pytest.approx(2 * t_full)


def test_lambda_vectorized_matches_scalar(rng):
    model = LambdaPerformanceModel(jitter_sigma=0.0)
    times = np.array([0.5, 1.0, 2.0])
    vectorized = model.execution_times(times, 2048.0, rng)
    assert np.allclose(vectorized, times * 1.15)


def test_lambda_jitter_variance(rng):
    model = LambdaPerformanceModel(jitter_sigma=0.05)
    samples = model.execution_times(np.ones(10_000), 2048.0, rng)
    assert samples.std() > 0.02
    assert np.median(samples) == pytest.approx(1.15, rel=0.02)


def test_lambda_validation(rng):
    model = LambdaPerformanceModel()
    with pytest.raises(ValueError):
        model.execution_time(-1.0, 2048.0, rng)
