"""Tests for the Gatling-like load client."""

import numpy as np
import pytest

from repro.faas.activation import ActivationResult, ActivationStatus
from repro.workloads.gatling import GatlingClient, GatlingReport, RequestOutcome


class ScriptedTarget:
    """A fake invocation target with scripted outcomes."""

    def __init__(self, env, script):
        self.env = env
        self.script = script  # list of (status, response_time)
        self.calls = 0

    def invoke(self, function, params=None, duration=None):
        status, response_time = self.script[self.calls % len(self.script)]
        self.calls += 1
        yield self.env.timeout(response_time)
        return ActivationResult(
            activation_id=f"a{self.calls}",
            function=function,
            status=status,
            response_time=response_time,
        )


def test_constant_rate_injection(env):
    target = ScriptedTarget(env, [(ActivationStatus.SUCCESS, 0.05)])
    client = GatlingClient(env, target, ["f"], rate_per_second=10.0)
    client.start(horizon=60.0)
    env.run(until=70.0)
    assert client.report.total == pytest.approx(600, abs=2)


def test_round_robin_over_functions(env):
    target = ScriptedTarget(env, [(ActivationStatus.SUCCESS, 0.01)])
    functions = [f"f{i}" for i in range(5)]
    client = GatlingClient(env, target, functions, rate_per_second=5.0)
    client.start(horizon=10.0)
    env.run(until=20.0)
    seen = {o.function for o in client.report.outcomes}
    assert seen == set(functions)


def test_report_shares():
    report = GatlingReport(
        outcomes=[
            RequestOutcome(0.0, "f", ActivationStatus.SUCCESS, 0.5),
            RequestOutcome(1.0, "f", ActivationStatus.SUCCESS, 0.7),
            RequestOutcome(2.0, "f", ActivationStatus.FAILED, 0.2),
            RequestOutcome(3.0, "f", ActivationStatus.UNAVAILABLE, 0.0),
            RequestOutcome(4.0, "f", ActivationStatus.TIMEOUT, 60.0),
        ]
    )
    assert report.total == 5
    assert report.invoked_share == pytest.approx(0.8)
    assert report.success_share_of_invoked == pytest.approx(0.5)
    assert report.count(ActivationStatus.TIMEOUT) == 1


def test_report_percentiles_successful_only():
    report = GatlingReport(
        outcomes=[
            RequestOutcome(0.0, "f", ActivationStatus.SUCCESS, 1.0),
            RequestOutcome(0.0, "f", ActivationStatus.SUCCESS, 3.0),
            RequestOutcome(0.0, "f", ActivationStatus.TIMEOUT, 60.0),
        ]
    )
    assert report.response_time_percentile(50) == pytest.approx(2.0)
    assert report.response_time_percentile(50, successful_only=False) == pytest.approx(3.0)


def test_per_minute_binning():
    report = GatlingReport(
        outcomes=[
            RequestOutcome(10.0, "f", ActivationStatus.SUCCESS, 0.1),
            RequestOutcome(65.0, "f", ActivationStatus.FAILED, 0.1),
            RequestOutcome(66.0, "f", ActivationStatus.TIMEOUT, 0.1),
            RequestOutcome(130.0, "f", ActivationStatus.UNAVAILABLE, 0.0),
        ]
    )
    series = report.per_minute(horizon=180.0)
    assert list(series["successful"]) == [1, 0, 0]
    assert list(series["failed"]) == [0, 1, 0]
    assert list(series["lost"]) == [0, 1, 0]
    assert list(series["rejected"]) == [0, 0, 1]


def test_per_minute_uses_recorded_run_horizon():
    """Regression: a run whose tail has no submissions must still bin
    every minute of the horizon — the ``run_horizon`` stamped at
    injection start wins over the last-submission fallback, which used
    to silently drop trailing quiet minutes."""
    report = GatlingReport(
        outcomes=[RequestOutcome(10.0, "f", ActivationStatus.SUCCESS, 0.1)],
        run_horizon=300.0,
    )
    series = report.per_minute()
    assert list(series["successful"]) == [1, 0, 0, 0, 0]
    # an explicit horizon argument still overrides the stamped one
    assert len(report.per_minute(horizon=120.0)["successful"]) == 2


def test_per_minute_fallback_without_horizon_stops_at_last_submission():
    report = GatlingReport(
        outcomes=[RequestOutcome(10.0, "f", ActivationStatus.SUCCESS, 0.1)]
    )
    assert list(report.per_minute()["successful"]) == [1]


def test_per_minute_empty_report_with_horizon_is_all_zero_bins():
    report = GatlingReport(run_horizon=120.0)
    series = report.per_minute()
    assert list(series["successful"]) == [0, 0]
    assert list(series["rejected"]) == [0, 0]


def test_client_stamps_run_horizon(env):
    target = ScriptedTarget(env, [(ActivationStatus.SUCCESS, 0.01)])
    client = GatlingClient(env, target, ["f"], rate_per_second=1.0)
    client.start(horizon=240.0)
    env.run(until=300.0)
    assert client.report.run_horizon == 240.0
    assert len(client.report.per_minute()["successful"]) == 4


def test_empty_report():
    report = GatlingReport()
    assert report.invoked_share == 0.0
    assert report.success_share_of_invoked == 0.0
    assert np.isnan(report.response_time_percentile(50))


def test_validation(env):
    target = ScriptedTarget(env, [(ActivationStatus.SUCCESS, 0.1)])
    with pytest.raises(ValueError):
        GatlingClient(env, target, ["f"], rate_per_second=0.0)
    with pytest.raises(ValueError):
        GatlingClient(env, target, [], rate_per_second=1.0)
