"""Calibration tests: every model must hit its paper statistic."""

import numpy as np
import pytest

from repro.workloads.distributions import (
    IdleIntensityModel,
    JobPopulationModel,
    LeadTimeModel,
    LognormalSpec,
    OutageDurationModel,
    WarmupModel,
)


def test_lognormal_spec_median_and_mean(rng):
    spec = LognormalSpec(median=100.0, sigma=0.5)
    samples = spec.sample(rng, size=200_000)
    assert np.median(samples) == pytest.approx(100.0, rel=0.02)
    assert samples.mean() == pytest.approx(spec.mean, rel=0.02)


def test_lognormal_quantile_matches_empirical(rng):
    spec = LognormalSpec(median=60.0, sigma=1.0)
    samples = spec.sample(rng, size=200_000)
    assert np.percentile(samples, 75) == pytest.approx(spec.quantile(0.75), rel=0.03)


def test_warmup_model_matches_paper(rng):
    """Median 12.48 s, p95 26.50 s (Sec. IV-B)."""
    model = WarmupModel(rng)
    samples = np.array([model.sample() for _ in range(50_000)])
    assert np.median(samples) == pytest.approx(12.48, rel=0.03)
    assert np.percentile(samples, 95) == pytest.approx(26.50, rel=0.05)
    assert model.FLAT_SIMULATION_COST == 20.0


def test_outage_model_matches_paper(rng):
    """Median ≈ 1 min, mean ≈ 3 min (Sec. III-E)."""
    model = OutageDurationModel(rng)
    samples = np.array([model.sample() for _ in range(50_000)])
    assert np.median(samples) == pytest.approx(60.0, rel=0.05)
    assert samples.mean() == pytest.approx(180.0, rel=0.10)


def test_outage_on_duration_share():
    model = OutageDurationModel(np.random.default_rng(0))
    share = 0.10
    on_mean = model.on_duration_mean(share)
    implied = model.SPEC.mean / (model.SPEC.mean + on_mean)
    assert implied == pytest.approx(share, rel=1e-9)
    assert model.on_duration_mean(0.0) == float("inf")


def test_intensity_model_stationary_marginal(rng):
    model = IdleIntensityModel(rng)
    values = []
    for _ in range(20_000):
        values.append(model.advance(model.STEP * 10))  # ~decorrelated draws
    values = np.array(values)
    assert np.median(values) == pytest.approx(5.2, rel=0.15)
    assert values.max() <= model.CLIP_MAX + 1e-9


def test_intensity_mean_reversion(rng):
    model = IdleIntensityModel(rng)
    model._x = 10.0  # extreme state
    model.advance(model.TAU * 20)
    assert model._x < 6.0  # pulled back toward ln 5.2 ≈ 1.65


def test_job_population_limit_anchors(rng):
    """Median declared 60 min; ≥95% declare at least 15 min (Fig 2)."""
    model = JobPopulationModel(rng)
    limits = np.array([model.sample_limit() for _ in range(50_000)])
    assert np.median(limits) == pytest.approx(3600.0, rel=0.05)
    assert np.mean(limits >= 900.0) >= 0.93
    assert limits.min() >= model.LIMIT_MIN
    assert limits.max() <= model.LIMIT_MAX


def test_job_population_runtime_below_limit(rng):
    model = JobPopulationModel(rng)
    for _ in range(1000):
        runtime, limit = model.sample_runtime_and_limit()
        assert runtime <= limit + 1e-9 or runtime == 30.0  # floor case


def test_job_population_inverse_limit(rng):
    model = JobPopulationModel(rng)
    for runtime in (60.0, 600.0, 7200.0):
        for _ in range(100):
            limit = model.limit_for_runtime(runtime)
            assert limit >= runtime
            assert limit <= model.LIMIT_MAX


def test_job_width_distribution(rng):
    model = JobPopulationModel(rng)
    widths = np.array([model.sample_width() for _ in range(20_000)])
    assert np.mean(widths == 1) == pytest.approx(0.45, abs=0.02)
    assert widths.max() <= 512


def test_lead_time_model(rng):
    model = LeadTimeModel(rng)
    samples = np.array([model.sample() for _ in range(50_000)])
    assert np.mean(samples == 0.0) == pytest.approx(model.ZERO_PROB, abs=0.01)
    assert samples.max() <= model.MAX
    nonzero = samples[samples > 0]
    assert nonzero.mean() == pytest.approx(model.MEAN, rel=0.15)
