"""Streaming invocation sources, modulators and the streaming report.

Covers the two halves of the "sham streaming" fix: the retrofitted
:meth:`PoissonInvocationProcess.iter_generate` (same distribution as the
eager ``generate``, O(1) memory) and the lazy :mod:`repro.workloads.
streaming` source stack that the trace-scale runs are built on.
"""

import math
import tracemalloc
from itertools import islice

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faas.activation import ActivationStatus
from repro.workloads.faas_trace import PoissonInvocationProcess
from repro.workloads.streaming import (
    BurstModulator,
    DiurnalModulator,
    FixedDurationModel,
    FlashCrowdModulator,
    PoissonSource,
    RegionShiftModulator,
    StreamReport,
    build_stream_source,
)

FUNCTIONS = [f"f{i}" for i in range(10)]


def _fixed_source(seed, rate=5.0, functions=("f",)):
    return PoissonSource(
        np.random.default_rng(seed),
        list(functions),
        rate,
        duration_model=FixedDurationModel(0.1),
    )


# ---------------------------------------------------------------------------
# PoissonInvocationProcess.iter_generate: the bugfix itself
# ---------------------------------------------------------------------------


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=50, deadline=None)
def test_iter_generate_deterministic_per_seed(seed):
    def trace():
        process = PoissonInvocationProcess(
            np.random.default_rng(seed), FUNCTIONS, rate_per_second=5.0
        )
        return [
            (i.time, i.function, i.duration) for i in process.iter_generate(60.0)
        ]

    assert trace() == trace()


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_iter_generate_agrees_with_generate_distribution(seed):
    """Same homogeneous Poisson process, different construction: the
    count-sort-uniforms path and the incremental exponential-gaps path
    must agree in distribution (per seed, not per draw)."""
    rate, horizon = 10.0, 500.0

    def build():
        return PoissonInvocationProcess(
            np.random.default_rng(seed), FUNCTIONS, rate_per_second=rate
        )

    eager = build().generate(horizon)
    lazy = list(build().iter_generate(horizon))

    # Poisson(rate * horizon) counts: both within 6 sd of the mean, so
    # the test is deterministic-in-practice for any seed
    expected = rate * horizon
    slack = 6.0 * math.sqrt(expected)
    assert abs(len(eager) - expected) < slack
    assert abs(len(lazy) - expected) < slack

    times = [i.time for i in lazy]
    assert times == sorted(times)
    assert all(0.0 <= t < horizon for t in times)
    assert all(i.duration > 0.0 for i in lazy)

    # the Zipf marks are shared: the most popular function dominates
    # the least popular in both constructions
    def counts(invocations):
        out = {}
        for invocation in invocations:
            out[invocation.function] = out.get(invocation.function, 0) + 1
        return out

    for hist in (counts(eager), counts(lazy)):
        assert hist["f0"] > hist.get("f9", 0) * 2


def test_iter_generate_is_incremental_not_materialized():
    """Partial consumption draws only what it yields: two same-seed
    iterators agree prefix-for-prefix without running out the horizon."""

    def head(n):
        process = PoissonInvocationProcess(
            np.random.default_rng(99), FUNCTIONS, rate_per_second=2.0
        )
        return [
            (i.time, i.function)
            for i in islice(process.iter_generate(1e9), n)
        ]

    assert head(50) == head(100)[:50]


def test_iter_generate_constant_memory():
    process = PoissonInvocationProcess(
        np.random.default_rng(7), FUNCTIONS, rate_per_second=50.0
    )
    iterator = process.iter_generate(600.0)  # ~30k invocations
    tracemalloc.start()
    try:
        produced = sum(1 for _ in iterator)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert produced > 20_000
    # the eager path would hold every Invocation (> 2 MiB here); the
    # lazy path's peak is per-draw scratch only
    assert peak < 256 * 1024


# ---------------------------------------------------------------------------
# StreamSource / PoissonSource
# ---------------------------------------------------------------------------


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_stream_source_deterministic_per_seed(seed):
    def trace():
        source = PoissonSource(
            np.random.default_rng(seed), FUNCTIONS, rate_per_second=5.0
        )
        return [
            (i.time, i.function, i.duration)
            for i in source.iter_invocations(120.0)
        ]

    assert trace() == trace()


def test_stream_source_rate_and_ordering():
    source = _fixed_source(seed=12, rate=10.0)
    times = [i.time for i in source.iter_invocations(2000.0)]
    assert times == sorted(times)
    assert all(0.0 <= t < 2000.0 for t in times)
    # Poisson(20000): 6 sd is ~850
    assert len(times) == pytest.approx(20_000, abs=900)


def test_stream_source_empty_horizon():
    source = _fixed_source(seed=1)
    assert list(source.iter_invocations(0.0)) == []
    assert list(source.iter_invocations(-5.0)) == []


def test_stream_source_constant_memory():
    source = _fixed_source(seed=7, rate=100.0)
    iterator = source.iter_invocations(600.0)  # ~60k invocations
    tracemalloc.start()
    try:
        produced = sum(1 for _ in iterator)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert produced > 50_000
    assert peak < 256 * 1024


def test_poisson_source_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError, match="rate"):
        PoissonSource(rng, ["f"], rate_per_second=0.0)
    with pytest.raises(ValueError, match="function"):
        PoissonSource(rng, [], rate_per_second=1.0)


def test_fixed_duration_model():
    model = FixedDurationModel(0.25)
    assert model.sample() == 0.25
    with pytest.raises(ValueError, match="positive"):
        FixedDurationModel(0.0)
    with pytest.raises(ValueError, match="positive"):
        FixedDurationModel(-1.0)


# ---------------------------------------------------------------------------
# modulators
# ---------------------------------------------------------------------------


def test_neutral_diurnal_modulator_is_identity():
    """amplitude=0 consumes the RNG stream exactly like the bare source
    (the unconditional accept draw), so arrivals are byte-identical."""

    def arrivals(wrap):
        source = _fixed_source(seed=42)
        if wrap:
            source = DiurnalModulator(source, amplitude=0.0)
        return [(i.time, i.function) for i in source.iter_invocations(600.0)]

    assert arrivals(True) == arrivals(False)


def test_diurnal_modulator_shape_and_validation():
    source = DiurnalModulator(_fixed_source(seed=1, rate=2.0), amplitude=0.5,
                              period=100.0)
    assert source.rate(25.0) == pytest.approx(3.0)   # sin peak: 2 * 1.5
    assert source.rate(75.0) == pytest.approx(1.0)   # sin trough: 2 * 0.5
    assert source.peak_rate(1000.0) == pytest.approx(3.0)
    with pytest.raises(ValueError, match="amplitude"):
        DiurnalModulator(_fixed_source(seed=1), amplitude=1.5)
    with pytest.raises(ValueError, match="period"):
        DiurnalModulator(_fixed_source(seed=1), period=0.0)


def test_burst_modulator_multiplies_arrivals_in_window():
    source = BurstModulator(
        _fixed_source(seed=3, rate=5.0), start=300.0, duration=300.0, factor=4.0
    )
    times = [i.time for i in source.iter_invocations(900.0)]
    inside = sum(1 for t in times if 300.0 <= t < 600.0)
    outside = len(times) - inside
    inside_rate = inside / 300.0
    outside_rate = outside / 600.0
    assert outside_rate == pytest.approx(5.0, rel=0.2)
    assert inside_rate == pytest.approx(20.0, rel=0.2)
    with pytest.raises(ValueError, match="duration"):
        BurstModulator(_fixed_source(seed=3), start=0.0, duration=0.0)
    with pytest.raises(ValueError, match="factor"):
        BurstModulator(_fixed_source(seed=3), start=0.0, duration=1.0, factor=-1.0)


def test_flash_crowd_modulator_shape():
    source = FlashCrowdModulator(
        _fixed_source(seed=4, rate=2.0), at=100.0, magnitude=9.0,
        rise=10.0, decay=50.0,
    )
    assert source.factor(50.0) == 1.0
    assert source.factor(105.0) == pytest.approx(5.5)    # mid-ramp
    assert source.factor(110.0) == pytest.approx(10.0)   # peak
    assert source.factor(160.0) == pytest.approx(1.0 + 9.0 * math.exp(-1.0))
    assert source.peak_rate(1000.0) == pytest.approx(20.0)
    with pytest.raises(ValueError, match="magnitude"):
        FlashCrowdModulator(_fixed_source(seed=4), at=0.0, magnitude=-1.0)
    with pytest.raises(ValueError, match="rise/decay"):
        FlashCrowdModulator(_fixed_source(seed=4), at=0.0, rise=0.0)


def test_region_shift_tags_every_invocation_and_rotates():
    source = RegionShiftModulator(
        _fixed_source(seed=5, rate=5.0), ["a", "b"],
        period=1000.0, sharpness=1.0,
    )
    # intensity untouched — only the marking changes
    assert source.factor(123.0) == 1.0
    assert source.peak_rate(1000.0) == pytest.approx(5.0)
    invocations = list(source.iter_invocations(1000.0))
    assert invocations and all(i.cluster in {"a", "b"} for i in invocations)
    # follow-the-sun: with sharpness 1 and two regions, the active
    # region's weight at its own peak is 2 and the other's is ~0
    early = [i.cluster for i in invocations if i.time < 100.0]
    late = [i.cluster for i in invocations if 450.0 <= i.time < 550.0]
    assert early.count("a") > 0.9 * len(early)
    assert late.count("b") > 0.9 * len(late)


def test_region_shift_validation():
    base = _fixed_source(seed=5)
    with pytest.raises(ValueError, match="region"):
        RegionShiftModulator(base, [])
    with pytest.raises(ValueError, match="period"):
        RegionShiftModulator(base, ["a"], period=0.0)
    with pytest.raises(ValueError, match="sharpness"):
        RegionShiftModulator(base, ["a"], sharpness=-0.1)


def test_build_stream_source_composition_order():
    """The canonical wrapper order both execution paths rely on:
    region-shift(flash(burst(diurnal(poisson))))."""
    source = build_stream_source(
        np.random.default_rng(1), ["f"], 2.0,
        diurnal_amplitude=0.3,
        burst_at=10.0,
        flash_at=50.0,
        regions=["a", "b"],
        region_period=100.0,
    )
    assert isinstance(source, RegionShiftModulator)
    assert isinstance(source.base, FlashCrowdModulator)
    assert isinstance(source.base.base, BurstModulator)
    assert isinstance(source.base.base.base, DiurnalModulator)
    assert isinstance(source.base.base.base.base, PoissonSource)
    assert source.functions == ["f"]
    # peaks compose multiplicatively: 2 * 1.3 * 4 (burst) * 10 (flash)
    assert source.peak_rate(1000.0) == pytest.approx(104.0)


def test_build_stream_source_defaults_to_bare_poisson():
    source = build_stream_source(np.random.default_rng(1), ["f"], 2.0)
    assert type(source) is PoissonSource


# ---------------------------------------------------------------------------
# StreamReport
# ---------------------------------------------------------------------------


def test_stream_report_counts_and_shares():
    report = StreamReport()
    report.add(ActivationStatus.SUCCESS, 1.0)
    report.add(ActivationStatus.SUCCESS, 3.0)
    report.add(ActivationStatus.FAILED, 0.5)
    report.add(ActivationStatus.UNAVAILABLE, 0.0)
    assert report.total == 4
    assert report.count(ActivationStatus.SUCCESS) == 2
    assert report.invoked_share == pytest.approx(0.75)
    assert report.success_share_of_invoked == pytest.approx(2.0 / 3.0)
    metrics = report.metrics()
    assert metrics["stream_requests_total"] == 4
    assert metrics["stream_accepted_share"] == pytest.approx(0.75)
    # response-time aggregates cover successes only
    assert metrics["stream_mean_response_s"] == pytest.approx(2.0)
    assert metrics["stream_p50_response_s"] == pytest.approx(2.0)


def test_stream_report_empty():
    report = StreamReport()
    assert report.invoked_share == 0.0
    assert report.success_share_of_invoked == 0.0
    metrics = report.metrics()
    assert metrics["stream_requests_total"] == 0
    assert "stream_mean_response_s" not in metrics


def test_stream_report_merge_matches_single_report():
    """Shard-split outcomes merged back equal the unsplit report: counts
    and moments exactly (quantiles per the sketch-merge contract)."""
    rng = np.random.default_rng(8)
    statuses = [
        ActivationStatus.SUCCESS,
        ActivationStatus.FAILED,
        ActivationStatus.UNAVAILABLE,
        ActivationStatus.TIMEOUT,
    ]
    outcomes = [
        (statuses[int(rng.integers(len(statuses)))], float(rng.uniform(0.1, 5.0)))
        for _ in range(400)
    ]
    left, right, whole = StreamReport(), StreamReport(), StreamReport()
    for index, (status, response_time) in enumerate(outcomes):
        (left if index % 2 else right).add(status, response_time)
        whole.add(status, response_time)
    left.run_horizon = 600.0
    right.run_horizon = 900.0
    left.merge(right)
    assert left.total == whole.total
    assert left.by_status == whole.by_status
    assert left.run_horizon == 900.0
    assert left.response.count == whole.response.count
    assert left.response.min == whole.response.min
    assert left.response.max == whole.response.max
    assert left.response.total == pytest.approx(whole.response.total)
    assert left.response.mean == pytest.approx(whole.response.mean)
    # 400 successes max < the default sketch capacity -> quantiles exact
    assert left.response.quantile(0.5) == pytest.approx(
        whole.response.quantile(0.5)
    )


def test_stream_report_merge_empty_sides():
    report = StreamReport()
    report.add(ActivationStatus.SUCCESS, 2.0)
    report.merge(StreamReport())
    assert report.total == 1
    empty = StreamReport()
    empty.merge(report)
    assert empty.total == 1
    assert empty.response.mean == pytest.approx(2.0)
