"""Tests for trace → prime-job conversion and the Fig 2 population."""

import numpy as np
import pytest

from repro.cluster import JobState, SlurmConfig, SlurmController
from repro.sim import Environment
from repro.workloads.hpc_trace import (
    JobPopulation,
    busy_intervals,
    trace_to_prime_jobs,
)
from repro.workloads.idleness import IdlenessTrace, IdlePeriod


def small_trace():
    return IdlenessTrace(
        horizon=3600.0,
        num_nodes=2,
        periods=[
            IdlePeriod("n0000", 600.0, 900.0),
            IdlePeriod("n0000", 1800.0, 2000.0),
            IdlePeriod("n0001", 0.0, 300.0),
        ],
    )


def test_busy_intervals_complement():
    trace = small_trace()
    busy0 = busy_intervals(trace, "n0000")
    assert busy0 == [(0.0, 600.0), (900.0, 1800.0), (2000.0, 3600.0)]
    busy1 = busy_intervals(trace, "n0001")
    assert busy1 == [(300.0, 3600.0)]


def test_busy_intervals_fully_idle_node():
    trace = IdlenessTrace(
        horizon=100.0, num_nodes=1, periods=[IdlePeriod("n0000", 0.0, 100.0)]
    )
    assert busy_intervals(trace, "n0000") == []


def test_trace_to_prime_jobs_pins_and_anchors(rng):
    trace = small_trace()
    workload = trace_to_prime_jobs(trace, rng)
    assert len(workload) > 0
    for prime in workload.jobs:
        spec = prime.spec
        assert spec.num_nodes == 1
        assert spec.required_nodes is not None and len(spec.required_nodes) == 1
        assert spec.begin_time is not None
        assert prime.submit_time <= spec.begin_time
        assert spec.actual_runtime is not None
        assert spec.time_limit >= spec.actual_runtime - 1e-6


def test_trace_to_prime_jobs_cover_busy_time(rng):
    trace = small_trace()
    workload = trace_to_prime_jobs(trace, rng)
    per_node_runtime = {}
    for prime in workload.jobs:
        node = prime.spec.required_nodes[0]
        per_node_runtime[node] = per_node_runtime.get(node, 0.0) + prime.spec.actual_runtime
    busy0 = sum(e - s for s, e in busy_intervals(trace, "n0000"))
    assert per_node_runtime["n0000"] == pytest.approx(busy0, rel=1e-9)


def test_replay_reproduces_idleness(rng):
    """Submitting the prime workload into the cluster sim must reproduce
    the trace's idle windows on the nodes (up to scheduling latency)."""
    trace = small_trace()
    workload = trace_to_prime_jobs(trace, rng)
    env = Environment()
    controller = SlurmController(env, SlurmConfig(num_nodes=2))
    submitted = workload.submit_all(env, controller)
    env.run(until=3600.0)
    controller.close_interval_log()
    finished = [j for j in submitted if j.finished]
    assert all(j.state is JobState.COMPLETED for j in finished)
    # Node n0000 must be free around t=700 (inside its idle window).
    busy_at_700 = [
        iv for iv in controller.allocation_log
        if iv.node == "n0000" and iv.start <= 700.0 < (iv.end or 3600.0)
    ]
    assert busy_at_700 == []
    # And busy around t=300 (inside a busy segment).
    busy_at_300 = [
        iv for iv in controller.allocation_log
        if iv.node == "n0000" and iv.start <= 300.0 < (iv.end or 3600.0)
    ]
    assert len(busy_at_300) == 1


def test_population_sampling(rng):
    jobs = JobPopulation(rng).sample(5000)
    assert len(jobs) == 5000
    limits = np.array([j.limit for j in jobs])
    slacks = np.array([j.slack for j in jobs])
    assert np.median(limits) == pytest.approx(3600.0, rel=0.1)
    assert (slacks >= -1e-9).all()
    assert slacks.mean() > 0  # visible slack, per Fig 2
