"""Shared fixtures: a fresh environment and reset global counters."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cluster.job import reset_job_ids
from repro.faas.messages import reset_activation_ids
from repro.hpcwhisk.pilot import reset_pilot_ids
from repro.sim import Environment

# the suite runs hundreds of scenarios; don't write them all into a
# results warehouse (warehouse tests opt back in with their own paths)
os.environ.setdefault("REPRO_WAREHOUSE", "0")


@pytest.fixture(autouse=True)
def _reset_counters():
    """Deterministic ids in every test."""
    reset_job_ids()
    reset_activation_ids()
    reset_pilot_ids()
    yield


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
