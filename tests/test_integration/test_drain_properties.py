"""Property-style integration tests of the drain protocol.

The paper's reliability claim: with the fast lane, requests accepted by
the controller survive worker departures (95–97% completion); losses only
occur when no other worker exists or SIGKILL preempts the drain.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faas import (
    ActivationStatus,
    Broker,
    Controller,
    FaaSConfig,
    FunctionDef,
    Invoker,
)
from repro.sim import Environment, Interrupt


def build(env, num_invokers, config):
    broker = Broker(env, publish_latency=config.publish_latency)
    controller = Controller(env, broker, config=config, rng=np.random.default_rng(0))
    controller.deploy(FunctionDef(name="f", duration=1.0))
    procs = []
    invokers = []
    for index in range(num_invokers):
        invoker = Invoker(env, f"inv-{index}", f"n{index}", broker,
                          controller.registry, config=config,
                          rng=np.random.default_rng(index + 1))
        invokers.append(invoker)

        def lifecycle(env, inv=invoker):
            yield from inv.register()
            try:
                yield from inv.serve()
            except Interrupt:
                yield from inv.drain()

        procs.append(env.process(lifecycle(env)))
    return broker, controller, invokers, procs


@given(
    kill_at=st.floats(min_value=1.5, max_value=8.0),
    num_requests=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=25, deadline=None)
def test_no_accepted_request_lost_with_survivor(kill_at, num_requests):
    """Kill one of two invokers at an arbitrary moment mid-burst: every
    accepted request must still complete (success), never time out."""
    env = Environment()
    config = FaaSConfig(
        system_overhead=0.0, publish_latency=0.001, activation_timeout=120.0,
        drain_notify_delay=0.05, drain_republish_delay=0.001,
        drain_deregister_delay=0.05,
    )
    broker, controller, invokers, procs = build(env, 2, config)
    results = []

    def client(env):
        yield env.timeout(1.0)
        requests = [env.process(controller.invoke("f")) for _ in range(num_requests)]
        for request in requests:
            results.append((yield request))

    env.process(client(env))

    def killer(env):
        yield env.timeout(kill_at)
        if procs[0].is_alive:
            procs[0].interrupt("sigterm")

    env.process(killer(env))
    env.run(until=300)
    assert len(results) == num_requests
    statuses = [r.status for r in results]
    assert all(s is ActivationStatus.SUCCESS for s in statuses), statuses


@given(kill_at=st.floats(min_value=1.5, max_value=4.0))
@settings(max_examples=15, deadline=None)
def test_requests_conserved_exactly_once(kill_at):
    """Across a drain, every accepted activation completes exactly once:
    the ledger never shows duplicate completions or orphans."""
    env = Environment()
    config = FaaSConfig(
        system_overhead=0.0, publish_latency=0.001, activation_timeout=60.0,
        drain_notify_delay=0.05, drain_republish_delay=0.001,
        drain_deregister_delay=0.05,
    )
    broker, controller, invokers, procs = build(env, 2, config)

    def client(env):
        yield env.timeout(1.0)
        for _ in range(6):
            env.process(controller.invoke("f"))
            yield env.timeout(0.2)

    env.process(client(env))

    def killer(env):
        yield env.timeout(kill_at)
        if procs[0].is_alive:
            procs[0].interrupt("sigterm")

    env.process(killer(env))
    env.run(until=200)
    records = controller.records
    assert len(records) == 6
    assert all(r.finished for r in records)
    # Total completions across invokers equals accepted count (no dups).
    completed = sum(inv.stats.completed for inv in invokers)
    failed = sum(inv.stats.failed for inv in invokers)
    timeouts = sum(1 for r in records if r.status is ActivationStatus.TIMEOUT)
    assert completed + failed + timeouts == 6


def test_node_crash_detected_and_strands_messages(env):
    """Ungraceful loss end-to-end: kill the node under the only invoker;
    the controller flags it via ping timeout and in-flight work times out
    — stock-OpenWhisk behaviour the drain protocol exists to avoid."""
    from repro.cluster import SlurmConfig
    from repro.faas.controller import InvokerStatus
    from repro.hpcwhisk import HPCWhiskConfig, SupplyModel, build_system
    from repro.hpcwhisk.lengths import JobLengthSet

    config = HPCWhiskConfig(
        supply_model=SupplyModel.FIB,
        length_set=JobLengthSet("one", (90,)),
        queue_per_length=1,
        faas=FaaSConfig(system_overhead=0.0, activation_timeout=30.0),
    )
    system = build_system(config, SlurmConfig(num_nodes=1), seed=9)
    system.controller.deploy(FunctionDef(name="slow", duration=20.0))
    env2 = system.env
    results = []

    def client(env2):
        yield env2.timeout(120.0)  # pilot healthy by now
        result = yield from system.client.invoke("slow")
        results.append(result)

    env2.process(client(env2))

    def crash(env2):
        yield env2.timeout(125.0)  # mid-execution
        system.slurm.fail_node("n0000")

    env2.process(crash(env2))
    env2.run(until=400)

    assert results and results[0].status is ActivationStatus.TIMEOUT
    records = list(system.controller.invokers.values())
    assert records and records[0].status is InvokerStatus.GONE
    assert any(e.kind == "invoker_lost" for e in system.controller.events)
    timelines = system.pilot_timelines
    assert timelines[0].end_reason == "node_fail"
