"""Full-stack integration: cluster + HPC-Whisk + FaaS + load, end to end."""

import pytest

from repro.cluster import SlurmConfig
from repro.faas import ActivationStatus, FunctionDef
from repro.hpcwhisk import HPCWhiskConfig, SupplyModel, build_system
from repro.hpcwhisk.lengths import SET_A1
from repro.workloads.gatling import GatlingClient
from repro.workloads.hpc_trace import trace_to_prime_jobs
from repro.workloads.idleness import IdlenessTraceGenerator


HORIZON = 3600.0


def build_loaded_system(model=SupplyModel.FIB, seed=4, num_nodes=24, qps=4.0,
                        outage_share=0.0, min_intensity=4.0):
    config = HPCWhiskConfig(supply_model=model, length_set=SET_A1)
    system = build_system(config, SlurmConfig(num_nodes=num_nodes), seed=seed)
    trace = IdlenessTraceGenerator(
        system.streams.stream("trace"),
        num_nodes=num_nodes,
        outage_share=outage_share,
        min_intensity=min_intensity,
    ).generate(HORIZON)
    trace_to_prime_jobs(trace, system.streams.stream("lead")).submit_all(
        system.env, system.slurm
    )
    functions = [FunctionDef(name=f"f{i:02d}", duration=0.01) for i in range(20)]
    for function in functions:
        system.controller.deploy(function)
    client = GatlingClient(
        system.env, system.client, [f.name for f in functions],
        rate_per_second=qps, rng=system.streams.stream("gatling"),
    )
    client.start(HORIZON)
    return system, client, trace


@pytest.fixture(scope="module")
def fib_run():
    system, client, trace = build_loaded_system()
    system.run(until=HORIZON + 120.0)
    return system, client, trace


def test_load_is_served(fib_run):
    _system, client, _trace = fib_run
    report = client.report
    assert report.total == pytest.approx(4 * HORIZON, abs=5)
    assert report.invoked_share > 0.85
    assert report.success_share_of_invoked > 0.95


def test_pilots_cycle_through_lifecycle(fib_run):
    system, _client, _trace = fib_run
    timelines = [t for t in system.pilot_timelines if t.finished_at is not None]
    assert timelines, "no pilot completed a lifecycle"
    reasons = {t.end_reason for t in timelines}
    assert "timeout" in reasons or "preempt" in reasons
    for timeline in timelines:
        if timeline.healthy_at is None:
            continue
        assert timeline.job_started_at <= timeline.healthy_at
        if timeline.sigterm_at is not None:
            assert timeline.healthy_at <= timeline.sigterm_at + 1e-9
            assert timeline.sigterm_at <= timeline.finished_at + 1e-9


def test_no_ghost_invokers_after_run(fib_run):
    """Every registered invoker whose pilot ended must be GONE."""
    system, _client, _trace = fib_run
    from repro.faas.controller import InvokerStatus

    finished_ids = {
        t.invoker_id for t in system.pilot_timelines if t.finished_at is not None
    }
    for invoker_id, record in system.controller.invokers.items():
        if invoker_id in finished_ids:
            assert record.status is InvokerStatus.GONE, invoker_id


def test_activation_ledger_consistent(fib_run):
    system, client, _trace = fib_run
    records = system.controller.records
    finished = [r for r in records if r.finished]
    # Every accepted request eventually resolved (success/failed/timeout).
    assert len(finished) == len(records)
    ok = sum(1 for r in records if r.status is ActivationStatus.SUCCESS)
    assert ok > 0
    for record in finished:
        assert record.completed_at >= record.submitted_at


def test_prime_jobs_unharmed(fib_run):
    """Prime-trace jobs all completed; none preempted or failed."""
    system, _client, _trace = fib_run
    from repro.cluster.job import JobState

    prime = [j for j in system.slurm.completed if j.spec.partition == "main"]
    assert prime
    assert all(j.state in (JobState.COMPLETED, JobState.TIMEOUT) for j in prime)


def test_whisk_surface_only_on_idle_windows(fib_run):
    """Pilots must never run while the trace says the node is busy with a
    prime job (modulo drain overhang bounded by the grace period)."""
    system, _client, trace = fib_run
    system.slurm.close_interval_log()
    idle_by_node = {}
    for period in trace.periods:
        idle_by_node.setdefault(period.node, []).append((period.start, period.end))
    grace = 180.0
    for interval in system.slurm.allocation_log:
        if interval.partition != "whisk":
            continue
        if interval.start >= HORIZON:
            continue  # after the trace ends the whole cluster is idle
        end = min(interval.end if interval.end is not None else HORIZON, HORIZON)
        inside = any(
            s - 5.0 <= interval.start and end <= e + grace + 35.0
            for s, e in idle_by_node.get(interval.node, [])
        )
        assert inside, (interval.node, interval.start, end)
