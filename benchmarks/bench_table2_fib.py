"""Table II + Fig 5a: the fib experiment day.

Paper anchors (03/17/2022): Slurm-level coverage 90% (clairvoyant 92%);
avg workers — simulation 10.59 ready, Slurm-level 10.66, OW-level 10.39
healthy; avg available 11.85; live coverage below the clairvoyant bound.
"""

from repro.experiments.day import DayConfig, run_day
from repro.hpcwhisk.config import SupplyModel


def test_table2_fib_day(benchmark, kernel_stats, scale):
    config = DayConfig(
        model=SupplyModel.FIB,
        seed=317,
        horizon=scale["day"],
        num_nodes=scale["day_nodes"],
        with_load=False,  # load handled by the responsiveness benchmarks
    )
    result = benchmark.pedantic(run_day, args=(config,), rounds=1, iterations=1)
    print()
    print(result.render())
    benchmark.extra_info.update(
        {
            "live_coverage": round(result.slurm_used_share, 4),
            "sim_coverage": round(result.simulation.used_share, 4),
            "avg_whisk_workers": round(result.slurm_workers.avg, 2),
            "avg_available": round(result.available_workers.avg, 2),
            "avg_healthy_ow": round(result.ow.healthy.avg, 2),
        }
    )

    # Headline: live coverage high (≈90%) and below the clairvoyant bound.
    assert 0.80 <= result.slurm_used_share <= 0.97
    assert result.slurm_used_share <= result.simulation.used_share + 0.02

    # The three perspectives agree on worker counts within ~15%.
    assert abs(result.ow.healthy.avg - result.slurm_workers.avg) <= 0.15 * max(
        result.slurm_workers.avg, 1.0
    )
    # Fig 5a series present for all three perspectives.
    assert len(result.series["whisk_counts"]) > 100
    assert len(result.series["sim_ready_counts"]) > 100
    assert len(result.series["ow_healthy_counts"]) > 100
