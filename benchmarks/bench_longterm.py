"""Future-work extension: long-horizon workload patterns (Sec. VII).

Generates a multi-week trace with diurnal structure, verifies that the
pattern is statistically detectable (the paper's proposed direction for a
smarter job manager), and quantifies the pattern-aware supply's gain.
"""

from repro.experiments.longterm import run_longterm


def test_longterm_patterns(benchmark, kernel_stats, scale):
    weeks = 2 if scale["week"] > 2 * 24 * 3600 else 1
    result = benchmark.pedantic(
        run_longterm,
        kwargs=dict(seed=2022, weeks=weeks, num_nodes=scale["num_nodes"] // 2,
                    diurnal_amplitude=0.6),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    benchmark.extra_info.update(
        {
            "daily_autocorrelation": round(result.daily_autocorrelation, 4),
            "static_ready": round(result.static_coverage.ready_share, 4),
            "adaptive_ready": round(result.adaptive_ready_share, 4),
        }
    )
    assert result.daily_autocorrelation > 0.1
    assert result.adaptive_ready_share >= result.static_coverage.ready_share - 0.01
