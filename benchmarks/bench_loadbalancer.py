"""Load-balancer ablation: hash affinity vs round-robin vs least-loaded.

OpenWhisk's hash-by-name routing maximizes warm-container reuse; spreading
strategies trade warm hits for balance.  With many distinct functions and
bounded container pools, affinity should show a higher warm-hit ratio.

Each strategy is one :class:`repro.api.Stack`: a static invoker fleet
(no pilot churn) + the middleware with the balancer under test + the
Gatling client, measured by the ``loadbalancer-stats`` probe.
"""

from repro.api import (
    ClusterSpec,
    MiddlewareSpec,
    ProbeSpec,
    Stack,
    SupplySpec,
    WorkloadSpec,
)


def run_with_balancer(balancer, horizon=1800.0, num_invokers=4, num_functions=39):
    # num_functions is chosen coprime with num_invokers: otherwise the
    # open-loop client's round-robin over functions aliases with a
    # round-robin balancer and accidentally produces perfect affinity.
    stack = Stack(
        cluster=ClusterSpec(nodes=num_invokers),
        supply=SupplySpec("static", invokers=num_invokers),
        middleware=MiddlewareSpec(
            balancer=balancer, system_overhead=0.05, max_containers=12
        ),
        workloads=(
            WorkloadSpec("gatling", qps=8.0, functions=num_functions, duration=0.05),
        ),
        probes=(ProbeSpec("loadbalancer-stats"), ProbeSpec("gatling-report")),
        seed=0,
        horizon=horizon,
        run_extra=60.0,
        name=f"balancer-{balancer}",
    )
    report = stack.run()
    return {
        "balancer": balancer,
        "warm_ratio": report.metrics["warm_ratio"],
        "median_ms": report.metrics["median_response_s"] * 1000,
        "success": report.metrics["success_of_accepted_share"],
    }


def test_balancer_warm_hit_ablation(benchmark, kernel_stats):
    def sweep():
        return [
            run_with_balancer("hash-affinity"),
            run_with_balancer("round-robin"),
            run_with_balancer("least-loaded"),
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_name = {r["balancer"]: r for r in results}
    for name, r in by_name.items():
        benchmark.extra_info[f"{name}_warm_ratio"] = round(r["warm_ratio"], 4)
        benchmark.extra_info[f"{name}_median_ms"] = round(r["median_ms"], 1)
    print()
    for r in results:
        print(f"{r['balancer']:>14}: warm ratio {r['warm_ratio']:.3f}, "
              f"median {r['median_ms']:.0f} ms, success {r['success']:.3f}")

    # Affinity keeps containers warm far better than blind spreading.
    assert by_name["hash-affinity"]["warm_ratio"] > by_name["round-robin"]["warm_ratio"]
    # And everything still completes.
    for r in results:
        assert r["success"] > 0.97
