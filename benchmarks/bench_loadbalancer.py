"""Load-balancer ablation: hash affinity vs round-robin vs least-loaded.

OpenWhisk's hash-by-name routing maximizes warm-container reuse; spreading
strategies trade warm hits for balance.  With many distinct functions and
bounded container pools, affinity should show a higher warm-hit ratio.
"""

import numpy as np

from repro.faas import Broker, Controller, FaaSConfig, FunctionDef, Invoker
from repro.faas.loadbalancer import HashAffinity, LeastLoaded, RoundRobin
from repro.sim import Environment, Interrupt
from repro.workloads.gatling import GatlingClient


def run_with_balancer(balancer, horizon=1800.0, num_invokers=4, num_functions=39):
    # num_functions is chosen coprime with num_invokers: otherwise the
    # open-loop client's round-robin over functions aliases with a
    # round-robin balancer and accidentally produces perfect affinity.
    env = Environment()
    config = FaaSConfig(system_overhead=0.05, max_containers=12)
    broker = Broker(env, publish_latency=config.publish_latency)
    controller = Controller(
        env, broker, config=config, rng=np.random.default_rng(0), load_balancer=balancer
    )
    functions = [FunctionDef(name=f"f{i:02d}", duration=0.05) for i in range(num_functions)]
    for function in functions:
        controller.deploy(function)

    invokers = []
    for index in range(num_invokers):
        invoker = Invoker(
            env, f"inv-{index}", f"n{index:04d}", broker, controller.registry,
            config=config, rng=np.random.default_rng(index + 1),
        )
        invokers.append(invoker)

        def lifecycle(env, inv=invoker):
            yield from inv.register()
            try:
                yield from inv.serve()
            except Interrupt:
                yield from inv.drain()

        env.process(lifecycle(env))

    client = GatlingClient(
        env, controller_client(controller), [f.name for f in functions],
        rate_per_second=8.0, duration=0.05, rng=np.random.default_rng(99),
    )
    client.start(horizon)
    env.run(until=horizon + 60)
    cold = sum(inv.pool.cold_starts for inv in invokers)
    warm = sum(inv.pool.warm_hits for inv in invokers)
    return {
        "balancer": balancer.name,
        "warm_ratio": warm / max(warm + cold, 1),
        "median_ms": client.report.response_time_percentile(50) * 1000,
        "success": client.report.success_share_of_invoked,
    }


def controller_client(controller):
    class _Client:
        def invoke(self, function, params=None, duration=None):
            result = yield from controller.invoke(function, params=params, duration=duration)
            return result

    return _Client()


def test_balancer_warm_hit_ablation(benchmark, kernel_stats):
    def sweep():
        return [
            run_with_balancer(HashAffinity()),
            run_with_balancer(RoundRobin()),
            run_with_balancer(LeastLoaded()),
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_name = {r["balancer"]: r for r in results}
    for name, r in by_name.items():
        benchmark.extra_info[f"{name}_warm_ratio"] = round(r["warm_ratio"], 4)
        benchmark.extra_info[f"{name}_median_ms"] = round(r["median_ms"], 1)
    print()
    for r in results:
        print(f"{r['balancer']:>14}: warm ratio {r['warm_ratio']:.3f}, "
              f"median {r['median_ms']:.0f} ms, success {r['success']:.3f}")

    # Affinity keeps containers warm far better than blind spreading.
    assert by_name["hash-affinity"]["warm_ratio"] > by_name["round-robin"]["warm_ratio"]
    # And everything still completes.
    for r in results:
        assert r["success"] > 0.97
