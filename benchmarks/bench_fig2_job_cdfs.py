"""Fig 2: CDFs of prime-job declared limits, runtimes and slack.

Paper anchors: 74k jobs/week; median declared limit 60 min; 95% declare
at least 15 min; runtimes well below limits (visible slack mass).
"""

import numpy as np

from repro.experiments.fig2 import run_fig2


def test_fig2_job_population(benchmark, kernel_stats, scale):
    count = 74000 if scale["week"] > 2 * 24 * 3600 else 20000
    result = benchmark.pedantic(
        run_fig2, kwargs=dict(seed=2022, count=count), rounds=1, iterations=1
    )
    stats = result.stats
    benchmark.extra_info.update({k: round(v, 3) for k, v in stats.items()})
    print()
    print(result.render())

    assert 50.0 <= stats["limit_median_min"] <= 70.0          # ≈ 60 min
    assert stats["share_limit_ge_15min"] >= 0.92              # ≈ 95%
    assert stats["runtime_median_min"] < stats["limit_median_min"]
    assert stats["slack_mean_min"] > 0

    # The three CDFs of the figure.
    limits, limit_p = result.limit_cdf()
    runtimes, _ = result.runtime_cdf()
    slack, slack_p = result.slack_cdf()
    assert limits[-1] <= 72 * 60.0 * 60.0
    # Runtime CDF dominates the limit CDF (runtimes are smaller).
    assert np.median(runtimes) <= np.median(limits)
