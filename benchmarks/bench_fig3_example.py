"""Fig 3: the 5-node, 4-job motivating example with pilot fill.

Paper anchors: 1.2 idle nodes on average in a minimal-makespan schedule;
pilot jobs of 2/4/6/10 minutes cover ~83% of the previously idle slots
with ready invokers.
"""

from repro.experiments.fig3 import run_fig3


def test_fig3_example(benchmark, kernel_stats):
    result = benchmark.pedantic(run_fig3, kwargs=dict(seed=7), rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "avg_idle_without_pilots": round(result.stats["avg_idle_nodes_without_pilots"], 3),
            "pilot_coverage": round(result.coverage, 3),
            "ready_coverage": round(result.ready_coverage, 3),
        }
    )
    print()
    print(result.render())

    # ≈1.2 idle nodes on average without pilots.
    assert 0.9 <= result.stats["avg_idle_nodes_without_pilots"] <= 1.6
    # ≈83% ready coverage.
    assert 0.70 <= result.ready_coverage <= 0.95
    assert result.pilots_started >= 2
