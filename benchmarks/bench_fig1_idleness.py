"""Fig 1: idleness analysis of the (synthetic) production cluster.

Paper anchors — idle nodes: mean 9.23, p25 2, median 5; zero-idle 10.11%
of time; idle periods: median 2 min, p75 4 min, mean >5 min, 5% >23 min;
idle surface >37,000 core-hours over the week.
"""

import numpy as np

from repro.experiments.fig1 import run_fig1


def test_fig1_idleness(benchmark, kernel_stats, scale):
    result = benchmark.pedantic(
        run_fig1,
        kwargs=dict(seed=2022, horizon=scale["week"], num_nodes=scale["num_nodes"]),
        rounds=1,
        iterations=1,
    )
    stats = result.stats
    benchmark.extra_info.update({k: round(v, 4) for k, v in stats.items()})
    print()
    print(result.render())

    # Shape assertions (generous: single synthetic week).
    assert 0.4 * 9.23 <= stats["idle_nodes_mean"] <= 1.8 * 9.23
    assert 60.0 <= stats["period_median_s"] <= 240.0
    assert 0.02 <= stats["period_share_gt_23min"] <= 0.10
    assert 0.03 <= stats["zero_idle_share"] <= 0.20

    # Fig 1a CDF data is monotonic and complete.
    values, probabilities = result.count_cdf()
    assert probabilities[-1] == 1.0
    # Fig 1c series exists at the 10-s cadence.
    times, counts = result.time_series()
    assert len(times) == len(counts)
    assert np.all(np.diff(times) > 0)
