#!/usr/bin/env python
"""Streaming memory ceiling: peak RSS must stay flat as the horizon grows.

The streaming workload layer's contract is O(1) resident memory in the
run length: invocations are pulled lazily from generator-backed sources,
outcome aggregation is streaming (``StreamReport``), and with
``record_history: false`` the controller keeps counters instead of a
per-activation ledger.  A regression anywhere in that chain — a
materialized schedule, an unbounded log, a leaky probe — shows up as
peak RSS scaling with the horizon.

This script runs the same streaming stack at a base horizon and at
``factor`` times that horizon, **each in a fresh subprocess** (so
``ru_maxrss`` measures one run, not the max over both), and fails when
the long run's peak RSS exceeds the short run's by more than the
allowed ratio.  CI runs it as the streaming-smoke gate::

    PYTHONPATH=src python benchmarks/streaming_rss.py

Tune with --horizon/--factor/--max-ratio; --child is internal.
"""

from __future__ import annotations

import argparse
import json
import resource
import subprocess
import sys


def run_child(horizon: float) -> None:
    """One measured run: build, run, report peak RSS as JSON on stdout."""
    from repro.api import (
        ClusterSpec,
        MiddlewareSpec,
        ProbeSpec,
        Stack,
        SupplySpec,
        WorkloadSpec,
    )

    stack = Stack(
        cluster=ClusterSpec(nodes=8),
        supply=SupplySpec("fib"),
        middleware=MiddlewareSpec("openwhisk", record_history=False),
        workloads=(
            WorkloadSpec("idleness-trace", outage_share=0.0),
            WorkloadSpec(
                "faas-stream",
                qps=10.0,
                functions=50,
                azure_durations=False,
                diurnal_amplitude=0.3,
            ),
        ),
        probes=(
            ProbeSpec("slurm-sampler", history=False),
            ProbeSpec("stream-report"),
        ),
        seed=20_26,
        horizon=horizon,
        name="stream-rss",
    )
    report = stack.run()
    peak_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(
        json.dumps(
            {
                "horizon_s": horizon,
                "peak_rss_kib": peak_kib,
                "requests": report.metrics["stream_requests_total"],
            }
        )
    )


def measure(horizon: float) -> dict:
    out = subprocess.run(
        [sys.executable, __file__, "--child", str(horizon)],
        check=True,
        capture_output=True,
        text=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--horizon", type=float, default=600.0,
                        help="base horizon, simulated seconds (default 600)")
    parser.add_argument("--factor", type=float, default=10.0,
                        help="long-run horizon multiplier (default 10)")
    parser.add_argument("--max-ratio", type=float, default=1.30,
                        help="allowed peak-RSS growth long/short (default 1.30)")
    parser.add_argument("--child", type=float, default=None,
                        help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.child is not None:
        run_child(args.child)
        return 0

    short = measure(args.horizon)
    long = measure(args.horizon * args.factor)
    ratio = long["peak_rss_kib"] / short["peak_rss_kib"]
    print(f"short run: {short['horizon_s']:>8.0f}s  "
          f"{short['requests']:>8.0f} requests  "
          f"peak RSS {short['peak_rss_kib'] / 1024:.1f} MiB")
    print(f"long run : {long['horizon_s']:>8.0f}s  "
          f"{long['requests']:>8.0f} requests  "
          f"peak RSS {long['peak_rss_kib'] / 1024:.1f} MiB")
    print(f"growth   : x{args.factor:.0f} horizon -> x{ratio:.3f} peak RSS "
          f"(ceiling x{args.max_ratio:.2f})")
    if ratio > args.max_ratio:
        print(
            f"FAIL: peak RSS grew x{ratio:.3f} over a x{args.factor:.0f} "
            "horizon — the streaming path is accumulating per-invocation "
            "state somewhere",
            file=sys.stderr,
        )
        return 1
    print("OK: peak RSS is flat in the horizon")
    return 0


if __name__ == "__main__":
    sys.exit(main())
