"""Figs 6b/6c + Sec. V-C (var side): responsiveness on the poorer day.

Paper anchors (var day): only 78.28% of requests accepted (21.72% → 503),
96.99% of accepted succeed, median response 1,227 ms — visibly worse than
the fib day on acceptance and latency, similar on success-of-accepted.
"""


from repro.analysis.metrics import cdf
from repro.experiments.day import DayConfig, run_day
from repro.hpcwhisk.config import SupplyModel


def test_fig6b_var_queries_and_responsiveness(benchmark, kernel_stats, scale):
    config = DayConfig(
        model=SupplyModel.VAR,
        seed=321,
        horizon=scale["day"],
        num_nodes=scale["day_nodes"],
        with_load=True,
    )
    result = benchmark.pedantic(run_day, args=(config,), rounds=1, iterations=1)
    report = result.gatling
    print()
    print(result.render())
    benchmark.extra_info.update(
        {
            "requests": report.total,
            "accepted_share": round(report.invoked_share, 4),
            "success_of_accepted": round(report.success_share_of_invoked, 4),
            "median_response_ms": round(report.response_time_percentile(50) * 1000, 1),
        }
    )

    # var accepts visibly less than fib's ~95% but still most requests.
    assert 0.55 <= report.invoked_share <= 0.97
    assert report.success_share_of_invoked >= 0.90
    # 503 bursts exist (outage windows), visible as rejected minutes.
    assert result.per_minute["rejected"].sum() > 0

    for key in ("idle_counts", "whisk_counts", "available_counts"):
        values, probabilities = cdf(result.series[key])
        assert probabilities[-1] == 1.0


def test_var_worse_than_fib_for_clients(benchmark, kernel_stats, scale):
    """Cross-day client-visible comparison (Sec. V-C)."""

    def both():
        fib = run_day(
            DayConfig(model=SupplyModel.FIB, seed=317, horizon=scale["day"],
                      num_nodes=scale["day_nodes"], with_load=True)
        )
        var = run_day(
            DayConfig(model=SupplyModel.VAR, seed=321, horizon=scale["day"],
                      num_nodes=scale["day_nodes"], with_load=True)
        )
        return fib, var

    fib, var = benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info["fib_accepted"] = round(fib.gatling.invoked_share, 4)
    benchmark.extra_info["var_accepted"] = round(var.gatling.invoked_share, 4)
    benchmark.extra_info["fib_median_ms"] = round(
        fib.gatling.response_time_percentile(50) * 1000, 1
    )
    benchmark.extra_info["var_median_ms"] = round(
        var.gatling.response_time_percentile(50) * 1000, 1
    )
    assert fib.gatling.invoked_share > var.gatling.invoked_share
    assert (
        var.gatling.response_time_percentile(50)
        >= 0.95 * fib.gatling.response_time_percentile(50)
    )
