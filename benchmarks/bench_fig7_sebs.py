"""Fig 7: SeBS compute performance — HPC node vs AWS Lambda at 2 GB.

Paper anchor: a consistent ≈15% performance advantage for the Prometheus
node on all three compute-intensive functions (bfs, mst, pagerank).
"""

import pytest

from repro.experiments.fig7 import run_fig7


def test_fig7_sebs_vs_lambda(benchmark, kernel_stats, scale):
    result = benchmark.pedantic(
        run_fig7,
        kwargs=dict(
            seed=2022,
            invocations=scale["sebs_invocations"],
            graph_size=scale["sebs_graph"],
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    for row in result.rows:
        benchmark.extra_info[f"{row.function}_advantage"] = round(row.advantage, 4)
        benchmark.extra_info[f"{row.function}_node_ms"] = round(
            row.prometheus_median_s * 1000, 2
        )

    assert {row.function for row in result.rows} == {"bfs", "mst", "pagerank"}
    for row in result.rows:
        # The ≈15% advantage, consistent across functions.
        assert row.advantage == pytest.approx(0.15, abs=0.04), row.function
        # Real compute happened.
        assert row.prometheus_median_s > 0.005, row.function
        # Lambda quartiles bracket sensibly.
        assert row.lambda_p25_s <= row.lambda_median_s <= row.lambda_p75_s


def test_fig7_memory_scaling_sensitivity(benchmark, kernel_stats, scale):
    """Extension: at low memory the Lambda gap widens (CPU share model)."""
    result = benchmark.pedantic(
        run_fig7,
        kwargs=dict(
            seed=2022,
            invocations=max(5, scale["sebs_invocations"] // 4),
            graph_size=scale["sebs_graph"] // 2,
            memory_mb=512.0,
        ),
        rounds=1,
        iterations=1,
    )
    for row in result.rows:
        # 512 MB → cpu share 512/1792 ≈ 0.286 → ≥3x slower than the node.
        assert row.advantage > 2.0, row.function
