"""Sec. IV-B: simulator-driven optimization of pilot-job lengths.

The paper hand-compared six candidate sets; the optimizer generalizes the
search over parametric families.  Anchors: the fine arithmetic family
(C2 shape) maximizes ready share; the coarse geometric family (set-B
shape) pays the most warm-up; differences stay within a few percent
(Table I's "no significant impact" conclusion).
"""

import numpy as np

from repro.hpcwhisk.optimizer import LengthSetOptimizer
from repro.workloads.idleness import IdlenessTraceGenerator


def test_length_set_optimization(benchmark, kernel_stats, scale):
    def run():
        rng = np.random.default_rng(2022)
        trace = IdlenessTraceGenerator(rng, num_nodes=scale["num_nodes"]).generate(
            scale["week"]
        )
        return LengthSetOptimizer().optimize(trace)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.render())
    best_set, best_cov = result.ranking[0]
    worst_set, worst_cov = result.ranking[-1]
    benchmark.extra_info["best"] = best_set.name
    benchmark.extra_info["best_ready"] = round(best_cov.ready_share, 4)
    benchmark.extra_info["worst"] = worst_set.name
    benchmark.extra_info["worst_ready"] = round(worst_cov.ready_share, 4)

    # Fine sets win.
    assert best_set.name.startswith(("ari", "fib"))
    shares = [c.ready_share for _s, c in result.ranking]
    assert shares == sorted(shares, reverse=True)

    # Among *reasonable* sets (several lengths, 2-minute shortest — the
    # kind the paper hand-picked), differences are small: Table I's "no
    # significant impact" conclusion.
    reasonable = [
        c.ready_share
        for s, c in result.ranking
        if len(s.minutes) >= 4 and s.shortest == 2
    ]
    assert max(reasonable) - min(reasonable) < 0.06
    # But degenerate candidates (all-2-minute, or missing the short jobs)
    # lose visibly — the optimizer's existence is justified.
    assert max(shares) - min(shares) > 0.05
