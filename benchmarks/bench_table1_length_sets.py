"""Table I: coverage simulation for the six job-length sets.

Paper anchors (7-day trace, 20 s warm-up): ready share ≈ 80–81% for every
set; "not used" identical across sets; B places the most jobs (12,348) and
pays the most warm-up; C2 the fewest (9,115); A1 best among Fibonacci
variants; non-availability ≈ 14.7–14.9%.
"""

from repro.experiments.table1 import run_table1


def test_table1_length_sets(benchmark, kernel_stats, scale):
    result = benchmark.pedantic(
        run_table1,
        kwargs=dict(seed=2022, horizon=scale["week"], num_nodes=scale["num_nodes"]),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())

    coverages = {name: result.coverage(name) for name in result.results}
    for name, cov in coverages.items():
        benchmark.extra_info[f"{name}_ready_share"] = round(cov.ready_share, 4)
        benchmark.extra_info[f"{name}_jobs"] = cov.num_jobs

    # Identical "not used" across sets (exact tiling of even windows).
    unused = {round(c.unused_share, 6) for c in coverages.values()}
    assert len(unused) == 1

    # Orderings from the paper.
    assert coverages["B"].num_jobs > coverages["A1"].num_jobs > coverages["C2"].num_jobs
    assert coverages["C2"].ready_share >= coverages["A1"].ready_share >= coverages["B"].ready_share
    assert coverages["A1"].ready_share >= coverages["A2"].ready_share - 0.002

    # Magnitudes: ready share in the 70–85% zone, warm-up a few percent.
    for name, cov in coverages.items():
        assert 0.65 <= cov.ready_share <= 0.90, name
        assert 0.01 <= cov.warmup_share <= 0.08, name
