"""Table III + Fig 6a: the var experiment day.

Paper anchors (03/21/2022): Slurm-level coverage only 68% against a
clairvoyant 84% — the flexible-job scheduling gap; avg workers 5.03
(Slurm) / 4.96 (OW healthy); avg available 7.38; zero-available 9.44% of
samples.
"""

from repro.experiments.day import DayConfig, run_day
from repro.hpcwhisk.config import SupplyModel


def test_table3_var_day(benchmark, kernel_stats, scale):
    config = DayConfig(
        model=SupplyModel.VAR,
        seed=321,
        horizon=scale["day"],
        num_nodes=scale["day_nodes"],
        with_load=False,
    )
    result = benchmark.pedantic(run_day, args=(config,), rounds=1, iterations=1)
    print()
    print(result.render())
    benchmark.extra_info.update(
        {
            "live_coverage": round(result.slurm_used_share, 4),
            "sim_coverage": round(result.simulation.used_share, 4),
            "avg_whisk_workers": round(result.slurm_workers.avg, 2),
            "avg_available": round(result.available_workers.avg, 2),
            "zero_available_share": round(result.zero_available_share, 4),
        }
    )

    # Headline: a LARGE gap between live and clairvoyant coverage.
    assert result.simulation.used_share - result.slurm_used_share >= 0.08
    assert 0.45 <= result.slurm_used_share <= 0.80
    assert 0.75 <= result.simulation.used_share <= 0.95


def test_fib_beats_var_coverage(benchmark, kernel_stats, scale):
    """The paper's central comparison: fib covers far more than var."""

    def both():
        fib = run_day(
            DayConfig(
                model=SupplyModel.FIB, seed=317, horizon=scale["day"],
                num_nodes=scale["day_nodes"], with_load=False,
            )
        )
        var = run_day(
            DayConfig(
                model=SupplyModel.VAR, seed=321, horizon=scale["day"],
                num_nodes=scale["day_nodes"], with_load=False,
            )
        )
        return fib, var

    fib, var = benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info["fib_coverage"] = round(fib.slurm_used_share, 4)
    benchmark.extra_info["var_coverage"] = round(var.slurm_used_share, 4)
    # Paper: 90% vs 68% — a gap of ≥ 12 points.
    assert fib.slurm_used_share - var.slurm_used_share >= 0.12
