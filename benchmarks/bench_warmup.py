"""Sec. IV-B: pilot warm-up time measurement.

Paper anchors: median 12.48 s, 95th percentile 26.50 s between Slurm
starting the HPC-Whisk job and the invoker registering as healthy.
"""

import numpy as np
import pytest

from repro.cluster import SlurmConfig
from repro.hpcwhisk import HPCWhiskConfig, SupplyModel, build_system
from repro.hpcwhisk.lengths import JobLengthSet


def measure_warmups(seed: int = 2022, horizon: float = 4 * 3600.0):
    """Run pilots on a fully idle mini-cluster and collect warm-ups."""
    config = HPCWhiskConfig(
        supply_model=SupplyModel.FIB,
        length_set=JobLengthSet("w", (2,)),  # constant churn: many samples
        queue_per_length=8,
    )
    system = build_system(config, SlurmConfig(num_nodes=8), seed=seed)
    system.env.run(until=horizon)
    return np.array(
        [
            t.warmup_duration
            for t in system.pilot_timelines
            if t.warmup_duration is not None
        ]
    )


def test_warmup_distribution(benchmark, kernel_stats):
    warmups = benchmark.pedantic(measure_warmups, rounds=1, iterations=1)
    median = float(np.median(warmups))
    p95 = float(np.percentile(warmups, 95))
    benchmark.extra_info["samples"] = len(warmups)
    benchmark.extra_info["median_s"] = round(median, 2)
    benchmark.extra_info["p95_s"] = round(p95, 2)
    print(f"\nwarm-up: n={len(warmups)} median={median:.2f}s p95={p95:.2f}s "
          f"(paper: 12.48 s / 26.50 s)")
    assert len(warmups) > 100
    # Warm-up = model draw + registration latency: slightly above 12.48.
    assert median == pytest.approx(12.48, rel=0.15)
    assert p95 == pytest.approx(26.50, rel=0.20)
