"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures and
attaches the headline numbers as ``extra_info`` so they appear in the
pytest-benchmark JSON/terminal output next to the timing.

Two scales:

* default ("quick") — reduced horizons/sizes; minutes of wall time total;
  preserves every qualitative conclusion;
* ``REPRO_FULL=1`` — the paper's full scale (7-day traces, 24-hour
  experiment days, 864k requests); tens of minutes.
"""

from __future__ import annotations

import os

import pytest


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture(scope="session")
def scale():
    """Scale factors used across benchmarks."""
    if full_scale():
        return {
            "week": 7 * 24 * 3600.0,
            "day": 24 * 3600.0,
            "num_nodes": 2239,
            "day_nodes": 300,
            "sebs_invocations": 200,
            "sebs_graph": 40000,
        }
    return {
        "week": 24 * 3600.0,        # one day stands in for the week
        "day": 3 * 3600.0,          # three hours stand in for a day
        "num_nodes": 512,
        "day_nodes": 128,
        "sebs_invocations": 20,
        "sebs_graph": 12000,
    }
