"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures and
attaches the headline numbers as ``extra_info`` so they appear in the
pytest-benchmark JSON/terminal output next to the timing.

Timing instrumentation is the kernel's own: the ``kernel_stats``
fixture wraps each benchmark body in a
:class:`repro.bench.instrument.KernelProbe`, so every benchmark reports
events processed, peak queue depth, and events/sec from the simulation
loop's counters instead of re-deriving ad-hoc wall-clock numbers.

Scales come from the shared scenario-layer presets
(:mod:`repro.scenarios.presets`) so benchmarks, the CLI, and sweeps all
agree on what "quick" and "full" mean:

* default ("quick") — reduced horizons/sizes; minutes of wall time total;
  preserves every qualitative conclusion;
* ``REPRO_FULL=1`` — the paper's full scale (7-day traces, 24-hour
  experiment days, 864k requests); tens of minutes.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.instrument import KernelProbe
from repro.scenarios.presets import SCALE_PRESETS


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture(scope="session")
def scale():
    """Scale factors used across benchmarks (see scenario presets)."""
    return SCALE_PRESETS["full" if full_scale() else "quick"].as_dict()


@pytest.fixture
def kernel_stats(benchmark):
    """Kernel-counter instrumentation for one benchmark.

    Yields the running :class:`KernelProbe`; on teardown the probe's
    events-processed / peak-queue-depth / events-per-sec numbers land in
    the benchmark's ``extra_info`` next to the scenario's own anchors.
    """
    probe = KernelProbe().start()
    yield probe
    stats = probe.stop()
    benchmark.extra_info.update(stats.as_extra_info())
