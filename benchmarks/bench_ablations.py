"""Ablations of HPC-Whisk design choices (DESIGN.md §4).

Not in the paper as experiments, but each isolates a design decision the
paper motivates: the fast-lane handoff, the SIGTERM grace period, the
pilot-queue depth, and the warm-up cost.
"""

import numpy as np
import pytest

from repro.analysis.coverage import CoverageSimulator
from repro.api import (
    ClusterSpec,
    MiddlewareSpec,
    ProbeSpec,
    Stack,
    SupplySpec,
    WorkloadSpec,
)
from repro.cluster import JobSpec, SlurmConfig
from repro.faas import ActivationStatus
from repro.hpcwhisk import HPCWhiskConfig, SupplyModel, build_system
from repro.hpcwhisk.lengths import SET_A1, JobLengthSet
from repro.workloads.idleness import IdlenessTraceGenerator
from repro.workloads.hpc_trace import trace_to_prime_jobs


def _churn_run(use_fast_lane: bool, horizon: float = 3600.0, seed: int = 99):
    """A small cluster under heavy pilot churn with constant load."""
    stack = Stack(
        cluster=ClusterSpec(nodes=8),
        supply=SupplySpec(
            "fib",
            length_set=JobLengthSet("churn", (2, 4)),  # short pilots: max churn
            queue_per_length=8,
        ),
        middleware=MiddlewareSpec(use_fast_lane=use_fast_lane),
        workloads=(
            WorkloadSpec(
                "idleness-trace", outage_share=0.0, min_intensity=4.0
            ),
            WorkloadSpec("gatling", qps=2.0, functions=20, duration=2.0),
        ),
        probes=(ProbeSpec("gatling-report"),),
        seed=seed,
        horizon=horizon,
        run_extra=120.0,
        name="fastlane-churn",
    )
    return stack.run().artifacts["gatling-report"]


def test_ablation_fastlane(benchmark, kernel_stats):
    """Without the fast lane, churn converts accepted requests into losses."""

    def run_both():
        with_lane = _churn_run(True)
        without_lane = _churn_run(False)
        return with_lane, without_lane

    with_lane, without_lane = benchmark.pedantic(run_both, rounds=1, iterations=1)
    lost_with = with_lane.count(ActivationStatus.TIMEOUT)
    lost_without = without_lane.count(ActivationStatus.TIMEOUT)
    benchmark.extra_info["lost_with_fastlane"] = lost_with
    benchmark.extra_info["lost_without_fastlane"] = lost_without
    benchmark.extra_info["success_with"] = round(with_lane.success_share_of_invoked, 4)
    benchmark.extra_info["success_without"] = round(without_lane.success_share_of_invoked, 4)
    assert lost_without > lost_with
    assert with_lane.success_share_of_invoked > without_lane.success_share_of_invoked


def test_ablation_grace_period(benchmark, kernel_stats):
    """A pilot whose drain exceeds the grace period is SIGKILLed; prime
    jobs wait the full grace.  Sweep grace 30 s → 300 s."""
    from repro.cluster.partition import Partition, PreemptMode
    from repro.cluster.slurmctld import SlurmController
    from repro.sim import Environment, Interrupt

    def run(grace):
        env = Environment()
        partitions = {
            "main": Partition(name="main", priority_tier=1),
            "whisk": Partition(
                name="whisk", priority_tier=0,
                preempt_mode=PreemptMode.CANCEL, grace_time=grace,
            ),
        }
        controller = SlurmController(env, SlurmConfig(num_nodes=1), partitions=partitions)

        def stubborn_body(env, job, nodes):
            try:
                yield env.timeout(10**9)
            except Interrupt:
                yield env.timeout(10**9)  # never drains voluntarily

        pilot = controller.submit(
            JobSpec(name="pilot", partition="whisk", time_limit=7200, body=stubborn_body)
        )
        env.run(until=60)
        prime = controller.submit(JobSpec(name="prime", time_limit=600, actual_runtime=60))
        env.run(until=4000)
        return prime.start_time - 60.0  # delay imposed on the prime job

    def sweep():
        return {grace: run(grace) for grace in (30.0, 180.0, 300.0)}

    delays = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for grace, delay in delays.items():
        benchmark.extra_info[f"delay_at_grace_{int(grace)}s"] = round(delay, 1)
        # The prime job waits essentially the full grace (stubborn pilot)…
        assert delay == pytest.approx(grace, abs=20.0)
    # …so the delay is monotone in the configured grace.
    assert delays[30.0] < delays[180.0] < delays[300.0]


def test_ablation_queue_depth(benchmark, kernel_stats):
    """Too few queued pilots starve placement; the paper keeps 10/length."""

    def run(depth):
        config = HPCWhiskConfig(
            supply_model=SupplyModel.FIB, length_set=SET_A1, queue_per_length=depth
        )
        system = build_system(config, SlurmConfig(num_nodes=16), seed=5)
        trace = IdlenessTraceGenerator(
            system.streams.stream("trace"), num_nodes=16,
            outage_share=0.0, min_intensity=6.0,
        ).generate(3600.0)
        trace_to_prime_jobs(trace, system.streams.stream("lead")).submit_all(
            system.env, system.slurm
        )
        system.env.run(until=3600.0)
        samples_whisk = sum(
            1 for t in system.pilot_timelines if t.healthy_at is not None
        )
        healthy_time = sum(t.healthy_duration for t in system.pilot_timelines)
        return healthy_time

    def sweep():
        return {depth: run(depth) for depth in (1, 10)}

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info.update({f"healthy_s_depth_{d}": round(v) for d, v in result.items()})
    # Depth 10 harvests at least as much serving time as depth 1.
    assert result[10] >= result[1] * 0.95


def test_ablation_warmup_cost(benchmark, kernel_stats):
    """Coverage sensitivity to warm-up: the clairvoyant simulator's ready
    share decays linearly-ish with the per-job warm-up charge."""
    rng = np.random.default_rng(17)
    trace = IdlenessTraceGenerator(rng, num_nodes=256).generate(24 * 3600.0)
    intervals = {}
    for period in trace.periods:
        intervals.setdefault(period.node, []).append((period.start, period.end))

    def sweep():
        return {
            warmup: CoverageSimulator(warmup=warmup).run(intervals, SET_A1).ready_share
            for warmup in (0.0, 20.0, 60.0)
        }

    shares = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info.update({f"ready_at_{int(w)}s": round(s, 4) for w, s in shares.items()})
    assert shares[0.0] > shares[20.0] > shares[60.0]
    # At zero warm-up, ready = used (only residues unused).
    assert shares[0.0] >= 0.75
