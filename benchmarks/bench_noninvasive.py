"""Design goal 1: minimal invasiveness on the prime workload.

The paper claims pilot jobs *"never significantly dislodge HPC jobs"* —
at most the drain time (≤ the 3-minute grace) of delay.  We run the same
prime trace twice — with and without the HPC-Whisk supply — and compare
prime-job wait times (sacct-style accounting).

Both sides are one :class:`repro.api.Stack`: the baseline swaps the
supply for ``none`` and drops the middleware, nothing else.
"""

from repro.api import (
    ClusterSpec,
    MiddlewareSpec,
    ProbeSpec,
    Stack,
    SupplySpec,
    WorkloadSpec,
)
from repro.cluster.accounting import prime_wait_comparison, render_sacct


def run_prime_trace(with_whisk: bool, horizon: float, num_nodes: int, seed: int = 77):
    stack = Stack(
        cluster=ClusterSpec(nodes=num_nodes),
        supply=SupplySpec("fib") if with_whisk else SupplySpec("none"),
        middleware=MiddlewareSpec() if with_whisk else None,
        workloads=(
            WorkloadSpec(
                "idleness-trace", min_intensity=4.0, outage_share=0.01
            ),
        ),
        probes=(ProbeSpec("accounting"),),
        seed=seed,
        horizon=horizon,
        name="noninvasive" if with_whisk else "noninvasive-baseline",
    )
    return stack.run().artifacts["accounting"]


def test_noninvasiveness(benchmark, kernel_stats, scale):
    horizon = min(scale["day"], 6 * 3600.0)
    num_nodes = min(scale["day_nodes"], 64)

    def both():
        with_whisk = run_prime_trace(True, horizon, num_nodes)
        without_whisk = run_prime_trace(False, horizon, num_nodes)
        return with_whisk, without_whisk

    with_whisk, without_whisk = benchmark.pedantic(both, rounds=1, iterations=1)
    comparison = prime_wait_comparison(with_whisk, without_whisk)
    print()
    print("with HPC-Whisk:")
    print(render_sacct(with_whisk))
    print("without HPC-Whisk:")
    print(render_sacct(without_whisk))
    print(f"prime mean-wait delta: {comparison['mean_wait_delta']:.2f} s")
    benchmark.extra_info.update({k: round(v, 3) for k, v in comparison.items()})

    # Same number of prime jobs ran on both sides.
    assert with_whisk["main"].jobs_total == without_whisk["main"].jobs_total
    # The prime workload's added mean wait stays far below the grace period
    # (the paper claims "no penalty"; drains add seconds at most).
    assert comparison["mean_wait_delta"] <= 30.0
    # And the whisk side actually harvested something.
    assert with_whisk.get("whisk") is not None
    assert with_whisk["whisk"].node_hours > 0
