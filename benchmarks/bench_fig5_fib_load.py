"""Figs 5b/5c + Sec. V-C (fib side): responsiveness under constant load.

Paper anchors (fib day, 10 QPS × 100 sleep functions): 95.29% of requests
accepted (4.71% → 503), 95.19% of accepted succeed, median Gatling
response 865 ms.
"""

import numpy as np

from repro.analysis.metrics import cdf
from repro.experiments.day import DayConfig, run_day
from repro.hpcwhisk.config import SupplyModel


def test_fig5b_fib_queries_and_responsiveness(benchmark, kernel_stats, scale):
    config = DayConfig(
        model=SupplyModel.FIB,
        seed=317,
        horizon=scale["day"],
        num_nodes=scale["day_nodes"],
        with_load=True,
    )
    result = benchmark.pedantic(run_day, args=(config,), rounds=1, iterations=1)
    report = result.gatling
    print()
    print(result.render())
    benchmark.extra_info.update(
        {
            "requests": report.total,
            "accepted_share": round(report.invoked_share, 4),
            "success_of_accepted": round(report.success_share_of_invoked, 4),
            "median_response_ms": round(report.response_time_percentile(50) * 1000, 1),
        }
    )

    # Sec. V-C anchors (fib): nearly everything accepted and successful.
    assert report.invoked_share >= 0.90
    assert report.success_share_of_invoked >= 0.90
    median_ms = report.response_time_percentile(50) * 1000
    assert 500 <= median_ms <= 1400  # paper: 865 ms

    # Fig 5b: per-minute series sums to the request count.
    series = result.per_minute
    total = sum(int(s.sum()) for s in series.values())
    assert total == report.total
    # Load was steady at ~10 QPS → ~600/min in served minutes.
    busy_minutes = series["successful"] + series["failed"] + series["lost"] + series["rejected"]
    assert np.median(busy_minutes) >= 0.9 * config.qps * 60

    # Fig 5c: CDFs of idle / whisk / available counts.
    for key in ("idle_counts", "whisk_counts", "available_counts"):
        values, probabilities = cdf(result.series[key])
        assert probabilities[-1] == 1.0
    # Available dominates whisk pointwise in distribution.
    assert result.series["available_counts"].mean() >= result.series["whisk_counts"].mean()
