#!/usr/bin/env python
"""Build the optional mypyc extension for the kernel hot loop.

``repro.sim._hotloop`` holds the per-event drain loop behind
``Environment.run``.  It is plain Python and runs interpreted by default;
this script compiles it with mypyc so the built extension shadows the
``.py`` source on import and ``repro.sim.COMPILED_LOOP`` flips to True —
no code change, no flag, just faster event dispatch.  Semantics are
byte-identical by construction (the compiled module is the same source),
and CI proves it by re-running the golden-drift gate under the build.

Usage::

    python tools/build_compiled.py            # build in-place (src/repro/sim/)
    python tools/build_compiled.py --check    # exit 0 iff the compiled loop loads
    python tools/build_compiled.py --clean    # remove built artifacts

The build is strictly optional: when mypyc is not installed (it is not a
runtime dependency) the script prints a notice and exits 0, leaving the
pure-Python loop in use.  ``REPRO_COMPILED=0`` at runtime bypasses an
installed build without removing it.
"""

from __future__ import annotations

import glob
import os
import shutil
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SIM_DIR = os.path.join(ROOT, "src", "repro", "sim")
HOTLOOP = os.path.join(SIM_DIR, "_hotloop.py")


def build() -> int:
    try:
        from mypyc.build import mypycify
        from setuptools import setup
    except ImportError:
        print(
            "build_compiled: mypyc not available; skipping build "
            "(the pure-Python hot loop stays in use)"
        )
        return 0

    os.chdir(ROOT)
    # mypycify resolves the module name from the package layout (src/ is
    # the source root), so the extension builds as repro.sim._hotloop
    # and --inplace drops it next to the .py it shadows.
    setup(
        name="repro-hotloop",
        ext_modules=mypycify([os.path.relpath(HOTLOOP, ROOT)], opt_level="3"),
        script_args=["build_ext", "--inplace"],
    )
    return check()


def check() -> int:
    """Exit 0 iff a fresh interpreter picks up the compiled loop."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    env.pop("REPRO_COMPILED", None)
    code = (
        "import sys, repro.sim as s;"
        "print('hot loop:', 'compiled' if s.COMPILED_LOOP else 'pure-python');"
        "sys.exit(0 if s.COMPILED_LOOP else 1)"
    )
    return subprocess.call([sys.executable, "-c", code], env=env)


def clean() -> int:
    removed = []
    for pattern in ("_hotloop.*.so", "_hotloop.*.pyd"):
        removed.extend(glob.glob(os.path.join(SIM_DIR, pattern)))
    # mypyc also emits a shared runtime library at the source root
    for prefix in (os.path.join(ROOT, "src"), ROOT):
        removed.extend(glob.glob(os.path.join(prefix, "*__mypyc.*.so")))
        removed.extend(glob.glob(os.path.join(prefix, "*__mypyc.*.pyd")))
    for path in removed:
        os.remove(path)
        print(f"build_compiled: removed {os.path.relpath(path, ROOT)}")
    build_dir = os.path.join(ROOT, "build")
    if os.path.isdir(build_dir):
        shutil.rmtree(build_dir)
        print("build_compiled: removed build/")
    if not removed:
        print("build_compiled: nothing to clean")
    return 0


def main(argv: list) -> int:
    args = set(argv)
    if "--clean" in args:
        return clean()
    if "--check" in args:
        return check()
    return build()


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
