"""Canonical provenance stamps shared by every result emitter.

Before the results warehouse, each subsystem that persisted JSON rolled
its own identity story: bench records had a schema tag but no spec
hash, scenario/matrix/sweep results had neither, and cross-run tooling
could not tell "same configuration, new code" from "different
configuration".  This module is the one shared helper:

* :func:`spec_hash` — a short, canonical SHA-256 over a JSON-able
  identity payload (sorted keys, compact separators), stable across
  processes, Python versions, and dict insertion order;
* :func:`git_rev` — the working tree's revision (``REPRO_GIT_REV``
  overrides; the subprocess lookup is cached per process);
* the ``repro-*/1`` schema tags stamped into every emitted JSON payload
  so the warehouse ingester can key on them.

Everything here is dependency-free so any layer may import it.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
from functools import lru_cache
from typing import Any, Mapping, Optional

#: schema tag stamped into ``ScenarioResult.to_dict()`` JSON
RESULT_SCHEMA = "repro-result/1"
#: schema tag stamped into ``SweepResult.to_dict()`` JSON
SWEEP_SCHEMA = "repro-sweep/1"
#: schema tag stamped into ``MatrixResult.to_dict()`` JSON
MATRIX_SCHEMA = "repro-matrix/1"

#: environment override for :func:`git_rev` (CI sets it; tests pin it)
GIT_REV_ENV = "REPRO_GIT_REV"


def canonical_json(payload: Any) -> str:
    """Deterministic compact JSON: sorted keys, no whitespace.

    Non-JSON values fall back to ``str`` so hashing never raises on an
    enum or a Path smuggled into a params mapping.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def spec_hash(payload: Mapping[str, Any]) -> str:
    """16-hex-char canonical hash of an identity payload.

    The shared replacement for the per-subsystem ad-hoc hashing this
    repo used to do: every emitter builds a plain mapping of whatever
    identifies its configuration (scenario name + resolved params,
    bench name + preset, sweep grid…) and stamps the digest.  Two runs
    share a hash exactly when their identity payloads are canonically
    equal.
    """
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()[:16]


@lru_cache(maxsize=1)
def _git_rev_from_worktree() -> Optional[str]:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def git_rev() -> Optional[str]:
    """The current revision label, or None outside a git checkout.

    ``REPRO_GIT_REV`` (when set) wins — it is how CI stamps the exact
    commit under test and how tests pin deterministic provenance; an
    empty value means "no revision".  The subprocess fallback is cached
    for the life of the process.
    """
    env = os.environ.get(GIT_REV_ENV)
    if env is not None:
        return env.strip() or None
    return _git_rev_from_worktree()
