"""Sharded federated simulation: one kernel process per member.

See :mod:`repro.shard.runner` for the execution model (conservative
time-window synchronization at the federation-router boundary).
"""

from repro.shard.runner import (
    COORDINATOR_PROBES,
    MEMBER_LOCAL_WORKLOADS,
    run_sharded,
)

__all__ = ["COORDINATOR_PROBES", "MEMBER_LOCAL_WORKLOADS", "run_sharded"]
