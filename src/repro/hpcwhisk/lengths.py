"""Pilot-job length sets (Table I, Sec. IV-B).

The backfill scheduler operates on 2-minute slots over a 120-minute
window, so only even minute counts in [2, 120] are considered.  Six
candidate sets are compared in the paper:

* **A1–A3** — Fibonacci-like progressions: replacing two shorter jobs by
  one longer job saves one warm-up;
* **B** — powers of two: risks disproportionately many jobs when an idle
  window is slightly shorter than a member;
* **C1** — the ten shortest slot multiples (2..20 min);
* **C2** — every slot multiple (2, 4, …, 120) — the idealized granularity
  the *var* model's flexible jobs can achieve.

The paper selects A1 for the fib experiment and C2 (as the var model's
effective menu) for the var experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class JobLengthSet:
    """A named set of pilot-job lengths, stored in minutes."""

    name: str
    minutes: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.minutes:
            raise ValueError("length set cannot be empty")
        if any(m <= 0 or m % 2 for m in self.minutes):
            raise ValueError("lengths must be positive even minute counts")
        if list(self.minutes) != sorted(set(self.minutes)):
            raise ValueError("lengths must be strictly increasing")

    @property
    def seconds(self) -> Tuple[float, ...]:
        return tuple(60.0 * m for m in self.minutes)

    @property
    def shortest(self) -> int:
        return self.minutes[0]

    @property
    def longest(self) -> int:
        return self.minutes[-1]

    def greedy_pack(self, window_minutes: float) -> list[int]:
        """Longest-first greedy packing of a window (the Table I simulator:
        a 21-minute window packs A1 as [14, 6], leaving 1 minute)."""
        remaining = window_minutes
        packed: list[int] = []
        for length in reversed(self.minutes):
            while remaining >= length:
                packed.append(length)
                remaining -= length
        return packed


SET_A1 = JobLengthSet("A1", (2, 4, 6, 8, 14, 22, 34, 56, 90))
SET_A2 = JobLengthSet("A2", (2, 4, 8, 12, 20, 34, 54, 88))
SET_A3 = JobLengthSet("A3", (2, 4, 6, 10, 16, 26, 42, 68, 110))
SET_B = JobLengthSet("B", (2, 4, 8, 16, 32, 64))
SET_C1 = JobLengthSet("C1", (2, 4, 6, 8, 10, 12, 14, 16, 18, 20))
SET_C2 = JobLengthSet("C2", tuple(range(2, 121, 2)))

JOB_LENGTH_SETS: Dict[str, JobLengthSet] = {
    s.name: s for s in (SET_A1, SET_A2, SET_A3, SET_B, SET_C1, SET_C2)
}
