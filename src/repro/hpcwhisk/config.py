"""HPC-Whisk configuration."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.faas.config import FaaSConfig
from repro.hpcwhisk.lengths import SET_A1, JobLengthSet


class SupplyModel(enum.Enum):
    """The two pilot-job supply models of Sec. III-D."""

    FIB = "fib"
    VAR = "var"


@dataclass
class HPCWhiskConfig:
    """Everything the HPC-Whisk layer needs to know."""

    #: which supply model the job manager runs
    supply_model: SupplyModel = SupplyModel.FIB
    #: fixed lengths for the fib model
    length_set: JobLengthSet = field(default_factory=lambda: SET_A1)
    #: jobs kept queued per length (fib): "10 jobs of each length"
    queue_per_length: int = 10
    #: flexible jobs kept queued (var): "100 such flexible jobs"
    var_queue_depth: int = 100
    #: flexible job bounds (var): --time-min 2 min, --time 120 min
    var_time_min: float = 120.0
    var_time_max: float = 7200.0
    #: queue replenishment interval: "in 15-second intervals"
    replenish_interval: float = 15.0
    #: hard cap on simultaneously queued pilot jobs: "never exceeds 100"
    max_queued: int = 100
    #: the Slurm partition pilot jobs are submitted to
    partition: str = "whisk"
    #: FaaS middleware settings used by the invokers the pilots start
    faas: FaaSConfig = field(default_factory=FaaSConfig)
    #: root seed offset for pilot-local randomness
    seed: int = 0
    #: zero-arg factory building a fresh feedback controller per member
    #: (see :mod:`repro.supply`); ``None`` keeps the classic
    #: :attr:`supply_model` fib/var managers
    policy_factory: Optional[Callable[[], object]] = None

    def __post_init__(self) -> None:
        if self.queue_per_length < 1 or self.var_queue_depth < 1:
            raise ValueError("queue depths must be positive")
        if self.replenish_interval <= 0:
            raise ValueError("replenish_interval must be positive")
        if not (0 < self.var_time_min <= self.var_time_max):
            raise ValueError("invalid var time bounds")
        if self.max_queued < 1:
            raise ValueError("max_queued must be positive")
