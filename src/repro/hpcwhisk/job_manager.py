"""The fib and var pilot-job supply managers (Sec. III-D-b).

Both managers are the shell-script equivalent from the paper: an external
process on the head node that watches the queue through the normal job
management commands and tops it up every 15 seconds, creating new jobs
only to replace ones that have already started.  Neither exceeds 100
queued jobs, so Slurm's scheduler is never overloaded.

* :class:`FibJobManager` keeps 10 *fixed-length* jobs queued per length of
  its :class:`~repro.hpcwhisk.lengths.JobLengthSet`.  Priority within the
  tier is proportional to length, forcing Slurm into longest-first greedy
  placement.
* :class:`VarJobManager` keeps 100 *flexible* jobs queued
  (``--time-min 2 --time 120``); Slurm decides each granted duration
  during scheduling.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.cluster.job import Job, JobSpec
from repro.cluster.slurmctld import SlurmController
from repro.hpcwhisk.config import HPCWhiskConfig
from repro.sim import Environment, Interrupt

_submission_ids = itertools.count(1)


@dataclass
class ManagerStats:
    """Submission accounting for a supply manager."""

    submitted: int = 0
    replenish_rounds: int = 0
    #: queue depth observed at each round (diagnostics)
    queue_depths: List[int] = field(default_factory=list)


class _BaseJobManager:
    """Common replenishment loop."""

    def __init__(
        self,
        env: Environment,
        controller: SlurmController,
        config: HPCWhiskConfig,
        body_factory: Callable,
    ) -> None:
        self.env = env
        self.controller = controller
        self.config = config
        self.body_factory = body_factory
        self.stats = ManagerStats()
        self._proc = env.process(self._run())

    def stop(self) -> None:
        if self._proc.is_alive:
            self._proc.interrupt("stop")

    # -- to implement -----------------------------------------------------
    def _desired_submissions(self, pending: List[Job]) -> List[JobSpec]:
        raise NotImplementedError

    # -- loop ---------------------------------------------------------------
    def _run(self):
        env = self.env
        try:
            while True:
                pending = self.controller.pending_jobs(partition=self.config.partition)
                self.stats.queue_depths.append(len(pending))
                budget = self.config.max_queued - len(pending)
                for spec in self._desired_submissions(pending)[: max(0, budget)]:
                    self.controller.submit(spec)
                    self.stats.submitted += 1
                self.stats.replenish_rounds += 1
                yield env.timeout(self.config.replenish_interval)
        except Interrupt:
            return


class FibJobManager(_BaseJobManager):
    """Fixed-length supply: 10 queued jobs of each length."""

    def _desired_submissions(self, pending: List[Job]) -> List[JobSpec]:
        config = self.config
        counts: Dict[float, int] = {seconds: 0 for seconds in config.length_set.seconds}
        for job in pending:
            counts[job.spec.time_limit] = counts.get(job.spec.time_limit, 0) + 1
        specs: List[JobSpec] = []
        # Longest first so that, under the shared queue cap, long jobs
        # (highest priority anyway) are never crowded out.
        for seconds in sorted(config.length_set.seconds, reverse=True):
            deficit = config.queue_per_length - counts.get(seconds, 0)
            for _ in range(max(0, deficit)):
                specs.append(self._spec(seconds))
        return specs

    def _spec(self, seconds: float) -> JobSpec:
        return JobSpec(
            name=f"whisk-fib-{next(_submission_ids):07d}",
            num_nodes=1,
            time_limit=seconds,
            partition=self.config.partition,
            # "The higher the execution time, the higher the job's
            # priority within its priority tier."
            priority=seconds,
            body=self.body_factory(),
            user="hpc-whisk",
        )


class VarJobManager(_BaseJobManager):
    """Flexible-length supply: 100 queued ``--time-min/--time`` jobs."""

    def _desired_submissions(self, pending: List[Job]) -> List[JobSpec]:
        config = self.config
        deficit = config.var_queue_depth - len(pending)
        return [self._spec() for _ in range(max(0, deficit))]

    def _spec(self) -> JobSpec:
        return JobSpec(
            name=f"whisk-var-{next(_submission_ids):07d}",
            num_nodes=1,
            time_limit=self.config.var_time_max,
            time_min=self.config.var_time_min,
            partition=self.config.partition,
            body=self.body_factory(),
            user="hpc-whisk",
        )
