"""The shared pilot-job supply loop (Sec. III-D), policy-pluggable.

The paper's supply managers are external processes on the head node
that watch the queue through the normal job management commands and top
it up every 15 seconds, creating new jobs only to replace ones that
have already started.  None exceeds 100 queued jobs, so Slurm's
scheduler is never overloaded.

:class:`PolicyJobManager` hosts that loop once for every strategy: each
round it assembles a pure :class:`~repro.supply.base.SupplyObservation`
(queue, cluster, and middleware state), asks its
:class:`~repro.supply.base.SupplyPolicy` for a
:class:`~repro.supply.base.SubmissionPlan`, and submits the plan's
requests until the round budget (``max_queued`` minus the current
queue depth) runs out.

:class:`FibJobManager` and :class:`VarJobManager` are the paper's two
strategies pinned to their policies (:class:`~repro.supply.policies.FibPolicy`
/ :class:`~repro.supply.policies.VarPolicy`) — same constructor
signature as always, byte-identical behaviour (the golden-trace suite
enforces this).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, List

from repro.cluster.job import JobSpec
from repro.cluster.slurmctld import SlurmController
from repro.hpcwhisk.config import HPCWhiskConfig
from repro.sim import Environment, Interrupt
from repro.supply.base import PilotRequest, SupplyObservation, SupplyPolicy
from repro.supply.policies import FibPolicy, VarPolicy

_submission_ids = itertools.count(1)


@dataclass
class ManagerStats:
    """Submission accounting for a supply manager."""

    submitted: int = 0
    replenish_rounds: int = 0
    #: queue depth observed at each round (diagnostics)
    queue_depths: List[int] = field(default_factory=list)
    #: requests the policy asked for, before budget truncation
    requested: int = 0
    #: requests dropped by the per-round budget (queue-cap pressure)
    truncated: int = 0

    @property
    def mean_queue_depth(self) -> float:
        if not self.queue_depths:
            return 0.0
        return sum(self.queue_depths) / len(self.queue_depths)


class PolicyJobManager:
    """Common replenishment loop: observe -> plan -> submit (budgeted)."""

    def __init__(
        self,
        env: Environment,
        controller: SlurmController,
        config: HPCWhiskConfig,
        body_factory: Callable,
        policy: SupplyPolicy,
        *,
        faas_controller=None,
        broker=None,
    ) -> None:
        self.env = env
        self.controller = controller
        self.config = config
        self.body_factory = body_factory
        self.policy = policy
        #: the FaaS middleware handles this member's policy may observe
        #: (None for reduced stacks — middleware fields read as 0)
        self.faas_controller = faas_controller
        self.broker = broker
        self.stats = ManagerStats()
        self._proc = env.process(self._run())

    def stop(self) -> None:
        if self._proc.is_alive:
            self._proc.interrupt("stop")

    # -- observation (pure reads; never perturbs the simulation) ----------
    def _middleware_state(self) -> tuple:
        """``(healthy, inflight, buffered, fastlane)`` for this member.

        The first three are **member-scoped** so federated feedback
        loops stay isolated: healthy invokers, in-flight activations,
        and buffered invoker-topic messages all count only this
        member's workers (capacity one member holds never masks another
        member's demand signal, and vice versa).  ``fastlane`` is the
        one shared term — republished demand no member owns yet, which
        any member could absorb — and is kept separate so the
        observation's member-scoped arithmetic never mixes scopes.  For
        single-cluster systems member scope *is* fleet scope.
        """
        faas = self.faas_controller
        if faas is None:
            return 0, 0, 0, 0
        cluster_id = self.controller.config.cluster_id or None
        healthy = len(faas.healthy_invokers(cluster=cluster_id))
        inflight = faas.inflight_count_for(cluster_id)
        buffered = 0
        fastlane = 0
        if self.broker is not None:
            from repro.faas.broker import FASTLANE_TOPIC

            fastlane = self.broker.peek_depth(FASTLANE_TOPIC)
            for invoker_id, record in faas.invokers.items():
                if cluster_id is None or record.cluster_id == cluster_id:
                    buffered += self.broker.peek_depth(
                        faas.invoker_topic(invoker_id)
                    )
        return healthy, inflight, buffered, fastlane

    def _observe(self, pending: list, budget: int) -> SupplyObservation:
        slurm = self.controller
        healthy, inflight, buffered, fastlane = self._middleware_state()
        return SupplyObservation(
            now=self.env.now,
            round_index=self.stats.replenish_rounds,
            pending=tuple(pending),
            queue_depth=len(pending),
            budget=budget,
            running_pilots=len(
                slurm.running_jobs(partition=self.config.partition)
            ),
            idle_nodes=len(slurm.idle_node_names()),
            total_nodes=slurm.config.num_nodes,
            healthy_invokers=healthy,
            inflight_activations=inflight,
            buffered_activations=buffered,
            fastlane_activations=fastlane,
        )

    # -- submission --------------------------------------------------------
    def _spec(self, request: PilotRequest) -> JobSpec:
        kwargs = {}
        if request.time_min is not None:
            kwargs["time_min"] = request.time_min
        if request.priority is not None:
            kwargs["priority"] = request.priority
        return JobSpec(
            name=f"whisk-{self.policy.name}-{next(_submission_ids):07d}",
            num_nodes=1,
            time_limit=request.seconds,
            partition=self.config.partition,
            body=self.body_factory(),
            user="hpc-whisk",
            **kwargs,
        )

    # -- loop ---------------------------------------------------------------
    def _run(self):
        env = self.env
        stats = self.stats
        try:
            while True:
                pending = self.controller.pending_jobs(partition=self.config.partition)
                stats.queue_depths.append(len(pending))
                budget = max(0, self.config.max_queued - len(pending))
                plan = self.policy.observe(self._observe(pending, budget))
                stats.requested += len(plan.requests)
                stats.truncated += max(0, len(plan.requests) - budget)
                for request in plan.requests[:budget]:
                    self.controller.submit(self._spec(request))
                    stats.submitted += 1
                stats.replenish_rounds += 1
                yield env.timeout(self.config.replenish_interval)
        except Interrupt:
            return


class FibJobManager(PolicyJobManager):
    """Fixed-length supply: 10 queued jobs of each length (Sec. III-D fib)."""

    def __init__(
        self,
        env: Environment,
        controller: SlurmController,
        config: HPCWhiskConfig,
        body_factory: Callable,
        **kwargs,
    ) -> None:
        super().__init__(
            env,
            controller,
            config,
            body_factory,
            FibPolicy(config.length_set, config.queue_per_length),
            **kwargs,
        )


class VarJobManager(PolicyJobManager):
    """Flexible-length supply: 100 queued ``--time-min/--time`` jobs."""

    def __init__(
        self,
        env: Environment,
        controller: SlurmController,
        config: HPCWhiskConfig,
        body_factory: Callable,
        **kwargs,
    ) -> None:
        super().__init__(
            env,
            controller,
            config,
            body_factory,
            VarPolicy(
                depth=config.var_queue_depth,
                time_min=config.var_time_min,
                time_max=config.var_time_max,
            ),
            **kwargs,
        )


#: historical name for the shared loop (deploy/type annotations)
_BaseJobManager = PolicyJobManager


def reset_submission_ids() -> None:
    """Restart pilot-submission numbering (test isolation)."""
    global _submission_ids
    _submission_ids = itertools.count(1)
