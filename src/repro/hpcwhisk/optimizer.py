"""Job-length-set optimization via the coverage simulator (Sec. IV-B).

The paper: *"We use our simulator to optimize the set of lengths that
maximizes the coverage of the idleness periods with healthy OpenWhisk
workers"* — balancing two effects: short jobs fit everywhere but waste
warm-ups; long jobs amortize warm-ups but are hard to place.

This module generalizes the paper's hand-picked candidates into parametric
*families* and searches them against a trace:

* Fibonacci-like: ``next = prev + prev2`` from seeds (a, b), floored to
  even minutes (generates A1-style sets);
* geometric: ratios r ∈ {1.5, 2, 3} (generates the set-B shape);
* arithmetic: steps d ∈ {2, 4, …} (generates the C-style slot multiples).

The optimizer scores each candidate by the ready share of a clairvoyant
packing and returns a ranking — the reproducible version of how the
authors arrived at A1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.hpcwhisk.lengths import JobLengthSet

if TYPE_CHECKING:  # pragma: no cover - break the analysis<->hpcwhisk cycle
    from repro.analysis.coverage import CoverageResult
    from repro.workloads.idleness import IdlenessTrace


def _floor_even(value: float) -> int:
    return max(2, int(value) // 2 * 2)


def fibonacci_family(
    max_minutes: int = 120, seeds: Sequence[Tuple[int, int]] = ((2, 4), (2, 6), (4, 6))
) -> List[JobLengthSet]:
    """Fibonacci-like progressions from different seed pairs."""
    sets = []
    for a, b in seeds:
        lengths = [a, b]
        while True:
            nxt = _floor_even(lengths[-1] + lengths[-2])
            if nxt > max_minutes or nxt <= lengths[-1]:
                break
            lengths.append(nxt)
        sets.append(JobLengthSet(f"fib({a},{b})", tuple(lengths)))
    return sets


def geometric_family(
    max_minutes: int = 120, ratios: Sequence[float] = (1.5, 2.0, 3.0)
) -> List[JobLengthSet]:
    """Geometric progressions starting at 2 minutes."""
    sets = []
    for ratio in ratios:
        lengths: List[int] = [2]
        while True:
            nxt = _floor_even(lengths[-1] * ratio)
            if nxt > max_minutes or nxt <= lengths[-1]:
                break
            lengths.append(nxt)
        sets.append(JobLengthSet(f"geo({ratio:g})", tuple(lengths)))
    return sets


def arithmetic_family(
    max_minutes: int = 120, steps: Sequence[int] = (2, 6, 12)
) -> List[JobLengthSet]:
    """Arithmetic progressions of even steps starting at 2 minutes."""
    sets = []
    for step in steps:
        if step % 2:
            raise ValueError("steps must be even (2-minute slots)")
        lengths = tuple(range(2, max_minutes + 1, step))
        sets.append(JobLengthSet(f"ari({step})", lengths))
    return sets


def default_candidates(max_minutes: int = 120) -> List[JobLengthSet]:
    return (
        fibonacci_family(max_minutes)
        + geometric_family(max_minutes)
        + arithmetic_family(max_minutes)
    )


@dataclass
class OptimizationResult:
    """Ranked candidates with their coverage results."""

    ranking: List[Tuple[JobLengthSet, "CoverageResult"]] = field(default_factory=list)

    @property
    def best(self) -> JobLengthSet:
        return self.ranking[0][0]

    def render(self) -> str:
        lines = [
            f"{'candidate':<12} {'#lengths':>8} {'# jobs':>8} {'warm up':>8} "
            f"{'ready':>8} {'non-avail':>9}"
        ]
        for length_set, coverage in self.ranking:
            lines.append(
                f"{length_set.name:<12} {len(length_set.minutes):>8d} "
                f"{coverage.num_jobs:>8d} {coverage.warmup_share * 100:>7.2f}% "
                f"{coverage.ready_share * 100:>7.2f}% "
                f"{coverage.non_availability * 100:>8.2f}%"
            )
        return "\n".join(lines)


class LengthSetOptimizer:
    """Searches candidate length sets against an idleness trace."""

    def __init__(
        self,
        warmup: float = 20.0,
        candidates: Optional[Sequence[JobLengthSet]] = None,
    ) -> None:
        from repro.analysis.coverage import CoverageSimulator

        self.simulator = CoverageSimulator(warmup=warmup)
        self.candidates = list(candidates) if candidates is not None else default_candidates()

    def optimize(self, trace: "IdlenessTrace") -> OptimizationResult:
        """Rank all candidates by ready share (descending)."""
        intervals: Dict[str, List[Tuple[float, float]]] = {}
        for period in trace.periods:
            intervals.setdefault(period.node, []).append((period.start, period.end))
        scored = [
            (candidate, self.simulator.run(intervals, candidate, horizon=trace.horizon))
            for candidate in self.candidates
        ]
        scored.sort(key=lambda item: item[1].ready_share, reverse=True)
        return OptimizationResult(ranking=scored)
