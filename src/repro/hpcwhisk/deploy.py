"""One-call assembly of a complete HPC-Whisk system.

:func:`build_system` wires together a simulated cluster, the message
broker, the (off-cluster) OpenWhisk controller, the pilot-job body
factory, and the configured supply manager — everything the experiments
and examples need, with one root seed controlling all randomness.

The composable layer in :mod:`repro.api` assembles stacks through this
same function, so a hand-written ``build_system`` call and a declarative
``Stack`` produce byte-identical simulations.  Two knobs exist for
reduced stacks: ``with_middleware=False`` builds a bare cluster (no
broker/controller — the non-invasiveness baseline), and
``with_manager=False`` builds the middleware without a pilot supply
(static invoker fleets attach their own workers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster.partition import default_partitions
from repro.cluster.slurmctld import SlurmConfig, SlurmController
from repro.faas.broker import Broker
from repro.faas.client import Alg1Wrapper, CommercialCloud, FaaSClient
from repro.faas.controller import Controller
from repro.hpcwhisk.config import HPCWhiskConfig, SupplyModel
from repro.hpcwhisk.job_manager import FibJobManager, VarJobManager, _BaseJobManager
from repro.hpcwhisk.pilot import PilotTimeline, make_pilot_body
from repro.sim import Environment, RandomStreams


@dataclass
class HPCWhiskSystem:
    """Handles to every component of an assembled deployment.

    Reduced stacks leave the parts they skipped as ``None``: a bare
    cluster has no broker/controller/client, and a manager-less stack
    (static invoker fleet) has ``manager=None``.
    """

    env: Environment
    streams: RandomStreams
    slurm: SlurmController
    broker: Optional[Broker]
    controller: Optional[Controller]
    client: Optional[FaaSClient]
    commercial: Optional[CommercialCloud]
    wrapped_client: Optional[Alg1Wrapper]
    manager: Optional[_BaseJobManager]
    config: HPCWhiskConfig
    #: every pilot's lifecycle record (OW-level log source)
    pilot_timelines: List[PilotTimeline] = field(default_factory=list)
    #: statically-attached invokers (supply "static"; empty for pilots)
    invokers: List = field(default_factory=list)

    def run(self, until: float) -> None:
        """Advance the simulation to *until* seconds."""
        self.env.run(until=until)


def build_system(
    config: Optional[HPCWhiskConfig] = None,
    slurm_config: Optional[SlurmConfig] = None,
    seed: int = 0,
    env: Optional[Environment] = None,
    *,
    load_balancer=None,
    with_middleware: bool = True,
    with_manager: bool = True,
) -> HPCWhiskSystem:
    """Assemble a full HPC-Whisk deployment on a fresh simulation."""
    config = config or HPCWhiskConfig()
    env = env or Environment()
    streams = RandomStreams(seed=seed)

    slurm = SlurmController(
        env,
        slurm_config or SlurmConfig(),
        partitions=default_partitions(),
        rng=streams.stream("slurm"),
    )
    if not with_middleware:
        return HPCWhiskSystem(
            env=env,
            streams=streams,
            slurm=slurm,
            broker=None,
            controller=None,
            client=None,
            commercial=None,
            wrapped_client=None,
            manager=None,
            config=config,
        )

    broker = Broker(env, publish_latency=config.faas.publish_latency)
    controller = Controller(
        env,
        broker,
        config=config.faas,
        rng=streams.stream("controller"),
        load_balancer=load_balancer,
    )
    client = FaaSClient(controller)
    commercial = CommercialCloud(env, streams.stream("commercial"))
    wrapped = Alg1Wrapper(client, commercial)

    timelines: List[PilotTimeline] = []
    manager: Optional[_BaseJobManager] = None
    if with_manager:
        pilot_rng = streams.stream("pilots")

        def body_factory():
            return make_pilot_body(controller, broker, config, pilot_rng, timelines)

        if config.supply_model is SupplyModel.FIB:
            manager = FibJobManager(env, slurm, config, body_factory)
        else:
            manager = VarJobManager(env, slurm, config, body_factory)

    return HPCWhiskSystem(
        env=env,
        streams=streams,
        slurm=slurm,
        broker=broker,
        controller=controller,
        client=client,
        commercial=commercial,
        wrapped_client=wrapped,
        manager=manager,
        config=config,
        pilot_timelines=timelines,
    )
