"""One-call assembly of a complete HPC-Whisk system — or a federation.

:func:`build_federation` wires N simulated clusters under one control
plane: one :class:`~repro.cluster.slurmctld.SlurmController` per member,
one shared message broker + (off-cluster) OpenWhisk controller, one
supply manager and pilot fleet per member, and an optional
:class:`~repro.faas.router.FederationRouter` steering activations
across members.  :func:`build_system` is the single-cluster case — it
delegates to :func:`build_federation` with one member, and the N=1
assembly is byte-identical to the historical single-cluster wiring
(same named random streams, same process creation order; the golden
trace suite enforces this).

The composable layer in :mod:`repro.api` assembles stacks through these
same functions, so a hand-written ``build_system`` call and a
declarative ``Stack`` produce byte-identical simulations.  Two knobs
exist for reduced stacks: ``with_middleware=False`` builds bare
clusters (no broker/controller — the non-invasiveness baseline), and
``with_manager=False`` builds the middleware without a pilot supply
(static invoker fleets attach their own workers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.federation import Federation
from repro.cluster.partition import default_partitions
from repro.cluster.slurmctld import SlurmConfig, SlurmController
from repro.faas.broker import Broker
from repro.faas.client import Alg1Wrapper, CommercialCloud, FaaSClient
from repro.faas.controller import Controller
from repro.faas.router import FederationRouter
from repro.hpcwhisk.config import HPCWhiskConfig, SupplyModel
from repro.hpcwhisk.job_manager import (
    FibJobManager,
    PolicyJobManager,
    VarJobManager,
    _BaseJobManager,
)
from repro.hpcwhisk.pilot import PilotTimeline, make_pilot_body
from repro.sim import Environment, RandomStreams


@dataclass
class HPCWhiskSystem:
    """Handles to every component of an assembled deployment.

    Reduced stacks leave the parts they skipped as ``None``: a bare
    cluster has no broker/controller/client, and a manager-less stack
    (static invoker fleet) has ``manager=None``.  ``slurm``/``manager``
    always point at the *primary* (first-declared) member; federated
    deployments additionally expose every member through ``clusters``,
    ``managers``, and the :class:`~repro.cluster.federation.Federation`
    facade.
    """

    env: Environment
    streams: RandomStreams
    slurm: SlurmController
    broker: Optional[Broker]
    controller: Optional[Controller]
    client: Optional[FaaSClient]
    commercial: Optional[CommercialCloud]
    wrapped_client: Optional[Alg1Wrapper]
    manager: Optional[_BaseJobManager]
    config: HPCWhiskConfig
    #: every pilot's lifecycle record (OW-level log source, all members)
    pilot_timelines: List[PilotTimeline] = field(default_factory=list)
    #: statically-attached invokers (supply "static"; empty for pilots)
    invokers: List = field(default_factory=list)
    #: all member clusters, keyed by cluster_id in declaration order
    clusters: Dict[str, SlurmController] = field(default_factory=dict)
    #: one supply manager per member (when ``with_manager``)
    managers: Dict[str, _BaseJobManager] = field(default_factory=dict)
    #: merged query/accounting facade over the member clusters
    federation: Optional[Federation] = None
    #: the cross-cluster routing policy (None = flat single-pool routing)
    router: Optional[FederationRouter] = None

    @property
    def is_federated(self) -> bool:
        return len(self.clusters) > 1

    def run(self, until: float) -> None:
        """Advance the simulation to *until* seconds."""
        self.env.run(until=until)


def _member_id(config: SlurmConfig, index: int) -> str:
    """Resolve a member's cluster id (explicit, or positional ``c<i>``)."""
    return config.cluster_id or f"c{index}"


def _stream_name(base: str, cluster_id: str, index: int) -> str:
    """Named-stream key for one member's component.

    The first member keeps the historical unsuffixed names, so an N=1
    federation consumes exactly the streams the single-cluster assembly
    always did (byte-identical goldens); later members get ``@<id>``
    suffixed substreams of the same root seed.
    """
    return base if index == 0 else f"{base}@{cluster_id}"


def build_federation(
    slurm_configs: Sequence[Optional[SlurmConfig]],
    config: Optional[HPCWhiskConfig] = None,
    seed: int = 0,
    env: Optional[Environment] = None,
    *,
    load_balancer=None,
    router: Optional[FederationRouter] = None,
    with_middleware: bool = True,
    with_manager: bool = True,
    shard_member_index: Optional[int] = None,
) -> HPCWhiskSystem:
    """Assemble N member clusters under one federated control plane.

    ``shard_member_index`` supports sharded execution (one process per
    federation member, :mod:`repro.shard`): a single-member build that
    stands in for member *i* of a larger federation consumes the very
    stream names member *i* would consume inside the unsharded
    federation (``slurm@<id>``, ``pilots@<id>``, …), so per-member
    dynamics are seed-identical across shard counts.
    """
    if not slurm_configs:
        raise ValueError("a federation needs at least one member SlurmConfig")
    if shard_member_index is not None and len(slurm_configs) != 1:
        raise ValueError(
            "shard_member_index applies to single-member (shard) builds; "
            f"got {len(slurm_configs)} members"
        )
    config = config or HPCWhiskConfig()
    env = env or Environment()
    streams = RandomStreams(seed=seed)

    clusters: Dict[str, SlurmController] = {}
    for index, slurm_config in enumerate(slurm_configs):
        slurm_config = slurm_config or SlurmConfig()
        cluster_id = _member_id(slurm_config, index)
        if cluster_id in clusters:
            raise ValueError(f"duplicate cluster_id {cluster_id!r} in federation")
        if slurm_config.cluster_id != cluster_id:
            from dataclasses import replace

            slurm_config = replace(slurm_config, cluster_id=cluster_id)
        name_index = index if shard_member_index is None else shard_member_index
        clusters[cluster_id] = SlurmController(
            env,
            slurm_config,
            partitions=default_partitions(),
            rng=streams.stream(_stream_name("slurm", cluster_id, name_index)),
        )
    member_ids = list(clusters)
    primary = clusters[member_ids[0]]
    federation = Federation(list(clusters.values()))

    if not with_middleware:
        if router is not None:
            raise ValueError("a router needs the FaaS middleware in the stack")
        return HPCWhiskSystem(
            env=env,
            streams=streams,
            slurm=primary,
            broker=None,
            controller=None,
            client=None,
            commercial=None,
            wrapped_client=None,
            manager=None,
            config=config,
            clusters=clusters,
            federation=federation,
        )

    # Sharded builds give each member its own middleware; suffix its
    # streams like any other member-local component so shard 0 stays
    # byte-identical to the historical single-cluster middleware.
    mw_index = shard_member_index if shard_member_index is not None else 0
    primary_id = member_ids[0]
    if router is not None:
        router.bind_rng(streams.stream(_stream_name("router", primary_id, mw_index)))
    broker = Broker(env, publish_latency=config.faas.publish_latency)
    controller = Controller(
        env,
        broker,
        config=config.faas,
        rng=streams.stream(_stream_name("controller", primary_id, mw_index)),
        load_balancer=load_balancer,
        router=router,
        cluster_order=member_ids,
    )
    client = FaaSClient(controller)
    commercial = CommercialCloud(
        env, streams.stream(_stream_name("commercial", primary_id, mw_index))
    )
    wrapped = Alg1Wrapper(client, commercial)

    timelines: List[PilotTimeline] = []
    managers: Dict[str, _BaseJobManager] = {}
    if with_manager:
        for index, (cluster_id, slurm) in enumerate(clusters.items()):
            name_index = index if shard_member_index is None else shard_member_index
            pilot_rng = streams.stream(
                _stream_name("pilots", cluster_id, name_index)
            )

            def body_factory(rng=pilot_rng, cid=cluster_id):
                return make_pilot_body(
                    controller, broker, config, rng, timelines, cluster_id=cid
                )

            manager_kwargs = dict(faas_controller=controller, broker=broker)
            if config.policy_factory is not None:
                # One fresh controller instance per member: policy state
                # (EWMA levels, PID integrators) never crosses clusters.
                managers[cluster_id] = PolicyJobManager(
                    env, slurm, config, body_factory,
                    config.policy_factory(), **manager_kwargs,
                )
            elif config.supply_model is SupplyModel.FIB:
                managers[cluster_id] = FibJobManager(
                    env, slurm, config, body_factory, **manager_kwargs
                )
            else:
                managers[cluster_id] = VarJobManager(
                    env, slurm, config, body_factory, **manager_kwargs
                )

    return HPCWhiskSystem(
        env=env,
        streams=streams,
        slurm=primary,
        broker=broker,
        controller=controller,
        client=client,
        commercial=commercial,
        wrapped_client=wrapped,
        manager=managers.get(member_ids[0]),
        config=config,
        pilot_timelines=timelines,
        clusters=clusters,
        managers=managers,
        federation=federation,
        router=router,
    )


def build_system(
    config: Optional[HPCWhiskConfig] = None,
    slurm_config: Optional[SlurmConfig] = None,
    seed: int = 0,
    env: Optional[Environment] = None,
    *,
    load_balancer=None,
    with_middleware: bool = True,
    with_manager: bool = True,
) -> HPCWhiskSystem:
    """Assemble a full single-cluster HPC-Whisk deployment (the N=1
    federation) on a fresh simulation."""
    return build_federation(
        [slurm_config],
        config=config,
        seed=seed,
        env=env,
        load_balancer=load_balancer,
        router=None,
        with_middleware=with_middleware,
        with_manager=with_manager,
    )
