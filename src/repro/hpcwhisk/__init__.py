"""HPC-Whisk: the FaaS-on-idle-HPC-nodes layer (the paper's contribution).

Glues the two substrates together:

* :mod:`repro.hpcwhisk.lengths` — the candidate pilot-job length sets of
  Table I (Fibonacci-like A1–A3, powers of two B, slot-multiples C1–C2);
* :mod:`repro.hpcwhisk.pilot` — the pilot-job body: warm up, start an
  OpenWhisk invoker, register, serve, and on SIGTERM run the
  drain/deregister handoff before SIGKILL;
* :mod:`repro.hpcwhisk.job_manager` — the shared supply loop
  (:class:`~repro.hpcwhisk.job_manager.PolicyJobManager`): a
  shell-script-like manager keeping the Slurm queue stocked with
  preemptible pilot jobs, replenishing every 15 s and never exceeding
  100 queued.  The decision rule is a pluggable
  :class:`~repro.supply.base.SupplyPolicy` — the paper's **fib** and
  **var** strategies plus the feedback controllers of
  :mod:`repro.supply`;
* :mod:`repro.hpcwhisk.deploy` — one-call assembly of a complete system
  (cluster + broker + controller + manager) for experiments and examples.
"""

from repro.hpcwhisk.config import HPCWhiskConfig, SupplyModel
from repro.hpcwhisk.lengths import (
    JOB_LENGTH_SETS,
    JobLengthSet,
    SET_A1,
    SET_A2,
    SET_A3,
    SET_B,
    SET_C1,
    SET_C2,
)
from repro.hpcwhisk.pilot import PilotTimeline, make_pilot_body
from repro.hpcwhisk.job_manager import (
    FibJobManager,
    PolicyJobManager,
    VarJobManager,
)
from repro.hpcwhisk.deploy import HPCWhiskSystem, build_federation, build_system
from repro.hpcwhisk.optimizer import LengthSetOptimizer, OptimizationResult

__all__ = [
    "FibJobManager",
    "HPCWhiskConfig",
    "HPCWhiskSystem",
    "JOB_LENGTH_SETS",
    "JobLengthSet",
    "LengthSetOptimizer",
    "OptimizationResult",
    "PilotTimeline",
    "PolicyJobManager",
    "SET_A1",
    "SET_A2",
    "SET_A3",
    "SET_B",
    "SET_C1",
    "SET_C2",
    "SupplyModel",
    "VarJobManager",
    "build_federation",
    "build_system",
    "make_pilot_body",
]
