"""The pilot-job body: an OpenWhisk invoker living inside a Slurm job.

Lifecycle (Sec. III-A/C):

1. **Warm-up** — booting the containerized invoker takes a while (measured
   on Prometheus: median 12.48 s, p95 26.50 s); during this phase the job
   occupies the node but serves nothing.
2. **Register + serve** — the invoker announces itself to the off-cluster
   controller and processes invocations (fast lane first).
3. **SIGTERM** (timeout at the granted limit, or eviction for a prime
   job) — the invoker drains: notifies the controller, republishes its
   buffer to the fast lane, interrupts interruptible executions, waits out
   the rest, deregisters.  All well before the SIGKILL backstop.

The body leaves a :class:`PilotTimeline` in ``job.result``; the analysis
layer combines these with Slurm's job log into the paper's
"OpenWhisk-level" per-second state accounting.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cluster.job import Job
from repro.cluster.slurmd import TermSignal
from repro.faas.broker import Broker
from repro.faas.controller import Controller
from repro.faas.invoker import Invoker, InvokerStats
from repro.hpcwhisk.config import HPCWhiskConfig
from repro.sim import Environment, Interrupt
from repro.workloads.distributions import WarmupModel

_pilot_ids = itertools.count(1)


@dataclass
class PilotTimeline:
    """Per-second lifecycle record of one pilot job."""

    invoker_id: str
    node: str
    job_id: int
    job_started_at: float
    #: federation member the pilot's node belongs to ("" = unfederated)
    cluster_id: str = ""
    #: invoker registered with the controller (healthy from here)
    healthy_at: Optional[float] = None
    #: SIGTERM received; drain begins (not healthy from here)
    sigterm_at: Optional[float] = None
    #: drain finished / job body returned
    finished_at: Optional[float] = None
    #: why the job ended ("timeout" | "preempt" | "killed" | "completed")
    end_reason: str = ""
    stats: Optional[InvokerStats] = None

    @property
    def warmup_duration(self) -> Optional[float]:
        if self.healthy_at is None:
            return None
        return self.healthy_at - self.job_started_at

    @property
    def healthy_duration(self) -> float:
        """Seconds the invoker was registered and accepting new work."""
        if self.healthy_at is None:
            return 0.0
        end = self.sigterm_at if self.sigterm_at is not None else self.finished_at
        if end is None:
            return 0.0
        return max(0.0, end - self.healthy_at)


def make_pilot_body(
    controller: Controller,
    broker: Broker,
    config: HPCWhiskConfig,
    rng: np.random.Generator,
    timelines: Optional[list] = None,
    cluster_id: str = "",
):
    """Build a job body callable for :class:`~repro.cluster.job.JobSpec`.

    ``timelines``, when given, collects every pilot's
    :class:`PilotTimeline` (the OW-level log source); ``cluster_id``
    tags the invokers these pilots start with their federation member.
    """
    warmup_model = WarmupModel(rng)

    def pilot_body(env: Environment, job: Job, nodes):
        node = nodes[0].name
        invoker_id = f"pilot-{next(_pilot_ids):06d}"
        timeline = PilotTimeline(
            invoker_id=invoker_id,
            node=node,
            job_id=job.job_id,
            job_started_at=env.now,
            cluster_id=cluster_id,
        )
        if timelines is not None:
            timelines.append(timeline)
        invoker: Optional[Invoker] = None
        try:
            # 1. Warm-up: Singularity image staging + invoker boot.
            yield env.timeout(warmup_model.sample())
            invoker = Invoker(
                env,
                invoker_id=invoker_id,
                node=node,
                broker=broker,
                registry=controller.registry,
                config=config.faas,
                rng=rng,
                runtime=None,  # default SingularityRuntime
                cluster_id=cluster_id,
            )
            yield from invoker.register()
            timeline.healthy_at = env.now
            # 2. Serve until SIGTERM.
            yield from invoker.serve()
            raise AssertionError("serve() only exits via interrupt")
        except Interrupt as interrupt:
            cause = interrupt.cause
            timeline.sigterm_at = env.now
            if isinstance(cause, TermSignal):
                timeline.end_reason = cause.reason
            else:  # pragma: no cover - unexpected interrupt kinds
                timeline.end_reason = str(cause)
            from repro.cluster.job import JobSignal

            if (
                isinstance(cause, TermSignal)
                and cause.signal is JobSignal.SIGKILL
            ):
                # Hard kill (node failure): no drain, no deregister —
                # the invoker just disappears mid-flight.
                if invoker is not None:
                    invoker.vanish()
                    timeline.stats = invoker.stats
                timeline.finished_at = env.now
                return timeline
            if invoker is not None and timeline.healthy_at is not None:
                try:
                    stats = yield from invoker.drain()
                    timeline.stats = stats
                except Interrupt:
                    # SIGKILL during drain: vanish immediately.
                    timeline.end_reason = "killed"
                    timeline.stats = invoker.stats
            elif invoker is not None:
                # SIGTERM while still registering: tear down quietly.
                invoker.abort()
                timeline.stats = invoker.stats
            timeline.finished_at = env.now
            return timeline
        # Unreachable in normal operation (serve never returns), but keep
        # the timeline consistent if a subclass changes that.
        timeline.finished_at = env.now  # pragma: no cover
        return timeline  # pragma: no cover

    return pilot_body


def reset_pilot_ids() -> None:
    """Restart pilot numbering (test isolation)."""
    global _pilot_ids
    _pilot_ids = itertools.count(1)
