"""Function (action) definitions and the registry.

A :class:`FunctionDef` describes a deployed action: its runtime image, how
long an invocation computes (a fixed value, a sampler, or a real Python
callable for the SeBS kernels), and resource limits.  The registry is the
controller's catalogue, mirroring OpenWhisk's action store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Optional

import numpy as np


@dataclass
class FunctionDef:
    """One deployed stateless function."""

    name: str
    #: container image identifier; functions sharing an image can share
    #: warm containers after an image-level cold start
    image: str = "python:3"
    #: fixed execution duration in seconds (e.g. 0.010 for the paper's
    #: sleep-based responsiveness functions)
    duration: Optional[float] = None
    #: alternatively, a sampler ``fn(rng) -> seconds``
    duration_sampler: Optional[Callable[[np.random.Generator], float]] = None
    #: alternatively, a real callable executed outside simulated time
    #: (used by the SeBS performance experiments); returns the payload
    callable: Optional[Callable[[Any], Any]] = None
    #: memory limit, MB (OpenWhisk default 256)
    memory_mb: int = 256
    #: per-invocation hard timeout, seconds (OpenWhisk default 60)
    timeout: float = 60.0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration is None and self.duration_sampler is None and self.callable is None:
            # Default: a trivial no-op function.
            self.duration = 0.01
        if self.duration is not None and self.duration < 0:
            raise ValueError("duration must be >= 0")
        if self.memory_mb <= 0:
            raise ValueError("memory_mb must be positive")

    def sample_duration(self, rng: np.random.Generator) -> float:
        """Simulated compute time of one invocation."""
        if self.duration is not None:
            return self.duration
        if self.duration_sampler is not None:
            return float(self.duration_sampler(rng))
        raise RuntimeError(
            f"function {self.name!r} has a real callable; simulated duration "
            "must be provided per message"
        )


class FunctionRegistry:
    """Catalogue of deployed functions (the controller's action store)."""

    def __init__(self) -> None:
        self._functions: Dict[str, FunctionDef] = {}

    def deploy(self, function: FunctionDef) -> None:
        """Create or update an action."""
        self._functions[function.name] = function

    def deploy_many(self, functions: Iterator[FunctionDef]) -> None:
        for function in functions:
            self.deploy(function)

    def remove(self, name: str) -> None:
        self._functions.pop(name, None)

    def get(self, name: str) -> FunctionDef:
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(f"function {name!r} is not deployed") from None

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def __len__(self) -> int:
        return len(self._functions)

    def names(self) -> list[str]:
        return sorted(self._functions)


def sleep_functions(count: int, duration: float = 0.010) -> list[FunctionDef]:
    """The responsiveness workload: *count* identical sleep functions with
    distinct names, "to always utilize as many warmed-up invokers as
    possible" (Sec. V-C)."""
    return [
        FunctionDef(name=f"sleep-{i:03d}", duration=duration) for i in range(count)
    ]
