"""An in-simulation message broker standing in for Apache Kafka.

Provides what the paper's OpenWhisk deployment relies on:

* named FIFO **topics** with consumer pull semantics (each invoker owns one
  topic; the controller owns ``completed`` and ``health``),
* the global **fast-lane topic** shared by all invokers (Sec. III-C),
* atomic **drain** of a topic (used when the controller re-routes a
  departing invoker's unpulled requests),
* a small, constant publish latency (messages become visible to consumers
  shortly after ``publish`` returns, preserving happened-before ordering
  per topic).

Replication, partitioning and broker failures are out of scope — the paper
treats Kafka as reliable transport, and so do we (DESIGN.md §7).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.sim import Environment, Store
from repro.sim.resources import StoreGet

#: the global priority topic for re-routed requests
FASTLANE_TOPIC = "fastlane"
#: completions flow back to the controller here
COMPLETED_TOPIC = "completed"
#: registration / status pings flow to the controller here
HEALTH_TOPIC = "health"


class Broker:
    """Topic registry + delayed-publish machinery."""

    def __init__(self, env: Environment, publish_latency: float = 0.002) -> None:
        if publish_latency < 0:
            raise ValueError("publish_latency must be >= 0")
        self.env = env
        self.publish_latency = publish_latency
        self._topics: Dict[str, Store] = {}
        #: total messages ever published, per topic (diagnostics)
        self.published_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def topic(self, name: str) -> Store:
        """Get or create a topic."""
        store = self._topics.get(name)
        if store is None:
            store = Store(self.env)
            self._topics[name] = store
        return store

    def topic_names(self) -> List[str]:
        return sorted(self._topics)

    def depth(self, name: str) -> int:
        """Buffered (unconsumed) message count."""
        return len(self.topic(name))

    # ------------------------------------------------------------------
    def publish(self, name: str, message: Any) -> None:
        """Deliver *message* to *name* after the publish latency.

        Per-topic FIFO is preserved: deliveries are scheduled through the
        event queue, whose ordering is deterministic for equal timestamps.
        """
        self.published_counts[name] = self.published_counts.get(name, 0) + 1
        store = self.topic(name)
        if self.publish_latency == 0:
            store.put(message)
            return

        def deliver():
            yield self.env.timeout(self.publish_latency)
            store.put(message)

        self.env.process(deliver())

    def peek_depth(self, name: str) -> int:
        """Queued message count without creating the topic.

        Unlike :meth:`depth`, asking about a topic nobody has published
        to does not materialize an empty store — supply policies poll
        backlog through this, and observation must never mutate state.
        """
        store = self._topics.get(name)
        return 0 if store is None else len(store)

    def get(self, name: str) -> StoreGet:
        """An event resolving with the next message of the topic."""
        return self.topic(name).get()

    def drain(self, name: str) -> List[Any]:
        """Atomically remove and return all buffered messages of a topic."""
        return self.topic(name).drain()

    def move_all(self, source: str, destination: str) -> int:
        """Atomically move buffered messages between topics (no latency:
        this models a broker-side ownership change, not a re-send)."""
        messages = self.drain(source)
        destination_store = self.topic(destination)
        for message in messages:
            destination_store.put(message)
        return len(messages)
