"""Activation records and results: the request-level ledger."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional


class ActivationStatus(enum.Enum):
    """Final status of an invocation attempt, as the client sees it."""

    #: executed and returned a result
    SUCCESS = "success"
    #: executed but errored (developer error, resource exhaustion)
    FAILED = "failed"
    #: accepted by the controller but never answered within the timeout —
    #: Fig 5b/6b's "lost" queries
    TIMEOUT = "timeout"
    #: rejected immediately: no healthy invoker (HTTP 503)
    UNAVAILABLE = "503"


@dataclass
class ActivationResult:
    """What an ``invoke`` call returns to the caller."""

    activation_id: str
    function: str
    status: ActivationStatus
    result: Any = None
    error: Optional[str] = None
    #: client-observed end-to-end response time, seconds
    response_time: float = 0.0
    #: where it ran ("hpc-whisk" | "commercial" | "")
    backend: str = "hpc-whisk"
    #: True if served after re-routing through the fast lane
    fast_laned: bool = False

    @property
    def ok(self) -> bool:
        return self.status is ActivationStatus.SUCCESS


@dataclass
class ActivationRecord:
    """Controller-side ledger entry for one accepted activation."""

    activation_id: str
    function: str
    submitted_at: float
    invoker_id: str
    #: federation member the activation was routed to ("" = unfederated)
    cluster_id: str = ""
    #: set when the completion arrives
    completed_at: Optional[float] = None
    status: Optional[ActivationStatus] = None
    wait_time: float = 0.0
    init_time: float = 0.0
    duration: float = 0.0
    retries: int = 0
    fast_laned: bool = False
    metadata: dict = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.completed_at is not None
