"""Container runtimes: the Docker → Singularity swap (Sec. III-B).

OpenWhisk stock invokers drive Docker, which needs a root daemon on every
node — a non-starter on HPC systems.  The paper's port replaces it with
Singularity: rootless, daemon-free, able to run Docker images (minus some
network/isolation features).  We model the runtimes as cold-start cost
distributions plus capability flags, keeping the swap point explicit: the
invoker is constructed with either runtime and behaves identically above
this interface — the paper's transparency claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RuntimeCapabilities:
    """What the runtime can do and what it demands from the node."""

    requires_root_daemon: bool
    supports_network_namespaces: bool
    supports_full_isolation: bool
    runs_docker_images: bool


class ContainerRuntime:
    """Base runtime: cold-start sampling + capabilities."""

    #: median seconds to create + boot a container ("usually in less than
    #: 500 milliseconds", Sec. II)
    COLD_START_MEDIAN = 0.45
    COLD_START_SIGMA = 0.30
    #: seconds to resume an existing warm container
    WARM_START = 0.002
    capabilities = RuntimeCapabilities(
        requires_root_daemon=False,
        supports_network_namespaces=False,
        supports_full_isolation=False,
        runs_docker_images=True,
    )

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    @property
    def name(self) -> str:
        return type(self).__name__.replace("Runtime", "").lower()

    def cold_start_delay(self) -> float:
        """Seconds to create a fresh container for an image."""
        return float(
            self._rng.lognormal(math.log(self.COLD_START_MEDIAN), self.COLD_START_SIGMA)
        )

    def warm_start_delay(self) -> float:
        return self.WARM_START

    def hpc_compatible(self) -> bool:
        """Deployable on a cluster without privileged node daemons."""
        return not self.capabilities.requires_root_daemon


class DockerRuntime(ContainerRuntime):
    """Stock OpenWhisk containerization: fast, featureful, needs root."""

    COLD_START_MEDIAN = 0.45
    capabilities = RuntimeCapabilities(
        requires_root_daemon=True,
        supports_network_namespaces=True,
        supports_full_isolation=True,
        runs_docker_images=True,
    )


class SingularityRuntime(ContainerRuntime):
    """The HPC-Whisk containerization: rootless and daemon-free.

    Cold starts are modestly slower (image unpacking without a resident
    daemon); advanced network/isolation features are unavailable — the
    trade the paper accepts for administrator acceptability.
    """

    COLD_START_MEDIAN = 0.60
    capabilities = RuntimeCapabilities(
        requires_root_daemon=False,
        supports_network_namespaces=False,
        supports_full_isolation=False,
        runs_docker_images=True,
    )
