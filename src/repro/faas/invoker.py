"""The invoker: one FaaS worker on one (transiently idle) node.

The serve loop pulls the **fast lane first**, then its own topic
(Sec. III-C), and spawns one executor per activation; executors serialize
on the container pool.  On SIGTERM the pilot job calls :meth:`drain`:

1. notify the controller (it stops routing here and moves the unpulled
   topic remainder to the fast lane),
2. republish the internal buffer — executors that have not started a
   function body — to the fast lane,
3. interrupt the *running* executions too, when both the deployment and
   the message allow it, and republish them,
4. wait out non-interruptible executions (SIGKILL may cut this short —
   then those activations are simply lost and time out at the controller),
5. deregister.

The whole handoff takes "a few seconds" in the paper; the step delays are
configurable in :class:`~repro.faas.config.FaaSConfig`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faas.broker import Broker, COMPLETED_TOPIC, FASTLANE_TOPIC, HEALTH_TOPIC
from repro.faas.config import FaaSConfig
from repro.faas.containers import ContainerPool
from repro.faas.functions import FunctionRegistry
from repro.faas.messages import ActivationMessage, CompletionMessage, PingMessage
from repro.faas.runtime import ContainerRuntime, SingularityRuntime
from repro.sim import Environment, Interrupt, Process


@dataclass
class InvokerStats:
    """Lifecycle + work statistics one invoker leaves behind."""

    invoker_id: str
    node: str
    started_at: float
    registered_at: Optional[float] = None
    drain_started_at: Optional[float] = None
    deregistered_at: Optional[float] = None
    completed: int = 0
    failed: int = 0
    rejected_overload: int = 0
    requeued_on_drain: int = 0
    abandoned_on_kill: int = 0
    cold_starts: int = 0
    warm_hits: int = 0

    @property
    def serving_time(self) -> float:
        """Seconds the invoker was registered and accepting work."""
        if self.registered_at is None:
            return 0.0
        end = self.drain_started_at or self.deregistered_at
        if end is None:
            return 0.0
        return max(0.0, end - self.registered_at)


class _Requeue(Exception):
    """Interrupt cause telling an executor to hand its message back."""


class _Kill(Exception):
    """Interrupt cause telling an executor to die silently (crash/SIGKILL):
    no completion is published — the activation is simply lost."""


class Invoker:
    """One OpenWhisk worker process."""

    def __init__(
        self,
        env: Environment,
        invoker_id: str,
        node: str,
        broker: Broker,
        registry: FunctionRegistry,
        config: Optional[FaaSConfig] = None,
        rng: Optional[np.random.Generator] = None,
        runtime: Optional[ContainerRuntime] = None,
        cluster_id: str = "",
    ) -> None:
        self.env = env
        self.invoker_id = invoker_id
        self.node = node
        #: federation member this worker's node belongs to
        self.cluster_id = cluster_id
        self.broker = broker
        self.registry = registry
        self.config = config or FaaSConfig()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.runtime = runtime or SingularityRuntime(self.rng)
        self.pool = ContainerPool(env, self.runtime, self.config.max_containers)
        self.topic = f"invoker-{invoker_id}"
        self.stats = InvokerStats(invoker_id=invoker_id, node=node, started_at=env.now)
        self._draining = False
        #: activation_id -> (executor process, message, phase holder)
        self._executors: Dict[str, Tuple[Process, ActivationMessage, List[str]]] = {}
        self._ping_proc: Optional[Process] = None
        #: messages rescued from an interrupted pull (drain handles them)
        self._orphans: List[ActivationMessage] = []

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return len(self._executors)

    def register(self):
        """Announce this worker; start heartbeats.  (Generator.)"""
        self.broker.publish(
            HEALTH_TOPIC,
            PingMessage(
                self.invoker_id,
                "register",
                self.env.now,
                node=self.node,
                cluster=self.cluster_id,
            ),
        )
        self.stats.registered_at = self.env.now
        self._ping_proc = self.env.process(self._heartbeat())
        # Registration becomes effective when the controller consumes the
        # ping — one publish latency away.
        yield self.env.timeout(self.broker.publish_latency)

    def serve(self):
        """Main loop (generator).  Runs until interrupted by the pilot."""
        try:
            while True:
                messages = yield from self._pull()
                for message in messages:
                    self._accept(message)
        except Interrupt:
            raise  # the pilot's SIGTERM; drain() takes over

    def drain(self):
        """The SIGTERM handoff (generator).  Returns the final stats."""
        env = self.env
        cfg = self.config
        if self._draining:
            return self.stats
        self._draining = True
        self.stats.drain_started_at = env.now
        try:
            # 1. Tell the controller: no new work; it re-routes our topic.
            yield env.timeout(cfg.drain_notify_delay)
            self.broker.publish(
                HEALTH_TOPIC,
                PingMessage(
                    self.invoker_id,
                    "draining",
                    env.now,
                    node=self.node,
                    cluster=self.cluster_id,
                ),
            )

            # 2. + 3. Interrupt executors that may be requeued.
            for activation_id, (proc, message, phase) in list(self._executors.items()):
                if phase[0] == "running" and not (
                    cfg.interrupt_running and message.interruptible
                ):
                    continue  # must let it finish
                if proc.is_alive:
                    proc.interrupt(_Requeue())

            # Republish rescued + requeued messages onto the fast lane.
            requeue = list(self._orphans)
            self._orphans.clear()
            # Give interrupted executors their (URGENT) wakeups: one tick.
            yield env.timeout(0.0)
            for activation_id, (proc, message, phase) in list(self._executors.items()):
                if phase[0] == "requeued":
                    requeue.append(message)
                    del self._executors[activation_id]
            for message in requeue:
                if not cfg.use_fast_lane:
                    # Stock OpenWhisk: the message is simply lost; the
                    # activation will time out at the controller.
                    continue
                message.retries += 1
                message.fast_laned = True
                self.stats.requeued_on_drain += 1
                if message.retries <= cfg.max_retries:
                    self.broker.publish(FASTLANE_TOPIC, message)
                else:
                    self._complete(message, success=False, error="too many requeues")
                yield env.timeout(cfg.drain_republish_delay)

            # 4. Wait for non-interruptible executions to finish.
            remaining = [proc for proc, _m, _p in self._executors.values() if proc.is_alive]
            if remaining:
                yield env.all_of(remaining)

            # 5. Deregister.
            yield env.timeout(cfg.drain_deregister_delay)
        except Interrupt:
            # SIGKILL arrived mid-drain: everything still tracked is lost.
            self.stats.abandoned_on_kill += len(self._executors) + len(self._orphans)
            self._kill_executors()
            self._orphans.clear()
        self._shutdown()
        return self.stats

    def vanish(self) -> None:
        """Crash teardown: the node died.  Nothing is published — the
        controller must discover the loss via missed pings, and anything
        in flight is simply gone."""
        self._draining = True
        if self._ping_proc is not None and self._ping_proc.is_alive:
            self._ping_proc.interrupt("node_fail")
        self.stats.abandoned_on_kill += len(self._executors) + len(self._orphans)
        self._kill_executors()
        self._orphans.clear()
        self.pool.destroy_all()
        self.stats.cold_starts = self.pool.cold_starts
        self.stats.warm_hits = self.pool.warm_hits

    def _kill_executors(self) -> None:
        """Terminate every in-flight execution without completions: the
        processes must not keep computing (and publishing!) after the
        worker is gone."""
        for _aid, (proc, _message, _phase) in list(self._executors.items()):
            if proc.is_alive:
                proc.interrupt(_Kill())
        self._executors.clear()

    def abort(self) -> None:
        """Immediate teardown without the handoff (e.g. SIGTERM arrived
        before the invoker ever became healthy).  Deregisters so a
        register ping already in flight does not leave a ghost entry."""
        self._draining = True
        self._shutdown()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _shutdown(self) -> None:
        env = self.env
        self.broker.publish(
            HEALTH_TOPIC,
            PingMessage(
                self.invoker_id,
                "deregister",
                env.now,
                node=self.node,
                cluster=self.cluster_id,
            ),
        )
        self.stats.deregistered_at = env.now
        if self._ping_proc is not None and self._ping_proc.is_alive:
            self._ping_proc.interrupt("shutdown")
        self.pool.destroy_all()
        self.stats.cold_starts = self.pool.cold_starts
        self.stats.warm_hits = self.pool.warm_hits

    def _heartbeat(self):
        env = self.env
        try:
            while True:
                yield env.timeout(self.config.ping_interval)
                kind = "healthy" if not self._draining else "draining"
                self.broker.publish(
                    HEALTH_TOPIC,
                    PingMessage(
                        self.invoker_id,
                        kind,
                        env.now,
                        node=self.node,
                        cluster=self.cluster_id,
                        free_slots=self.config.max_containers - self.pool.busy_count,
                    ),
                )
        except Interrupt:
            return

    def _pull(self):
        """Block until at least one message is available; fast lane first.

        If the pilot's SIGTERM lands exactly when a getter has already
        popped a message, that message is stashed in ``_orphans`` so the
        drain republishes it instead of losing it.
        """
        getters = []
        if self.config.use_fast_lane:
            getters.append(self.broker.topic(FASTLANE_TOPIC).get())
        getters.append(self.broker.topic(self.topic).get())
        try:
            yield self.env.any_of(getters)
        except Interrupt:
            for getter in getters:
                if getter.triggered:
                    self._orphans.append(getter.value)
                else:
                    getter.cancel()
            raise
        messages: List[ActivationMessage] = []
        for getter in getters:
            if getter.triggered:
                messages.append(getter.value)
            else:
                getter.cancel()
        return messages

    def _accept(self, message: ActivationMessage) -> None:
        """Admission control + executor spawn."""
        if self._draining:
            self._orphans.append(message)
            return
        if self.in_flight >= self.config.buffer_limit:
            # "the upper limit of concurrently running container
            # processes" (Sec. V-C): the activation fails outright.
            self.stats.rejected_overload += 1
            self._complete(message, success=False, error="invoker overloaded")
            return
        phase = ["waiting"]
        proc = self.env.process(self._execute(message, phase))
        proc.name = f"exec-{message.activation_id}"
        self._executors[message.activation_id] = (proc, message, phase)

    def _execute(self, message: ActivationMessage, phase: List[str]):
        env = self.env
        accepted_at = env.now
        container = None
        try:
            try:
                function = self.registry.get(message.function)
            except KeyError as exc:
                self._complete(message, success=False, error=str(exc))
                return
            container, init_time = yield from self.pool.acquire(function)
            phase[0] = "running"
            wait_time = env.now - accepted_at
            duration = (
                message.duration
                if message.duration is not None
                else function.sample_duration(self.rng)
            )
            overhead = self._sample_overhead()
            yield env.timeout(duration + overhead)
            self.pool.release(container)
            container = None
            self._complete(
                message,
                success=True,
                result={"ok": True},
                wait_time=wait_time,
                init_time=init_time,
                duration=duration,
            )
            self.stats.completed += 1
        except Interrupt as interrupt:
            if container is not None:
                self.pool.release(container)
            if isinstance(interrupt.cause, _Requeue):
                phase[0] = "requeued"
                return
            if isinstance(interrupt.cause, _Kill):
                return  # crash: no completion, the activation is lost
            raise
        finally:
            if phase[0] != "requeued":
                self._executors.pop(message.activation_id, None)

    def _sample_overhead(self) -> float:
        cfg = self.config
        if cfg.system_overhead <= 0:
            return 0.0
        return float(
            self.rng.lognormal(math.log(cfg.system_overhead), cfg.overhead_sigma)
        )

    def _complete(
        self,
        message: ActivationMessage,
        success: bool,
        result=None,
        error: Optional[str] = None,
        wait_time: float = 0.0,
        init_time: float = 0.0,
        duration: float = 0.0,
    ) -> None:
        if not success:
            self.stats.failed += 1
        self.broker.publish(
            COMPLETED_TOPIC,
            CompletionMessage(
                activation_id=message.activation_id,
                invoker_id=self.invoker_id,
                success=success,
                result=result,
                error=error,
                wait_time=wait_time,
                init_time=init_time,
                duration=duration,
                fast_laned=message.fast_laned,
            ),
        )
