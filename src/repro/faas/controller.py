"""The OpenWhisk-like controller with dynamic invoker support.

Stock OpenWhisk assumes the invoker set never shrinks; a vanished invoker
means timeouts for everything routed to it (Sec. II).  The paper's
modified controller — reproduced here — instead:

* maintains a **dynamic registry** driven by status messages (register /
  healthy / draining / deregister) plus a ping-timeout scanner for
  ungraceful losses;
* on a *draining* notice, immediately moves the invoker's **unpulled**
  messages to the global fast-lane topic (the invoker republishes its own
  internal buffer);
* answers **503** instantly when no healthy invoker exists, enabling the
  client-side commercial fallback of Alg. 1.

Routing keeps OpenWhisk's hash-by-function-name affinity over the sorted
list of currently-healthy invokers, maximizing warm-container hits.
"""

from __future__ import annotations

import enum

from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.faas.activation import ActivationRecord, ActivationResult, ActivationStatus
from repro.faas.broker import Broker, COMPLETED_TOPIC, FASTLANE_TOPIC, HEALTH_TOPIC
from repro.faas.config import FaaSConfig
from repro.faas.functions import FunctionDef, FunctionRegistry
from repro.faas.messages import (
    ActivationMessage,
    CompletionMessage,
    PingMessage,
    next_activation_id,
)
from repro.sim import AnyOf, Environment, Event


class InvokerStatus(enum.Enum):
    """Controller-side view of an invoker."""

    HEALTHY = "healthy"
    DRAINING = "draining"
    GONE = "gone"


@dataclass
class InvokerRecord:
    """Registry entry for one (current or past) invoker."""

    invoker_id: str
    node: str
    status: InvokerStatus
    registered_at: float
    last_ping: float
    status_since: float
    gone_at: Optional[float] = None
    #: federation member the worker belongs to ("" = unfederated)
    cluster_id: str = ""


@dataclass
class ControllerEvent:
    """One entry of the OpenWhisk-level, second-accurate event log."""

    time: float
    kind: str
    invoker_id: str = ""
    detail: dict = field(default_factory=dict)


class Controller:
    """Routes invocations, tracks invokers, resolves completions."""

    def __init__(
        self,
        env: Environment,
        broker: Broker,
        config: Optional[FaaSConfig] = None,
        rng: Optional[np.random.Generator] = None,
        load_balancer=None,
        router=None,
        cluster_order: Optional[List[str]] = None,
    ) -> None:
        from repro.faas.loadbalancer import HashAffinity

        self.env = env
        self.broker = broker
        self.config = config or FaaSConfig()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.load_balancer = load_balancer or HashAffinity()
        #: cross-cluster routing policy; None = flat single-pool routing
        self.router = router
        #: federation member ids in declaration order (failover order)
        self.cluster_order: List[str] = list(cluster_order or [])
        #: activations routed per member cluster (federation accounting)
        self.routed_counts: Dict[str, int] = {}
        self.registry = FunctionRegistry()
        self.invokers: Dict[str, InvokerRecord] = {}
        # Incrementally-maintained healthy views: the invoke hot path
        # must not rescan the whole registry per call.  `_healthy_pools`
        # holds one sorted id list per cluster, `_healthy_all` the flat
        # sorted fleet; both are updated on status transitions only.
        # `_healthy_view` caches the dict `healthy_by_cluster()` returns
        # and is dropped (never mutated in place) on any transition, so
        # downstream routers can key per-view caches on dict identity.
        self._healthy_pools: Dict[str, List[str]] = {}
        self._healthy_all: List[str] = []
        self._healthy_view: Optional[Dict[str, List[str]]] = None
        #: in-flight activation count per member cluster ("" = unfederated)
        self._inflight_by_cluster: Dict[str, int] = {}
        self._pending: Dict[str, Tuple[Event, ActivationRecord]] = {}
        #: every accepted activation, in submit order (the request ledger)
        self.records: List[ActivationRecord] = []
        #: count of immediate 503 rejections
        self.unavailable_count = 0
        #: second-accurate event log (registrations, drains, losses, 503s)
        self.events: List[ControllerEvent] = []

        env.process(self._completion_consumer())
        env.process(self._health_consumer())
        env.process(self._ping_scanner())

    # ------------------------------------------------------------------
    # deployment & views
    # ------------------------------------------------------------------
    def deploy(self, function: FunctionDef) -> None:
        self.registry.deploy(function)

    def healthy_invokers(self, cluster: Optional[str] = None) -> List[str]:
        if cluster is None:
            return list(self._healthy_all)
        return list(self._healthy_pools.get(cluster, ()))

    def healthy_by_cluster(self) -> Dict[str, List[str]]:
        """Healthy invoker ids per member cluster, declaration order.

        Every declared member appears (possibly with an empty list), so
        routers see outages as empty pools, not missing keys; workers
        from undeclared clusters are appended in sorted-id order.

        The returned dict is cached and shared between calls until the
        next invoker status transition, at which point a *new* dict is
        built — it is never mutated in place, so consumers (the
        federation routers) may key derived-state caches on its
        identity.  Treat it as read-only.
        """
        view = self._healthy_view
        if view is None:
            pools = self._healthy_pools
            view = {cid: list(pools.get(cid, ())) for cid in self.cluster_order}
            # Undeclared clusters appear only while non-empty, ordered
            # by their smallest healthy invoker id (the order the old
            # sorted-rescan produced).
            extras = [
                (pool[0], cid)
                for cid, pool in pools.items()
                if pool and cid not in view
            ]
            extras.sort()
            for _first_id, cid in extras:
                view[cid] = list(pools[cid])
            self._healthy_view = view
        return view

    def _pool_add(self, record: InvokerRecord) -> None:
        """Status transition -> HEALTHY: insert into the sorted pools."""
        pool = self._healthy_pools.get(record.cluster_id)
        if pool is None:
            pool = self._healthy_pools[record.cluster_id] = []
        insort(pool, record.invoker_id)
        insort(self._healthy_all, record.invoker_id)
        self._healthy_view = None

    def _pool_remove(self, record: InvokerRecord) -> None:
        """Status transition HEALTHY -> *: drop from the sorted pools."""
        pool = self._healthy_pools.get(record.cluster_id)
        invoker_id = record.invoker_id
        if pool is not None:
            i = bisect_left(pool, invoker_id)
            if i < len(pool) and pool[i] == invoker_id:
                del pool[i]
        flat = self._healthy_all
        i = bisect_left(flat, invoker_id)
        if i < len(flat) and flat[i] == invoker_id:
            del flat[i]
        self._healthy_view = None

    def invoker_topic(self, invoker_id: str) -> str:
        return f"invoker-{invoker_id}"

    def snapshot(self) -> Dict[str, Any]:
        """A pure-read state summary (the live-mode health endpoint).

        Touches only incrementally-maintained counters — no registry
        rescan, no simulation side effects — so a wall-clock service can
        answer ``/healthz`` and ``/stats`` probes at any rate without
        perturbing the control plane.
        """
        return {
            "functions_deployed": len(self.registry),
            "invokers_total": len(self.invokers),
            "healthy_invokers": len(self._healthy_all),
            "healthy_by_cluster": {
                cid: len(pool) for cid, pool in self._healthy_pools.items() if pool
            },
            "inflight": len(self._pending),
            "activations_total": len(self.records),
            "unavailable_total": self.unavailable_count,
        }

    @property
    def inflight_count(self) -> int:
        """Fleet-wide :meth:`inflight_count_for` (observability sugar)."""
        return self.inflight_count_for()

    def inflight_count_for(self, cluster: Optional[str] = None) -> int:
        """In-flight activations routed to one member cluster's invokers.

        ``None`` returns the fleet total; also a pure read.  Federated
        supply managers use this so one member's controller never reacts
        to demand another member is already executing.
        """
        if cluster is None:
            return len(self._pending)
        return self._inflight_by_cluster.get(cluster, 0)

    def _pending_add(self, done: Event, record: ActivationRecord) -> None:
        """Track an accepted activation (and its member inflight count)."""
        self._pending[record.activation_id] = (done, record)
        self._inflight_by_cluster[record.cluster_id] = (
            self._inflight_by_cluster.get(record.cluster_id, 0) + 1
        )

    def _inflight_dec(self, record: ActivationRecord) -> None:
        counts = self._inflight_by_cluster
        cluster_id = record.cluster_id
        remaining = counts.get(cluster_id, 0) - 1
        if remaining > 0:
            counts[cluster_id] = remaining
        else:
            counts.pop(cluster_id, None)

    # ------------------------------------------------------------------
    # invocation path
    # ------------------------------------------------------------------
    def choose_invoker(
        self, function: str, cluster: Optional[str] = None
    ) -> Optional[str]:
        """Two-stage federated routing, or the flat single-pool default.

        With a :class:`~repro.faas.router.FederationRouter` configured,
        the router picks the member cluster and the load balancer picks
        among that cluster's healthy invokers.  Without a router the
        behaviour is exactly stock: the load balancer sees the whole
        healthy list.  An explicit ``cluster`` preference (region-tagged
        streaming invocations) short-circuits the router while that
        member has healthy invokers; an empty preferred pool falls back
        to the normal path rather than 503ing.
        """
        if cluster is not None:
            preferred = self.healthy_invokers(cluster=cluster)
            if preferred:
                return self.load_balancer.choose(function, preferred, self.broker)
        if self.router is not None:
            pools = self.healthy_by_cluster()
            cluster = self.router.choose(function, pools, self.broker)
            if cluster is None:
                return None
            return self.load_balancer.choose(function, pools[cluster], self.broker)
        return self.load_balancer.choose(function, self.healthy_invokers(), self.broker)

    def invoke(
        self,
        function: str,
        params: Any = None,
        duration: Optional[float] = None,
        interruptible: bool = True,
        cluster: Optional[str] = None,
    ):
        """A process generator: performs one blocking invocation.

        Yields until the result arrives, the activation times out, or —
        with no healthy invoker — immediately returns a 503 result.
        """
        env = self.env
        submitted = env.now
        if function not in self.registry:
            return ActivationResult(
                activation_id="",
                function=function,
                status=ActivationStatus.FAILED,
                error=f"function {function!r} is not deployed",
            )
        target = self.choose_invoker(function, cluster=cluster)
        if target is None:
            self.unavailable_count += 1
            if self.config.record_history:
                self.events.append(
                    ControllerEvent(
                        time=env.now, kind="503", detail={"function": function}
                    )
                )
            return ActivationResult(
                activation_id="",
                function=function,
                status=ActivationStatus.UNAVAILABLE,
                error="no healthy invoker (503)",
                response_time=0.0,
            )

        activation_id = next_activation_id()
        message = ActivationMessage(
            activation_id=activation_id,
            function=function,
            params=params,
            submitted_at=submitted,
            duration=duration,
            interruptible=interruptible,
        )
        target_record = self.invokers.get(target)
        target_cluster = target_record.cluster_id if target_record else ""
        if target_cluster:
            self.routed_counts[target_cluster] = (
                self.routed_counts.get(target_cluster, 0) + 1
            )
        record = ActivationRecord(
            activation_id=activation_id,
            function=function,
            submitted_at=submitted,
            invoker_id=target,
            cluster_id=target_cluster,
        )
        if self.config.record_history:
            self.records.append(record)
        done = env.event()
        self._pending_add(done, record)
        self.broker.publish(self.invoker_topic(target), message)

        deadline = env.timeout(self.config.activation_timeout)
        yield AnyOf(env, [done, deadline])
        if done._processed:
            completion: CompletionMessage = done.value
            status = (
                ActivationStatus.SUCCESS if completion.success else ActivationStatus.FAILED
            )
            return ActivationResult(
                activation_id=activation_id,
                function=function,
                status=status,
                result=completion.result,
                error=completion.error,
                response_time=env.now - submitted,
                fast_laned=record.fast_laned,
            )
        # Timed out: stop tracking; a late completion is dropped.
        if self._pending.pop(activation_id, None) is not None:
            self._inflight_dec(record)
        record.status = ActivationStatus.TIMEOUT
        record.completed_at = env.now
        return ActivationResult(
            activation_id=activation_id,
            function=function,
            status=ActivationStatus.TIMEOUT,
            error="activation timed out",
            response_time=env.now - submitted,
            fast_laned=record.fast_laned,
        )

    # ------------------------------------------------------------------
    # consumers
    # ------------------------------------------------------------------
    def _completion_consumer(self):
        env = self.env
        while True:
            completion: CompletionMessage = yield self.broker.get(COMPLETED_TOPIC)
            entry = self._pending.pop(completion.activation_id, None)
            if entry is None:
                continue  # late completion after timeout: dropped
            done, record = entry
            self._inflight_dec(record)
            record.completed_at = env.now
            record.status = (
                ActivationStatus.SUCCESS if completion.success else ActivationStatus.FAILED
            )
            record.wait_time = completion.wait_time
            record.init_time = completion.init_time
            record.duration = completion.duration
            record.invoker_id = completion.invoker_id
            record.fast_laned = record.fast_laned or completion.fast_laned
            done.succeed(completion)

    def _health_consumer(self):
        env = self.env
        while True:
            ping: PingMessage = yield self.broker.get(HEALTH_TOPIC)
            if ping.kind == "register":
                previous = self.invokers.get(ping.invoker_id)
                if previous is not None and previous.status is InvokerStatus.HEALTHY:
                    # Re-registration overwrites the record (possibly
                    # under a different cluster): retract the old pool
                    # entry before inserting the fresh one.
                    self._pool_remove(previous)
                record = InvokerRecord(
                    invoker_id=ping.invoker_id,
                    node=ping.node,
                    status=InvokerStatus.HEALTHY,
                    registered_at=env.now,
                    last_ping=env.now,
                    status_since=env.now,
                    cluster_id=ping.cluster,
                )
                self.invokers[ping.invoker_id] = record
                self._pool_add(record)
                self.events.append(
                    ControllerEvent(env.now, "invoker_registered", ping.invoker_id)
                )
            elif ping.kind == "healthy":
                record = self.invokers.get(ping.invoker_id)
                if record is not None and record.status is not InvokerStatus.GONE:
                    record.last_ping = env.now
            elif ping.kind == "draining":
                record = self.invokers.get(ping.invoker_id)
                if record is not None and record.status is InvokerStatus.HEALTHY:
                    record.status = InvokerStatus.DRAINING
                    record.status_since = env.now
                    record.last_ping = env.now
                    self._pool_remove(record)
                    moved = 0
                    if self.config.use_fast_lane:
                        moved = self.broker.move_all(
                            self.invoker_topic(ping.invoker_id), FASTLANE_TOPIC
                        )
                    for message in self.broker.topic(FASTLANE_TOPIC).peek_all():
                        if isinstance(message, ActivationMessage):
                            message.fast_laned = True
                            entry = self._pending.get(message.activation_id)
                            if entry is not None:
                                entry[1].fast_laned = True
                    self.events.append(
                        ControllerEvent(
                            env.now,
                            "invoker_draining",
                            ping.invoker_id,
                            {"moved_to_fastlane": moved},
                        )
                    )
            elif ping.kind == "deregister":
                record = self.invokers.get(ping.invoker_id)
                if record is not None and record.status is not InvokerStatus.GONE:
                    if record.status is InvokerStatus.HEALTHY:
                        self._pool_remove(record)
                    record.status = InvokerStatus.GONE
                    record.status_since = env.now
                    record.gone_at = env.now
                    self.events.append(
                        ControllerEvent(env.now, "invoker_deregistered", ping.invoker_id)
                    )

    def _ping_scanner(self):
        """Detect ungraceful losses (SIGKILL before drain finished)."""
        env = self.env
        while True:
            yield env.timeout(self.config.health_check_interval)
            deadline = env.now - self.config.ping_timeout
            for record in self.invokers.values():
                if record.status is InvokerStatus.GONE:
                    continue
                if record.last_ping < deadline:
                    if record.status is InvokerStatus.HEALTHY:
                        self._pool_remove(record)
                    record.status = InvokerStatus.GONE
                    record.status_since = env.now
                    record.gone_at = env.now
                    # Stock-OpenWhisk behaviour for a crashed worker: its
                    # unpulled messages are stranded and their activations
                    # will time out — the failure mode the drain protocol
                    # exists to avoid.
                    self.events.append(
                        ControllerEvent(
                            env.now,
                            "invoker_lost",
                            record.invoker_id,
                            {"stranded": self.broker.depth(self.invoker_topic(record.invoker_id))},
                        )
                    )
