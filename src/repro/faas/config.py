"""FaaS middleware configuration."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class FaaSConfig:
    """Tunables of the OpenWhisk-like stack.

    Defaults match the behaviour described in the paper and standard
    OpenWhisk deployments; ablation benchmarks sweep the interesting ones.
    """

    # -- transport ------------------------------------------------------
    #: broker publish→deliver latency, seconds (Kafka-scale)
    publish_latency: float = 0.002

    # -- controller -----------------------------------------------------
    #: blocking-invocation timeout: controller gives up waiting, seconds
    activation_timeout: float = 60.0
    #: keep the per-activation ledger (``Controller.records``) and the
    #: per-request 503 entries of the event log.  True mirrors OpenWhisk's
    #: CouchDB activation store; False keeps only O(1) counters, which is
    #: what trace-scale streaming runs need — a full day at 120 req/s is
    #: ~10M ledger entries of pure memory growth otherwise
    record_history: bool = True
    #: controller-side scan interval for missed pings, seconds
    health_check_interval: float = 2.0
    #: an invoker missing pings for this long is declared gone, seconds
    ping_timeout: float = 10.0

    # -- invoker ----------------------------------------------------------
    #: invoker → controller status ping interval, seconds
    ping_interval: float = 2.0
    #: maximum simultaneously existing containers per invoker
    max_containers: int = 16
    #: maximum buffered (pulled, unexecuted) activations; beyond this the
    #: invoker fails new activations ("upper limit of concurrently running
    #: container processes", Sec. V-C)
    buffer_limit: int = 64
    #: median per-activation overhead outside the function body (HTTP
    #: front door, controller processing, Kafka round trips, result
    #: store), seconds — calibrated so a warm 10 ms sleep function answers
    #: in ≈865 ms end to end, the paper's fib-day Gatling median (Sec. V-C)
    system_overhead: float = 0.72
    #: lognormal shape of the overhead jitter
    overhead_sigma: float = 0.25

    # -- drain / handoff (Sec. III-C) ------------------------------------
    #: master switch for the fast-lane handoff; False reverts to stock
    #: OpenWhisk behaviour (departing workers strand their messages) —
    #: used by the fast-lane ablation benchmark
    use_fast_lane: bool = True
    #: interrupt the currently-running execution and requeue it (the paper
    #: default; clients may opt out per function)
    interrupt_running: bool = True
    #: delay for telling the controller we are draining, seconds
    drain_notify_delay: float = 0.2
    #: delay per buffered message republished to the fast lane, seconds
    drain_republish_delay: float = 0.01
    #: delay for final deregistration, seconds
    drain_deregister_delay: float = 0.2
    #: maximum retries for a re-routed (fast-laned) activation
    max_retries: int = 3

    def __post_init__(self) -> None:
        if self.activation_timeout <= 0:
            raise ValueError("activation_timeout must be positive")
        if self.ping_interval <= 0 or self.ping_timeout <= self.ping_interval:
            raise ValueError("ping_timeout must exceed ping_interval")
        if self.max_containers < 1:
            raise ValueError("max_containers must be >= 1")
