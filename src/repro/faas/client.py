"""Client-side pieces: plain client, commercial cloud, and Alg. 1.

During full-cluster-utilization windows (10.11% of the analysed week) no
invoker exists and the controller answers 503 immediately.  Alg. 1 of the
paper wraps every call: after a 503, calls are off-loaded to a commercial
FaaS service (e.g. AWS Lambda) for 60 seconds before the HPC endpoint is
probed again.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.faas.activation import ActivationResult, ActivationStatus
from repro.faas.controller import Controller
from repro.faas.messages import next_activation_id
from repro.sim import Environment


class FaaSClient:
    """A thin client over the controller (the ``wsk``-CLI / HTTP path)."""

    def __init__(self, controller: Controller) -> None:
        self.controller = controller

    def invoke(
        self,
        function: str,
        params: Any = None,
        duration: Optional[float] = None,
        interruptible: bool = True,
        cluster: Optional[str] = None,
    ):
        """Blocking invocation (generator).

        ``cluster`` is an optional federation-member placement
        preference (see :meth:`Controller.choose_invoker`).
        """
        result = yield from self.controller.invoke(
            function,
            params=params,
            duration=duration,
            interruptible=interruptible,
            cluster=cluster,
        )
        return result


class CommercialCloud:
    """An always-available commercial FaaS endpoint (AWS-Lambda-like).

    Modeled as: never rejects, executes the function's compute at a
    relative speed factor (the paper measured Prometheus nodes ≈15% faster
    than Lambda's fastest 2 GB configuration, so the default factor is
    1.15), plus its own system overhead.
    """

    def __init__(
        self,
        env: Environment,
        rng: np.random.Generator,
        slowdown: float = 1.15,
        overhead_median: float = 0.82,
        overhead_sigma: float = 0.25,
    ) -> None:
        if slowdown <= 0:
            raise ValueError("slowdown must be positive")
        self.env = env
        self.rng = rng
        self.slowdown = slowdown
        self.overhead_median = overhead_median
        self.overhead_sigma = overhead_sigma
        self.invocations = 0

    def invoke(self, function: str, params: Any = None, duration: float = 0.01):
        """Blocking invocation (generator); always succeeds."""
        env = self.env
        submitted = env.now
        self.invocations += 1
        overhead = float(
            self.rng.lognormal(math.log(self.overhead_median), self.overhead_sigma)
        )
        yield env.timeout(duration * self.slowdown + overhead)
        return ActivationResult(
            activation_id=next_activation_id(),
            function=function,
            status=ActivationStatus.SUCCESS,
            result={"ok": True},
            response_time=env.now - submitted,
            backend="commercial",
        )


@dataclass
class Alg1Stats:
    """Bookkeeping of the wrapper's routing decisions."""

    hpc_calls: int = 0
    commercial_calls: int = 0
    rejections_503: int = 0


class Alg1Wrapper:
    """The paper's Algorithm 1: 60-second commercial fallback after a 503.

    State is one timestamp (``Last_503``).  A call within ``backoff``
    seconds of the last 503 goes straight to the commercial endpoint;
    otherwise the HPC endpoint is tried, and on a 503 the timestamp is
    refreshed and the call retried (which then lands commercially).
    """

    def __init__(
        self,
        client: FaaSClient,
        commercial: CommercialCloud,
        backoff: float = 60.0,
    ) -> None:
        if backoff <= 0:
            raise ValueError("backoff must be positive")
        self.client = client
        self.commercial = commercial
        self.backoff = backoff
        self.last_503: float = -math.inf
        self.stats = Alg1Stats()

    def invoke(self, function: str, params: Any = None, duration: Optional[float] = None):
        """Blocking wrapped invocation (generator).  Mirrors Alg. 1."""
        env = self.client.controller.env
        while True:
            if env.now - self.last_503 <= self.backoff:
                self.stats.commercial_calls += 1
                result = yield from self.commercial.invoke(
                    function, params=params, duration=duration if duration is not None else 0.01
                )
                return result
            self.stats.hpc_calls += 1
            result = yield from self.client.invoke(function, params=params, duration=duration)
            if result.status is ActivationStatus.UNAVAILABLE:
                self.stats.rejections_503 += 1
                self.last_503 = env.now
                continue
            return result
