"""An OpenWhisk-like FaaS middleware, with the paper's modifications.

Components mirror a standard OpenWhisk deployment (Sec. II):

* a **controller** (:mod:`repro.faas.controller`) routing invocations to
  invokers by hashed function name over per-invoker message topics;
* **invokers** (:mod:`repro.faas.invoker`) — one per worker node — pulling
  from their topic and executing calls in warm/cold **containers**
  (:mod:`repro.faas.containers`) on a Docker- or Singularity-like runtime
  (:mod:`repro.faas.runtime`);
* an in-simulation **message broker** (:mod:`repro.faas.broker`) standing in
  for Apache Kafka (FIFO topics, consumer pull).

Plus the paper's modifications (Sec. III-B/C):

* a dynamic invoker registry — invokers register, report status, drain and
  de-register as pilot jobs come and go;
* the global **fast-lane topic**: a departing invoker republishes its
  buffered requests there, and the controller moves the unpulled remainder;
  every invoker serves the fast lane before its own topic;
* immediate **503** responses when no healthy invoker exists, plus the
  client-side wrapper of Alg. 1 (:mod:`repro.faas.client`) that off-loads
  to a commercial cloud for 60 s after a 503.
"""

from repro.faas.activation import ActivationRecord, ActivationResult, ActivationStatus
from repro.faas.broker import Broker, FASTLANE_TOPIC
from repro.faas.client import Alg1Wrapper, CommercialCloud, FaaSClient
from repro.faas.config import FaaSConfig
from repro.faas.containers import Container, ContainerPool
from repro.faas.controller import Controller, InvokerRecord, InvokerStatus
from repro.faas.functions import FunctionDef, FunctionRegistry
from repro.faas.invoker import Invoker, InvokerStats
from repro.faas.messages import (
    ActivationMessage,
    CompletionMessage,
    PingMessage,
)
from repro.faas.loadbalancer import HashAffinity, LeastLoaded, LoadBalancer, RoundRobin
from repro.faas.router import (
    ROUTERS,
    AffinityFirst,
    Failover,
    FederationRouter,
    WeightedIdle,
)
from repro.faas.runtime import ContainerRuntime, DockerRuntime, SingularityRuntime

__all__ = [
    "ROUTERS",
    "ActivationMessage",
    "AffinityFirst",
    "Failover",
    "FederationRouter",
    "WeightedIdle",
    "ActivationRecord",
    "ActivationResult",
    "ActivationStatus",
    "Alg1Wrapper",
    "Broker",
    "CommercialCloud",
    "CompletionMessage",
    "Container",
    "ContainerPool",
    "ContainerRuntime",
    "Controller",
    "DockerRuntime",
    "FASTLANE_TOPIC",
    "FaaSClient",
    "FaaSConfig",
    "FunctionDef",
    "FunctionRegistry",
    "HashAffinity",
    "LeastLoaded",
    "LoadBalancer",
    "RoundRobin",
    "Invoker",
    "InvokerRecord",
    "InvokerStats",
    "InvokerStatus",
    "PingMessage",
    "SingularityRuntime",
]
