"""Wire messages between controllers and invokers."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_activation_ids = itertools.count(1)


def next_activation_id() -> str:
    return f"act-{next(_activation_ids):08d}"


def reset_activation_ids() -> None:
    """Restart the activation-id counter (test isolation)."""
    global _activation_ids
    _activation_ids = itertools.count(1)


@dataclass
class ActivationMessage:
    """A function invocation in flight (Kafka payload in real OpenWhisk)."""

    activation_id: str
    function: str
    params: Any
    #: client submit time (for end-to-end latency accounting)
    submitted_at: float
    #: simulated execution duration override; None = use the function's model
    duration: Optional[float] = None
    #: times this message has been re-routed through the fast lane
    retries: int = 0
    #: True once the message has travelled through the fast lane
    fast_laned: bool = False
    #: whether the client allows interrupting a running execution (Sec III-C:
    #: clients may opt out when functions mutate external state non-atomically)
    interruptible: bool = True


@dataclass
class CompletionMessage:
    """Result announcement published by an invoker."""

    activation_id: str
    invoker_id: str
    success: bool
    result: Any = None
    error: Optional[str] = None
    #: queueing delay inside the invoker, seconds
    wait_time: float = 0.0
    #: container initialization charged to this activation, seconds (cold start)
    init_time: float = 0.0
    #: function body execution time, seconds
    duration: float = 0.0
    #: True if the activation reached this invoker via the fast lane
    fast_laned: bool = False


@dataclass
class PingMessage:
    """Invoker → controller status heartbeat (extended per Sec. III-C:
    "we extended the set of regular messages sent from workers to
    controllers so the exact status of each worker node is known to the
    controller continuously")."""

    invoker_id: str
    #: "register" | "healthy" | "draining" | "deregister"
    kind: str
    time: float
    node: str = ""
    #: federation member the worker's node belongs to ("" = unfederated)
    cluster: str = ""
    free_slots: int = 0
    metadata: dict = field(default_factory=dict)
