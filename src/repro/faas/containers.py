"""Per-invoker container pools: warm reuse, cold starts, LRU eviction.

OpenWhisk keeps containers warm per function: a repeat invocation lands in
an existing container in milliseconds, a first (or evicted) one pays the
cold start.  The pool enforces the node's container capacity; when full,
an idle container of another function is evicted, and if everything is
busy the acquisition waits in FIFO order.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.faas.functions import FunctionDef
from repro.faas.runtime import ContainerRuntime
from repro.sim import Environment, Event

_container_ids = itertools.count(1)


class Container:
    """One container bound to a function's image and name."""

    __slots__ = ("container_id", "function", "busy", "created_at", "last_used")

    def __init__(self, function: str, now: float) -> None:
        self.container_id = next(_container_ids)
        self.function = function
        self.busy = False
        self.created_at = now
        self.last_used = now

    def __repr__(self) -> str:  # pragma: no cover
        state = "busy" if self.busy else "warm"
        return f"<Container {self.container_id} {self.function} {state}>"


class ContainerPool:
    """Warm-container management for one invoker."""

    def __init__(
        self,
        env: Environment,
        runtime: ContainerRuntime,
        capacity: int,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.runtime = runtime
        self.capacity = capacity
        self._containers: List[Container] = []
        self._waiters: List[Event] = []
        #: statistics
        self.cold_starts = 0
        self.warm_hits = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._containers)

    @property
    def busy_count(self) -> int:
        return sum(1 for c in self._containers if c.busy)

    def warm_for(self, function: str) -> Optional[Container]:
        """An idle warm container for *function*, most recently used first."""
        candidates = [
            c for c in self._containers if not c.busy and c.function == function
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda c: c.last_used)

    # ------------------------------------------------------------------
    def acquire(self, function: FunctionDef):
        """A process generator: yields until a container is available.

        Returns ``(container, init_time)`` where *init_time* is the cold
        start charged to the activation (0 for warm hits).
        """
        env = self.env
        while True:
            container = self.warm_for(function.name)
            if container is not None:
                container.busy = True
                container.last_used = env.now
                self.warm_hits += 1
                delay = self.runtime.warm_start_delay()
                if delay:
                    yield env.timeout(delay)
                return container, 0.0

            if self.size < self.capacity:
                return (yield from self._create(function))

            evictable = [c for c in self._containers if not c.busy]
            if evictable:
                victim = min(evictable, key=lambda c: c.last_used)
                self._containers.remove(victim)
                self.evictions += 1
                return (yield from self._create(function))

            # Everything is busy: wait until someone releases.
            waiter = Event(env)
            self._waiters.append(waiter)
            try:
                yield waiter
            except BaseException:
                # interrupted while waiting (drain): withdraw cleanly
                if waiter in self._waiters:
                    self._waiters.remove(waiter)
                raise

    def release(self, container: Container) -> None:
        """Return a container to the warm set and wake one waiter."""
        container.busy = False
        container.last_used = self.env.now
        if self._waiters:
            self._waiters.pop(0).succeed()

    def destroy_all(self) -> None:
        """Tear down every container (invoker shutdown)."""
        self._containers.clear()
        for waiter in self._waiters:
            if not waiter.triggered:
                waiter.succeed()
        self._waiters.clear()

    # ------------------------------------------------------------------
    def _create(self, function: FunctionDef):
        env = self.env
        container = Container(function.name, env.now)
        container.busy = True
        self._containers.append(container)
        self.cold_starts += 1
        init = self.runtime.cold_start_delay()
        try:
            yield env.timeout(init)
        except BaseException:
            # interrupted mid-cold-start: the half-built container is junk
            if container in self._containers:
                self._containers.remove(container)
            raise
        container.last_used = env.now
        return container, init
