"""An activation store: OpenWhisk's CouchDB-backed activation history.

Real OpenWhisk persists every activation's record and serves
``wsk activation list / get / result``.  The controller's in-memory ledger
(:attr:`~repro.faas.controller.Controller.records`) is the raw data; this
module adds the query surface on top — time-range and status filters,
per-function aggregation, and the paper-relevant latency decomposition
(wait vs init vs run, Sec. II's warm/cold distinction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.faas.activation import ActivationRecord, ActivationStatus


@dataclass
class FunctionSummary:
    """Aggregate view of one function's activations."""

    function: str
    invocations: int
    successes: int
    failures: int
    timeouts: int
    cold_starts: int
    median_duration: float
    median_wait: float

    @property
    def success_rate(self) -> float:
        return self.successes / self.invocations if self.invocations else 0.0

    @property
    def cold_start_rate(self) -> float:
        return self.cold_starts / self.invocations if self.invocations else 0.0


class ActivationStore:
    """Query layer over a sequence of activation records."""

    def __init__(self, records: Sequence[ActivationRecord]) -> None:
        self._records = list(records)

    def __len__(self) -> int:
        return len(self._records)

    # -- wsk activation list ------------------------------------------------
    def list(
        self,
        function: Optional[str] = None,
        status: Optional[ActivationStatus] = None,
        since: Optional[float] = None,
        upto: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> List[ActivationRecord]:
        """Newest-first filtered listing (the ``wsk activation list`` shape)."""
        out = []
        for record in reversed(self._records):
            if function is not None and record.function != function:
                continue
            if status is not None and record.status is not status:
                continue
            if since is not None and record.submitted_at < since:
                continue
            if upto is not None and record.submitted_at >= upto:
                continue
            out.append(record)
            if limit is not None and len(out) >= limit:
                break
        return out

    def get(self, activation_id: str) -> ActivationRecord:
        for record in self._records:
            if record.activation_id == activation_id:
                return record
        raise KeyError(f"activation {activation_id!r} not found")

    # -- aggregation ----------------------------------------------------------
    def summarize_function(self, function: str) -> FunctionSummary:
        records = [r for r in self._records if r.function == function]
        durations = [r.duration for r in records if r.status is ActivationStatus.SUCCESS]
        waits = [r.wait_time for r in records if r.status is ActivationStatus.SUCCESS]
        return FunctionSummary(
            function=function,
            invocations=len(records),
            successes=sum(1 for r in records if r.status is ActivationStatus.SUCCESS),
            failures=sum(1 for r in records if r.status is ActivationStatus.FAILED),
            timeouts=sum(1 for r in records if r.status is ActivationStatus.TIMEOUT),
            cold_starts=sum(1 for r in records if r.init_time > 0),
            median_duration=float(np.median(durations)) if durations else 0.0,
            median_wait=float(np.median(waits)) if waits else 0.0,
        )

    def summaries(self) -> Dict[str, FunctionSummary]:
        functions = sorted({r.function for r in self._records})
        return {f: self.summarize_function(f) for f in functions}

    # -- latency decomposition ------------------------------------------------
    def latency_breakdown(self) -> Dict[str, float]:
        """Median wait / init / run split over successful activations."""
        ok = [r for r in self._records if r.status is ActivationStatus.SUCCESS]
        if not ok:
            return {"wait": 0.0, "init": 0.0, "run": 0.0, "count": 0}
        return {
            "wait": float(np.median([r.wait_time for r in ok])),
            "init": float(np.median([r.init_time for r in ok])),
            "run": float(np.median([r.duration for r in ok])),
            "count": len(ok),
        }

    def fast_laned_share(self) -> float:
        """Share of finished activations that travelled the fast lane."""
        finished = [r for r in self._records if r.finished]
        if not finished:
            return 0.0
        return sum(1 for r in finished if r.fast_laned) / len(finished)

    def render(self, limit: int = 20) -> str:
        """Aligned text view of per-function summaries."""
        lines = [
            f"{'function':<16} {'calls':>7} {'ok':>7} {'fail':>6} {'lost':>6} "
            f"{'cold%':>6} {'med run':>8} {'med wait':>9}"
        ]
        for name, summary in list(self.summaries().items())[:limit]:
            lines.append(
                f"{name:<16} {summary.invocations:>7d} {summary.successes:>7d} "
                f"{summary.failures:>6d} {summary.timeouts:>6d} "
                f"{summary.cold_start_rate * 100:>5.1f}% "
                f"{summary.median_duration * 1000:>6.1f}ms "
                f"{summary.median_wait * 1000:>7.1f}ms"
            )
        return "\n".join(lines)
