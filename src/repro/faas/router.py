"""Cross-cluster activation routing: the federation layer above the
per-cluster :class:`~repro.faas.loadbalancer.LoadBalancer`.

A federated controller routes in two stages: a
:class:`FederationRouter` picks the member *cluster*, then that
cluster's load balancer picks an invoker among the cluster's healthy
workers.  Three policies cover the scenario families the federation
enables:

* :class:`WeightedIdle` — **follow the idle**: pick a cluster with
  probability proportional to its healthy-worker count (a cluster with
  twice the harvested capacity absorbs twice the traffic).  Draws come
  from a named random stream, so runs are reproducible per seed.
* :class:`AffinityFirst` — hash the function name to a *home* cluster
  (stable over the sorted member ids, maximizing cross-request warm
  reuse within a cluster) and fall back along the sorted order when the
  home cluster has no healthy worker.
* :class:`Failover` — strict preference order (federation declaration
  order): all traffic to the first member with healthy workers; later
  members only absorb load during the primary's outages.

Every policy sees the same input — an ordered ``cluster_id -> healthy
invoker ids`` mapping — and returns a member id with at least one
healthy invoker, or ``None`` when the whole fleet is unavailable (the
controller then answers 503 exactly as in the single-cluster path).

The same policies drive **window-synchronized sharded execution**
(:mod:`repro.shard`): there the coordinator calls :meth:`~
FederationRouter.choose` once per invocation with the healthy views
reported at the *previous* sync-window boundary (conservatively stale
by at most one window) and ``broker=None`` — policies must not
dereference the broker, and none of the built-ins do.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.faas.broker import Broker


class FederationRouter:
    """Strategy interface: pick a member cluster for a function call."""

    name = "base"

    def bind_rng(self, rng: np.random.Generator) -> None:
        """Attach the run's named random stream (no-op for
        deterministic policies); called once during system assembly."""

    def choose(
        self,
        function: str,
        clusters: Dict[str, List[str]],
        broker: "Broker",
    ) -> Optional[str]:
        """Return a member id whose healthy list is non-empty, or None.

        ``clusters`` is ordered (federation declaration order) and maps
        every member — including currently-empty ones — to its healthy
        invoker ids.
        """
        raise NotImplementedError


def _populated(clusters: Dict[str, List[str]]) -> List[str]:
    """Member ids with at least one healthy invoker, declaration order."""
    return [cid for cid, healthy in clusters.items() if healthy]


class WeightedIdle(FederationRouter):
    """Weight members by healthy-worker count (follow-the-idle)."""

    name = "weighted-idle"

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng

    def bind_rng(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def choose(
        self, function: str, clusters: Dict[str, List[str]], broker: "Broker"
    ) -> Optional[str]:
        candidates = _populated(clusters)
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0]
        if self._rng is None:
            raise RuntimeError(
                "WeightedIdle router has no bound rng; call bind_rng() "
                "(system assembly does this from the 'router' stream)"
            )
        weights = np.array(
            [float(len(clusters[cid])) for cid in candidates]
        )
        weights = weights / weights.sum()
        index = int(self._rng.choice(len(candidates), p=weights))
        return candidates[index]


class AffinityFirst(FederationRouter):
    """Hash the function to a home cluster; fail over in sorted order."""

    name = "affinity-first"

    def choose(
        self, function: str, clusters: Dict[str, List[str]], broker: "Broker"
    ) -> Optional[str]:
        members = sorted(clusters)
        if not members:
            return None
        home = zlib.crc32(function.encode("utf-8")) % len(members)
        for offset in range(len(members)):
            cid = members[(home + offset) % len(members)]
            if clusters[cid]:
                return cid
        return None


class Failover(FederationRouter):
    """All traffic to the first declared member with healthy workers."""

    name = "failover"

    def choose(
        self, function: str, clusters: Dict[str, List[str]], broker: "Broker"
    ) -> Optional[str]:
        for cid, healthy in clusters.items():
            if healthy:
                return cid
        return None


#: policy catalogue keyed by router name (the `router:` config values)
ROUTERS = {
    WeightedIdle.name: WeightedIdle,
    AffinityFirst.name: AffinityFirst,
    Failover.name: Failover,
}
