"""Cross-cluster activation routing: the federation layer above the
per-cluster :class:`~repro.faas.loadbalancer.LoadBalancer`.

A federated controller routes in two stages: a
:class:`FederationRouter` picks the member *cluster*, then that
cluster's load balancer picks an invoker among the cluster's healthy
workers.  Three policies cover the scenario families the federation
enables:

* :class:`WeightedIdle` — **follow the idle**: pick a cluster with
  probability proportional to its healthy-worker count (a cluster with
  twice the harvested capacity absorbs twice the traffic).  Draws come
  from a named random stream, so runs are reproducible per seed.
* :class:`AffinityFirst` — hash the function name to a *home* cluster
  (stable over the sorted member ids, maximizing cross-request warm
  reuse within a cluster) and fall back along the sorted order when the
  home cluster has no healthy worker.
* :class:`Failover` — strict preference order (federation declaration
  order): all traffic to the first member with healthy workers; later
  members only absorb load during the primary's outages.

Every policy sees the same input — an ordered ``cluster_id -> healthy
invoker ids`` mapping — and returns a member id with at least one
healthy invoker, or ``None`` when the whole fleet is unavailable (the
controller then answers 503 exactly as in the single-cluster path).

The same policies drive **window-synchronized sharded execution**
(:mod:`repro.shard`): there the coordinator calls :meth:`~
FederationRouter.choose` once per invocation with the healthy views
reported at the *previous* sync-window boundary (conservatively stale
by at most one window) and ``broker=None`` — policies must not
dereference the broker, and none of the built-ins do.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.faas.broker import Broker


class FederationRouter:
    """Strategy interface: pick a member cluster for a function call."""

    name = "base"

    def bind_rng(self, rng: np.random.Generator) -> None:
        """Attach the run's named random stream (no-op for
        deterministic policies); called once during system assembly."""

    def choose(
        self,
        function: str,
        clusters: Dict[str, List[str]],
        broker: "Broker",
    ) -> Optional[str]:
        """Return a member id whose healthy list is non-empty, or None.

        ``clusters`` is ordered (federation declaration order) and maps
        every member — including currently-empty ones — to its healthy
        invoker ids.
        """
        raise NotImplementedError


#: shared empty result for the single-member fast path below; read-only
_NO_MEMBERS: List[str] = []


def _populated(clusters: Dict[str, List[str]]) -> List[str]:
    """Member ids with at least one healthy invoker, declaration order.

    The N=1 federation (which ROADMAP pins byte-identical to the
    unfederated system) short-circuits without building a fresh list
    per invocation — single-member is the common degenerate case on the
    invoke hot path.
    """
    if len(clusters) == 1:
        for cid, healthy in clusters.items():
            if healthy:
                return [cid]
            return _NO_MEMBERS
    return [cid for cid, healthy in clusters.items() if healthy]


class WeightedIdle(FederationRouter):
    """Weight members by healthy-worker count (follow-the-idle).

    The candidate list and the cumulative weight distribution are
    cached per healthy *view* (keyed on dict identity — providers hand
    out a new dict per state change and never mutate one in place; the
    cache holds a strong reference so the id cannot be recycled).  The
    draw itself consumes the bound rng stream exactly like
    ``rng.choice(n, p=weights)`` did — one uniform double inverted
    through the same normalized cumsum — so routing decisions are
    byte-identical to the rescan implementation, draw for draw.
    """

    name = "weighted-idle"

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng
        self._view: Optional[Dict[str, List[str]]] = None
        self._candidates: List[str] = []
        self._cdf: Optional[np.ndarray] = None

    def bind_rng(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def choose(
        self, function: str, clusters: Dict[str, List[str]], broker: "Broker"
    ) -> Optional[str]:
        if clusters is self._view:
            candidates = self._candidates
        else:
            candidates = _populated(clusters)
            cdf = None
            if len(candidates) > 1:
                # Mirrors np.random.Generator.choice(p=...): normalize,
                # cumsum, renormalize the last bin to exactly 1.0 —
                # identical float ops, so identical inversions.
                weights = np.array(
                    [float(len(clusters[cid])) for cid in candidates]
                )
                weights = weights / weights.sum()
                cdf = weights.cumsum()
                cdf /= cdf[-1]
            self._view = clusters
            self._candidates = candidates
            self._cdf = cdf
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0]
        if self._rng is None:
            raise RuntimeError(
                "WeightedIdle router has no bound rng; call bind_rng() "
                "(system assembly does this from the 'router' stream)"
            )
        index = int(self._cdf.searchsorted(self._rng.random(), side="right"))
        return candidates[index]


class AffinityFirst(FederationRouter):
    """Hash the function to a home cluster; fail over in sorted order.

    Caches the sorted member list per healthy view (dict identity, see
    :class:`WeightedIdle`) and the crc32 of each function name seen —
    both are pure functions of their inputs, so the cached path returns
    exactly what the recompute did.
    """

    name = "affinity-first"

    def __init__(self) -> None:
        self._view: Optional[Dict[str, List[str]]] = None
        self._members: List[str] = []
        self._crc: Dict[str, int] = {}

    def choose(
        self, function: str, clusters: Dict[str, List[str]], broker: "Broker"
    ) -> Optional[str]:
        if clusters is self._view:
            members = self._members
        else:
            members = sorted(clusters)
            self._view = clusters
            self._members = members
        if not members:
            return None
        crc = self._crc.get(function)
        if crc is None:
            crc = self._crc[function] = zlib.crc32(function.encode("utf-8"))
        home = crc % len(members)
        for offset in range(len(members)):
            cid = members[(home + offset) % len(members)]
            if clusters[cid]:
                return cid
        return None


class Failover(FederationRouter):
    """All traffic to the first declared member with healthy workers.

    The winning member is cached per healthy view (dict identity, see
    :class:`WeightedIdle`): the preference scan only reruns when the
    fleet state actually changed.
    """

    name = "failover"

    def __init__(self) -> None:
        self._view: Optional[Dict[str, List[str]]] = None
        self._first: Optional[str] = None

    def choose(
        self, function: str, clusters: Dict[str, List[str]], broker: "Broker"
    ) -> Optional[str]:
        if clusters is self._view:
            return self._first
        first = None
        for cid, healthy in clusters.items():
            if healthy:
                first = cid
                break
        self._view = clusters
        self._first = first
        return first


#: policy catalogue keyed by router name (the `router:` config values)
ROUTERS = {
    WeightedIdle.name: WeightedIdle,
    AffinityFirst.name: AffinityFirst,
    Failover.name: Failover,
}
