"""Controller-side load-balancing strategies.

OpenWhisk routes by hashed function name to maximize warm-container reuse
(Sec. II) — that is :class:`HashAffinity`, the default.  Two alternatives
are provided for the ablation benchmarks:

* :class:`RoundRobin` — even spread, oblivious to warm containers;
* :class:`LeastLoaded` — route to the invoker with the shallowest queue
  (topic depth), trading warm hits for queueing delay.

The paper's responsiveness experiment sidesteps the affinity/balance trade
by deploying 100 identically-bodied functions with distinct names; the
ablation quantifies what that trick buys.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.faas.broker import Broker


class LoadBalancer:
    """Strategy interface: pick a healthy invoker for a function call."""

    name = "base"

    def choose(
        self, function: str, healthy: List[str], broker: "Broker"
    ) -> Optional[str]:
        raise NotImplementedError


class HashAffinity(LoadBalancer):
    """Stock OpenWhisk: hash the function name over the healthy list.

    The crc32 of each function name is cached — it is a pure function
    of the name, computed once per deployed function instead of once
    per invocation (encode + crc32 was measurable on the invoke hot
    path at bench scale).
    """

    name = "hash-affinity"

    def __init__(self) -> None:
        self._crc: dict = {}

    def choose(self, function: str, healthy: List[str], broker: "Broker") -> Optional[str]:
        if not healthy:
            return None
        crc = self._crc.get(function)
        if crc is None:
            crc = self._crc[function] = zlib.crc32(function.encode("utf-8"))
        return healthy[crc % len(healthy)]


class RoundRobin(LoadBalancer):
    """Cycle through healthy invokers regardless of function."""

    name = "round-robin"

    def __init__(self) -> None:
        self._counter = 0

    def choose(self, function: str, healthy: List[str], broker: "Broker") -> Optional[str]:
        if not healthy:
            return None
        choice = healthy[self._counter % len(healthy)]
        self._counter += 1
        return choice


class LeastLoaded(LoadBalancer):
    """Route to the invoker with the fewest unconsumed messages."""

    name = "least-loaded"

    def choose(self, function: str, healthy: List[str], broker: "Broker") -> Optional[str]:
        if not healthy:
            return None
        return min(healthy, key=lambda i: (broker.depth(f"invoker-{i}"), i))
