"""The live scheduler: a queue-manager + work-signaler event-step loop.

This is the nanofaas control-plane ``Scheduler`` shape transplanted onto
the simulation kernel.  nanofaas runs a single scheduler thread over a
blocking queue of active functions plus a ``signalWork`` wakeup; here the
single consumer is an asyncio task, the blocking queue is the **inbox**
of injected work (thunks handed over by the HTTP transport), and the
work signal is an :class:`asyncio.Event` that interrupts any pacing
sleep the moment new work arrives.

The loop body:

1. Clear the signal, then drain the inbox (in that order — a submit that
   lands between the drain and the next wait re-raises the signal, so no
   wakeup is ever lost).
2. ``t = env.peek()`` — the next scheduled kernel event.
3. Nothing queued → park on the signal until the transport injects work.
4. ``t`` still in the future → sleep until its wall time, but racing the
   signal (``wait_for(signal, delay)``) so injection cuts the sleep
   short.
5. ``t`` is due → step the environment through every event whose kernel
   time has been reached, in batches of ``max_batch`` with an
   ``await asyncio.sleep(0)`` between batches so the transport coroutines
   keep breathing under load.

The same ``Environment`` semantics hold as in simulated mode — events
fire in (time, priority, insertion) order — the kernel only *paces* them
against the :class:`~repro.live.clock.WallClock` instead of collapsing
all waiting to zero.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Callable, Deque, Optional

from repro.live.clock import WallClock
from repro.sim.core import EmptySchedule, Environment

_INF = float("inf")


class LiveKernel:
    """Paces an :class:`Environment` against a :class:`WallClock`.

    The kernel owns no sockets and no simulation objects; it is purely
    the consumer loop.  Producers (the HTTP transport, the replay
    driver) hand work over with :meth:`submit`, which runs the thunk on
    the loop thread and wakes the scheduler.
    """

    def __init__(
        self,
        env: Environment,
        clock: Optional[WallClock] = None,
        max_batch: int = 256,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.env = env
        self.clock = clock or WallClock()
        self.max_batch = int(max_batch)
        self._inbox: Deque[Callable[[], None]] = deque()
        self._signal = asyncio.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._running = False
        self._finished = asyncio.Event()
        #: kernel events processed by this live loop
        self.steps = 0
        #: thunks drained from the inbox
        self.submissions = 0

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def submit(self, thunk: Callable[[], None]) -> None:
        """Queue *thunk* to run on the scheduler loop and wake it.

        Safe to call from any thread: off-loop callers are marshalled in
        via ``call_soon_threadsafe``.  The thunk runs on the loop thread
        before the next pacing decision, so it may freely start processes
        and schedule events on the environment.
        """
        loop = self._loop
        if loop is not None and loop is not _current_loop():
            loop.call_soon_threadsafe(self._enqueue, thunk)
        else:
            self._enqueue(thunk)

    def _enqueue(self, thunk: Callable[[], None]) -> None:
        self._inbox.append(thunk)
        self._signal.set()

    def signal(self) -> None:
        """Wake the scheduler without queueing work (e.g. after stop())."""
        loop = self._loop
        if loop is not None and loop is not _current_loop():
            loop.call_soon_threadsafe(self._signal.set)
        else:
            self._signal.set()

    # ------------------------------------------------------------------
    # consumer loop
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    def stop(self) -> None:
        """Ask the loop to exit after the current batch."""
        self._running = False
        self.signal()

    async def wait_finished(self) -> None:
        await self._finished.wait()

    async def run(self) -> None:
        """The scheduler loop; runs until :meth:`stop` is called.

        Events already due when the loop observes them are processed
        immediately; future events are paced to their wall time unless a
        submission arrives first.
        """
        self._loop = asyncio.get_running_loop()
        if not self.clock.started:
            self.clock.start(kernel_now=self.env.now)
        self._running = True
        self._finished.clear()
        env = self.env
        clock = self.clock
        inbox = self._inbox
        signal = self._signal
        try:
            while self._running:
                # 1. clear-then-drain: a submit landing after the drain
                #    re-sets the signal, so the next wait returns at once.
                signal.clear()
                while inbox:
                    thunk = inbox.popleft()
                    self.submissions += 1
                    thunk()

                # 2. next kernel event
                next_t = env.peek()
                if next_t == _INF:
                    await signal.wait()
                    continue

                # 3. pace: sleep until the event's wall time, racing the
                #    work signal so injection cuts the sleep short.
                delay = clock.wall_delay(next_t)
                if delay > 0:
                    try:
                        await asyncio.wait_for(signal.wait(), timeout=delay)
                    except asyncio.TimeoutError:
                        pass
                    continue

                # 4. due: step through everything whose kernel time has
                #    been reached, yielding between batches.
                horizon = clock.kernel_now()
                stepped = 0
                while env.peek() <= horizon:
                    try:
                        env.step()
                    except EmptySchedule:  # pragma: no cover - race guard
                        break
                    self.steps += 1
                    stepped += 1
                    if stepped >= self.max_batch:
                        break
                await asyncio.sleep(0)
        finally:
            self._running = False
            self._finished.set()


def _current_loop() -> Optional[asyncio.AbstractEventLoop]:
    try:
        return asyncio.get_running_loop()
    except RuntimeError:
        return None
