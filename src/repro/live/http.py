"""The transport half of the clock + transport split: stdlib HTTP.

A deliberately small asyncio HTTP/1.1 server (``asyncio.start_server``
plus a hand-rolled request parser) so live mode needs **no third-party
HTTP stack** — the container images this repo targets carry only the
scientific Python toolchain.  The surface mirrors the OpenWhisk-ish
front door the paper's Gatling harness spoke to:

* ``POST /invoke/<function>`` — body ``{"duration": …, "cluster": …}``
  (both optional); blocks until the activation settles and answers with
  the activation JSON.  Status mapping: ``SUCCESS → 200``,
  ``UNAVAILABLE → 503`` (no healthy invoker), ``TIMEOUT → 504``,
  ``FAILED → 404`` when the function is not deployed else ``500``.
* ``GET /healthz`` — liveness: kernel time, healthy invoker count,
  in-flight count.  Replay polls this until the fleet is up.
* ``GET /stats`` — the full :meth:`~repro.live.service.LiveControlPlane.
  snapshot`.
* ``POST /shutdown`` — graceful drain-and-stop (a dev/CI affordance:
  the smoke test ends a background server without process signals).

Connections are ``close``-per-request — replay drivers open one
connection per invocation, which keeps the parser honest and the server
free of keep-alive state machines.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.faas.activation import ActivationResult, ActivationStatus
from repro.live.service import LiveControlPlane, ServiceStopped

_MAX_HEADER_BYTES = 32 * 1024
_MAX_BODY_BYTES = 1024 * 1024

_STATUS_TO_HTTP = {
    ActivationStatus.SUCCESS: 200,
    ActivationStatus.UNAVAILABLE: 503,
    ActivationStatus.TIMEOUT: 504,
    ActivationStatus.FAILED: 500,
}

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def result_to_payload(result: ActivationResult) -> Dict[str, Any]:
    """The activation JSON the wire carries (replay reverses this)."""
    return {
        "activation_id": result.activation_id,
        "function": result.function,
        "status": result.status.value,
        "response_time": result.response_time,
        "backend": result.backend,
        "error": result.error,
    }


def http_status_for(result: ActivationResult) -> int:
    """Map an activation outcome to its HTTP status code."""
    code = _STATUS_TO_HTTP[result.status]
    if (
        result.status is ActivationStatus.FAILED
        and result.error is not None
        and "not deployed" in result.error
    ):
        return 404
    return code


class LiveServer:
    """HTTP front door over a :class:`LiveControlPlane`."""

    def __init__(
        self,
        service: LiveControlPlane,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Start the control plane and begin accepting connections.

        Returns the bound ``(host, port)`` — with ``port=0`` the OS
        picks an ephemeral port, which the loopback tests rely on.
        """
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]
        return self.host, self.port

    async def stop(self, drain: bool = True) -> None:
        """Close the listener, then drain and stop the control plane."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop(drain=drain)
        self._shutdown.set()

    async def wait_shutdown(self) -> None:
        """Block until a ``POST /shutdown`` (or :meth:`stop`) completes."""
        await self._shutdown.wait()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await _read_request(reader)
            if request is None:
                await _respond(writer, 400, {"error": "malformed request"})
                return
            method, path, body = request
            status, payload = await self._route(method, path, body)
            await _respond(writer, status, payload)
            if method == "POST" and path == "/shutdown" and status == 200:
                # Respond first, then drain: the client sees the ack
                # before the listener goes away.
                asyncio.ensure_future(self.stop(drain=True))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        if path.startswith("/invoke/"):
            if method != "POST":
                return 405, {"error": "use POST for /invoke/<function>"}
            function = path[len("/invoke/") :]
            if not function:
                return 400, {"error": "missing function name"}
            try:
                params = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                return 400, {"error": "body must be a JSON object"}
            if not isinstance(params, dict):
                return 400, {"error": "body must be a JSON object"}
            duration = params.get("duration")
            cluster = params.get("cluster")
            try:
                result = await self.service.invoke(
                    function,
                    duration=None if duration is None else float(duration),
                    cluster=None if cluster is None else str(cluster),
                )
            except ServiceStopped:
                return 503, {"error": "shutting down"}
            return http_status_for(result), result_to_payload(result)
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET for /healthz"}
            snap = self.service.snapshot()
            return 200, {
                "ok": True,
                "kernel_now": snap["kernel_now"],
                "healthy_invokers": snap["healthy_invokers"],
                "inflight": snap["inflight"],
                "accepting": snap["accepting"],
            }
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "use GET for /stats"}
            return 200, self.service.snapshot()
        if path == "/shutdown":
            if method != "POST":
                return 405, {"error": "use POST for /shutdown"}
            return 200, {"ok": True, "draining": self.service.inflight}
        return 404, {"error": f"no route {method} {path}"}


# ---------------------------------------------------------------------------
# wire helpers (shared with the replay client)
# ---------------------------------------------------------------------------


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, bytes]]:
    """Parse one HTTP/1.1 request: ``(method, path, body)`` or None."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
        return None
    if len(head) > _MAX_HEADER_BYTES:
        return None
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        return None
    method, target, _version = parts
    content_length = 0
    for line in lines[1:]:
        if ":" not in line:
            continue
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                return None
    if content_length < 0 or content_length > _MAX_BODY_BYTES:
        return None
    body = b""
    if content_length:
        try:
            body = await reader.readexactly(content_length)
        except asyncio.IncompleteReadError:
            return None
    path = target.split("?", 1)[0]
    return method.upper(), path, body


async def _respond(
    writer: asyncio.StreamWriter, status: int, payload: Dict[str, Any]
) -> None:
    body = json.dumps(payload).encode("utf-8")
    reason = _REASONS.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("latin-1")
    writer.write(head + body)
    await writer.drain()


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[Dict[str, Any]] = None,
    timeout: float = 30.0,
) -> Tuple[int, Dict[str, Any]]:
    """One client request over a fresh connection (stdlib only).

    Returns ``(http_status, decoded_json_body)``; used by the replay
    driver and the CI smoke probes.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout=timeout
    )
    try:
        body = json.dumps(payload).encode("utf-8") if payload is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass
    head_raw, _, body_raw = raw.partition(b"\r\n\r\n")
    status_line = head_raw.split(b"\r\n", 1)[0].decode("latin-1")
    parts = status_line.split(" ")
    if len(parts) < 2 or not parts[1].isdigit():
        raise ValueError(f"malformed response: {status_line!r}")
    status = int(parts[1])
    decoded = json.loads(body_raw.decode("utf-8")) if body_raw else {}
    return status, decoded
