"""The live control plane: a stack served as a long-running service.

:class:`LiveControlPlane` builds the **same** system a simulated run
builds — ``Stack.build()`` wires cluster, supply, middleware and router
exactly as ``repro run`` does — but instead of attaching workloads and
calling ``env.run(until=horizon)``, it parks the environment on a
:class:`~repro.live.kernel.LiveKernel` and exposes invocation as an
``async`` call.  Broker, Controller, LoadBalancer and supply policies
execute unmodified; only the pacing differs.

Two worlds meet here:

* the **kernel world** — generators yielding simulation events, single
  threaded, driven by the live kernel's step loop;
* the **asyncio world** — HTTP handlers and the replay driver awaiting
  results.

The bridge is one pattern: an async caller submits a thunk that starts
an invocation *process* on the environment; a callback appended to the
process resolves an :class:`asyncio.Future` when the process settles.
Arrival timestamps map wall→kernel via ``max(0, clock.kernel_now() -
env.now)``: the invocation generator first yields a timeout that carries
the environment up to "now" under the wall clock, so an event is never
scheduled in the past and idle periods cost no CPU.

Workload specs in the stack are **not** attached — in live mode the
workload section of a config describes the *replay traffic* (see
:class:`~repro.live.replay.ReplayDriver`), not server-internal load —
but their function catalogue is deployed at startup so replayed requests
find their targets.
"""

from __future__ import annotations

import asyncio
from dataclasses import replace
from typing import Any, Dict, Optional

from repro.api.registry import COMPONENTS, ComponentRegistry
from repro.api.stack import Stack, StackContext
from repro.faas.activation import ActivationResult
from repro.faas.functions import FunctionDef, sleep_functions
from repro.live.clock import WallClock
from repro.live.kernel import LiveKernel


class ServiceStopped(RuntimeError):
    """Raised to callers who invoke after shutdown began."""


class LiveControlPlane:
    """Runs one stack's control plane against the wall clock.

    ``speed`` is kernel seconds per wall second (see
    :class:`~repro.live.clock.WallClock`).  The service deploys the
    function catalogue implied by the stack's ``faas-stream`` workload
    specs (count × duration → the same deterministic ``sleep-NNN``
    catalogue the simulator deploys), so a replay of that workload
    finds every function it invokes.
    """

    def __init__(
        self,
        stack: Stack,
        speed: float = 1.0,
        registry: ComponentRegistry = COMPONENTS,
        clock: Optional[WallClock] = None,
        max_batch: int = 256,
    ) -> None:
        #: the stack as served: same components, workloads/probes stripped
        self.stack = replace(stack, workloads=(), probes=())
        #: the original stack (replay reads workload specs from here)
        self.source_stack = stack
        self.ctx: StackContext = self.stack.build(registry)
        if self.ctx.system.controller is None:
            raise ValueError("live mode needs middleware in the stack")
        self.kernel = LiveKernel(
            self.ctx.env, clock or WallClock(speed), max_batch=max_batch
        )
        self._task: Optional[asyncio.Task] = None
        self._accepting = False
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        #: requests accepted by :meth:`invoke` over the service lifetime
        self.requests_total = 0
        for fn in catalogue_functions(stack):
            self.ctx.system.controller.deploy(fn)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the scheduler loop; returns once it is running."""
        if self._task is not None:
            raise RuntimeError("service already started")
        self._accepting = True
        self._task = asyncio.ensure_future(self.kernel.run())
        # Yield once so the kernel task anchors its clock before the
        # first invocation computes an arrival delay.
        await asyncio.sleep(0)

    async def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Graceful shutdown: stop accepting, drain in-flight, halt.

        With ``drain`` the call waits (bounded by ``timeout`` wall
        seconds) until every accepted invocation has settled before the
        kernel stops — the nanofaas ``stop()``/``awaitTermination``
        contract.
        """
        self._accepting = False
        if drain and self._inflight:
            try:
                await asyncio.wait_for(self._idle.wait(), timeout=timeout)
            except asyncio.TimeoutError:  # pragma: no cover - defensive
                pass
        for manager in self.ctx.system.managers.values():
            manager.stop()
        self.kernel.stop()
        if self._task is not None:
            await self._task
            self._task = None

    @property
    def accepting(self) -> bool:
        return self._accepting

    @property
    def inflight(self) -> int:
        """Invocations accepted by the service and not yet settled."""
        return self._inflight

    # ------------------------------------------------------------------
    # invocation bridge (asyncio -> kernel process -> asyncio)
    # ------------------------------------------------------------------
    async def invoke(
        self,
        function: str,
        duration: Optional[float] = None,
        cluster: Optional[str] = None,
    ) -> ActivationResult:
        """One blocking invocation through the real control plane.

        Submits onto the scheduler loop, runs the same
        ``FaaSClient.invoke`` generator the simulator runs, and resolves
        when the activation settles.  The environment's clock is pulled
        up to the wall-mapped arrival time first.
        """
        if not self._accepting:
            raise ServiceStopped("control plane is shutting down")
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[ActivationResult]" = loop.create_future()
        self._inflight += 1
        self._idle.clear()
        self.requests_total += 1

        env = self.ctx.env
        clock = self.kernel.clock
        client = self.ctx.system.client

        def request():
            delay = max(0.0, clock.kernel_now() - env.now)
            if delay > 0:
                yield env.timeout(delay)
            result = yield from client.invoke(
                function, duration=duration, cluster=cluster
            )
            return result

        def settle(event) -> None:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()
            if future.cancelled():  # pragma: no cover - caller went away
                event.defused = True
                return
            if event.failed:
                event.defused = True
                future.set_exception(event.value)
            else:
                future.set_result(event.value)

        def inject() -> None:
            process = env.process(request())
            process.callbacks.append(settle)

        self.kernel.submit(inject)
        return await future

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A pure-read health/stats view (the /healthz + /stats payload)."""
        controller = self.ctx.system.controller
        state = controller.snapshot()
        state.update(
            kernel_now=self.ctx.env.now,
            clock_now=(
                self.kernel.clock.kernel_now() if self.kernel.clock.started else 0.0
            ),
            speed=self.kernel.clock.speed,
            accepting=self._accepting,
            service_inflight=self._inflight,
            requests_total=self.requests_total,
            kernel_steps=self.kernel.steps,
        )
        return state


def catalogue_functions(stack: Stack) -> "list[FunctionDef]":
    """The function catalogue a stack's stream workloads imply.

    Mirrors :func:`repro.api.components.build_stream_plan`'s catalogue
    derivation (``functions`` count × fixed ``duration`` →
    ``sleep-NNN`` defs) without consuming any random stream, so serving
    deploys exactly the functions a seeded replay will call.
    """
    catalogue: Dict[str, FunctionDef] = {}
    for spec in stack.workloads:
        if spec.name != "faas-stream":
            continue
        count = int(spec.options.get("functions", 100))
        fn_duration = float(spec.options.get("duration", 0.010))
        for fn in sleep_functions(count, fn_duration):
            catalogue[fn.name] = fn
    return list(catalogue.values())
