"""Replay a seeded streaming workload over the wire.

The simulator and the live service must be fed the **same invocation
sequence** for a parity claim to mean anything, so the replay driver
does not invent traffic: it rebuilds the exact
:class:`~repro.workloads.streaming.StreamSource` a stack's
``faas-stream`` workload spec describes — same named random stream
(``RandomStreams(seed).stream("stream")``), same options through
:func:`~repro.api.components.build_stream_plan` — and then *paces* the
arrivals against the wall clock instead of the event queue, firing each
invocation as a ``POST /invoke/<function>`` over a fresh loopback
connection.

Outcomes fold into the same :class:`~repro.workloads.streaming.
StreamReport` aggregate the simulated probe produces (response times in
kernel seconds, as reported by the server), wrapped in a
:class:`ReplaySummary` that adds the wall-clock cost — so a live run
emits ``stream_*`` metrics directly comparable with a simulated run of
the same config, and flows into the results warehouse as run kind
``live``.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlparse

from repro.api.components import build_stream_plan
from repro.api.registry import COMPONENTS, ComponentRegistry, load_builtin_components
from repro.api.stack import Stack, WorkloadSpec
from repro.faas.activation import ActivationStatus
from repro.live.http import LiveServer, http_request
from repro.live.service import LiveControlPlane
from repro.sim import RandomStreams
from repro.workloads.faas_trace import Invocation
from repro.workloads.streaming import StreamReport


def member_cluster_ids(stack: Stack, registry: ComponentRegistry = COMPONENTS):
    """Member cluster ids exactly as ``Stack.build`` assigns them.

    Region-tagged sources mark invocations with member ids; the replay
    client needs the same ids without building a whole system.
    """
    load_builtin_components()
    ids = []
    for index, spec in enumerate(stack.member_clusters()):
        member = registry.get("cluster", spec.name).factory(**spec.options)
        ids.append(member.cluster_id or f"c{index}")
    return ids


def stream_spec(stack: Stack) -> WorkloadSpec:
    """The stack's ``faas-stream`` workload spec (the replay traffic)."""
    for spec in stack.workloads:
        if spec.name == "faas-stream":
            return spec
    raise ValueError(
        "replay needs a 'faas-stream' workload in the stack config; "
        f"declared workloads: {[spec.name for spec in stack.workloads]}"
    )


@dataclass
class ReplaySummary:
    """One live replay, summarized StreamReport-style plus wall cost."""

    name: str
    seed: int
    horizon: float
    speed: float
    url: str
    report: StreamReport
    wall_time_s: float = 0.0
    #: requests that failed at the transport layer (no activation JSON)
    transport_errors: int = 0

    def metrics(self) -> Dict[str, float]:
        """``stream_*`` metrics (sim-comparable) plus ``live_*`` extras."""
        out = self.report.metrics(prefix="stream_")
        out["live_wall_time_s"] = self.wall_time_s
        out["live_speed"] = self.speed
        out["live_transport_errors"] = float(self.transport_errors)
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stack": self.name,
            "seed": self.seed,
            "horizon": self.horizon,
            "url": self.url,
            "by_status": {k: self.report.by_status[k] for k in sorted(self.report.by_status)},
            "metrics": {k: v for k, v in sorted(self.metrics().items())},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        from repro.analysis.report import render_kv

        return render_kv(f"{self.name} — live replay report", self.metrics())


class ReplayDriver:
    """Paces a stack's seeded stream over HTTP against a live server."""

    def __init__(
        self,
        stack: Stack,
        host: str,
        port: int,
        speed: float = 1.0,
        horizon: Optional[float] = None,
        registry: ComponentRegistry = COMPONENTS,
        max_concurrency: int = 256,
        request_timeout: float = 60.0,
    ) -> None:
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.stack = stack
        self.host = host
        self.port = port
        self.speed = float(speed)
        spec = stream_spec(stack)
        options = dict(spec.options)
        if horizon is None:
            horizon = float(options.get("horizon", stack.horizon))
        self.horizon = float(horizon)
        rng = RandomStreams(stack.seed).stream("stream")
        _functions, self.source = build_stream_plan(
            rng, member_cluster_ids(stack, registry), options
        )
        self.report = StreamReport()
        self._gate = asyncio.Semaphore(max_concurrency)
        self._request_timeout = float(request_timeout)
        self.transport_errors = 0

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    async def wait_ready(
        self, min_invokers: int = 1, timeout: float = 30.0
    ) -> Dict[str, Any]:
        """Poll ``/healthz`` until the fleet is up (or raise).

        Live supplies register invokers asynchronously (in kernel time,
        paced by the wall clock), so replay waits for capacity before
        anchoring its arrival clock — otherwise a fast client would
        measure the server's boot, not its steady state.
        """
        deadline = time.monotonic() + timeout
        last: Dict[str, Any] = {}
        while time.monotonic() < deadline:
            try:
                status, payload = await http_request(
                    self.host, self.port, "GET", "/healthz", timeout=5.0
                )
            except (ConnectionError, OSError, asyncio.TimeoutError, ValueError):
                status, payload = 0, {}
            last = payload
            if status == 200 and payload.get("healthy_invokers", 0) >= min_invokers:
                return payload
            await asyncio.sleep(0.05)
        raise TimeoutError(
            f"server at {self.url} not ready after {timeout}s (last: {last})"
        )

    async def run(self) -> ReplaySummary:
        """Replay the full stream; returns when every request settled."""
        started = time.monotonic()
        self.report.run_horizon = self.horizon
        tasks = []
        for invocation in self.source.iter_invocations(self.horizon):
            target_wall = started + invocation.time / self.speed
            delay = target_wall - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(asyncio.ensure_future(self._fire(invocation)))
        if tasks:
            await asyncio.gather(*tasks)
        return ReplaySummary(
            name=self.stack.name,
            seed=self.stack.seed,
            horizon=self.horizon,
            speed=self.speed,
            url=self.url,
            report=self.report,
            wall_time_s=time.monotonic() - started,
            transport_errors=self.transport_errors,
        )

    async def _fire(self, invocation: Invocation) -> None:
        payload: Dict[str, Any] = {"duration": invocation.duration}
        if invocation.cluster is not None:
            payload["cluster"] = invocation.cluster
        async with self._gate:
            try:
                _status, body = await http_request(
                    self.host,
                    self.port,
                    "POST",
                    f"/invoke/{invocation.function}",
                    payload,
                    timeout=self._request_timeout,
                )
            except (ConnectionError, OSError, asyncio.TimeoutError, ValueError):
                self.transport_errors += 1
                self.report.add(ActivationStatus.FAILED, 0.0)
                return
        try:
            status = ActivationStatus(body.get("status"))
        except ValueError:
            self.transport_errors += 1
            self.report.add(ActivationStatus.FAILED, 0.0)
            return
        self.report.add(status, float(body.get("response_time") or 0.0))


# ---------------------------------------------------------------------------
# the one-call front door (CLI + tests)
# ---------------------------------------------------------------------------


def parse_url(url: str) -> Tuple[str, int]:
    parsed = urlparse(url if "//" in url else f"http://{url}")
    if not parsed.hostname or not parsed.port:
        raise ValueError(f"need host:port in url, got {url!r}")
    return parsed.hostname, parsed.port


def replay_config(
    stack: Stack,
    url: Optional[str] = None,
    speed: float = 1.0,
    horizon: Optional[float] = None,
    registry: ComponentRegistry = COMPONENTS,
    store: bool = True,
) -> ReplaySummary:
    """Replay a stack's stream workload against a live server.

    With ``url`` given, drives an already-running ``repro serve``
    process; without it, spins up an in-process loopback server from the
    same stack (build → serve → replay → drain) — the CI smoke path and
    the parity test's live half.  With ``store`` the summary is captured
    into the results warehouse (run kind ``live``) exactly like any
    simulated run.
    """
    summary = asyncio.run(
        _replay_async(stack, url, speed, horizon, registry)
    )
    if store:
        from repro.warehouse import capture

        capture.record_live(summary)
    return summary


async def _replay_async(
    stack: Stack,
    url: Optional[str],
    speed: float,
    horizon: Optional[float],
    registry: ComponentRegistry,
) -> ReplaySummary:
    server: Optional[LiveServer] = None
    if url is None:
        service = LiveControlPlane(stack, speed=speed, registry=registry)
        server = LiveServer(service, host="127.0.0.1", port=0)
        host, port = await server.start()
    else:
        host, port = parse_url(url)
    try:
        driver = ReplayDriver(
            stack, host, port, speed=speed, horizon=horizon, registry=registry
        )
        await driver.wait_ready()
        return await driver.run()
    finally:
        if server is not None:
            await server.stop(drain=True)
