"""Live control-plane mode: the sim-to-real execution path.

The middleware model (Broker / Controller / LoadBalancer / supply
policies) normally lives inside simulated time — the kernel advances the
clock event by event as fast as the CPU allows.  This package runs the
**exact same objects** against the wall clock instead, behind a small
clock + transport split:

* :class:`~repro.live.clock.WallClock` — the clock half: an affine map
  between kernel (simulated) seconds and wall (monotonic) seconds with a
  configurable speed factor, so a deployment can run at real time
  (``speed=1``) or accelerated (``speed=60`` = one sim minute per wall
  second).
* :class:`~repro.live.kernel.LiveKernel` — the scheduler: a queue
  manager + work-signaler loop (modeled on the nanofaas control-plane
  ``Scheduler``) that paces ``Environment.step()`` against the wall
  clock and wakes instantly when the transport injects new work.
* :class:`~repro.live.service.LiveControlPlane` — the service: builds a
  stack (cluster × supply × middleware, the same YAML front door as
  ``repro run``) on a live kernel and exposes ``invoke`` as a coroutine.
* :class:`~repro.live.http.LiveServer` — the transport half: a
  stdlib-asyncio HTTP server (``POST /invoke/<function>``, ``GET
  /healthz``, ``GET /stats``) over the service.  No third-party HTTP
  stack is required.
* :class:`~repro.live.replay.ReplayDriver` — the load driver: replays a
  seeded streaming workload (the same :func:`~repro.api.components.
  build_stream_plan` sources the simulator uses) over real HTTP and
  folds outcomes into a :class:`~repro.workloads.streaming.StreamReport`
  -compatible summary that flows into the results warehouse as run kind
  ``live``.

Simulated mode is untouched by this package: nothing here is imported
by the simulation path, and the golden-trace suite pins the simulated
output byte for byte.  See ``docs/LIVE_MODE.md`` for the serve/replay
quickstart and the sim-vs-live parity contract.
"""

from repro.live.clock import WallClock
from repro.live.kernel import LiveKernel
from repro.live.service import LiveControlPlane
from repro.live.http import LiveServer
from repro.live.replay import ReplayDriver, ReplaySummary, replay_config

__all__ = [
    "WallClock",
    "LiveKernel",
    "LiveControlPlane",
    "LiveServer",
    "ReplayDriver",
    "ReplaySummary",
    "replay_config",
]
