"""The clock half of the clock + transport split.

A :class:`WallClock` is an affine map between **kernel time** (the
simulated seconds the control plane reasons in) and **wall time** (the
host's monotonic clock).  The map is anchored once, when the live kernel
starts, and from then on

.. code-block:: text

    kernel_t  =  anchor_kernel + (wall_t - anchor_wall) * speed

``speed`` is kernel seconds per wall second: ``1.0`` is real time,
``60.0`` runs one simulated minute per wall second (useful for replaying
a long workload quickly while still exercising real pacing and real
HTTP), fractions slow the system down.

The clock is deliberately dumb: it never sleeps and never touches the
event loop.  The :class:`~repro.live.kernel.LiveKernel` owns all
waiting; the clock only answers "what kernel time is it now?" and "how
long until kernel time t?".  That keeps the contract small enough that
the simulated path needs no counterpart object at all — simulated mode
*is* the degenerate clock where every delay is zero and the event queue
defines time, which is exactly what ``Environment.run()`` already does.

Doctest — the affine map with an injected time source::

    >>> ticks = iter([100.0, 100.5, 101.0])
    >>> clock = WallClock(speed=2.0, time_fn=lambda: next(ticks))
    >>> clock.start(kernel_now=10.0)       # anchored at wall 100.0
    >>> clock.kernel_now()                 # wall 100.5 -> 10 + 0.5 * 2
    11.0
    >>> clock.wall_delay(16.0)             # wall 101.0 -> kernel 12; 4/2
    2.0
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class WallClock:
    """Affine kernel-time ↔ wall-time map with a speed factor.

    ``time_fn`` defaults to :func:`time.monotonic`; tests inject a fake
    to make pacing math exact.
    """

    __slots__ = ("speed", "_time_fn", "_anchor_wall", "_anchor_kernel")

    def __init__(
        self,
        speed: float = 1.0,
        time_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        if speed <= 0:
            raise ValueError("clock speed must be positive")
        self.speed = float(speed)
        self._time_fn = time_fn or time.monotonic
        self._anchor_wall: Optional[float] = None
        self._anchor_kernel = 0.0

    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._anchor_wall is not None

    def start(self, kernel_now: float = 0.0) -> None:
        """Anchor the map: *this* wall instant is kernel time ``kernel_now``."""
        self._anchor_wall = self._time_fn()
        self._anchor_kernel = float(kernel_now)

    def kernel_now(self) -> float:
        """The current kernel time under the anchored map."""
        if self._anchor_wall is None:
            raise RuntimeError("clock not started; call start() first")
        return self._anchor_kernel + (self._time_fn() - self._anchor_wall) * self.speed

    def wall_delay(self, kernel_t: float) -> float:
        """Wall seconds from now until kernel time ``kernel_t`` (>= 0).

        A kernel time already in the past returns ``0.0`` — the caller
        should process it immediately.
        """
        return max(0.0, (kernel_t - self.kernel_now()) / self.speed)

    def wall_elapsed(self) -> float:
        """Wall seconds since :meth:`start`."""
        if self._anchor_wall is None:
            raise RuntimeError("clock not started; call start() first")
        return self._time_fn() - self._anchor_wall
