"""Shared resources: counting resources and message stores.

These are the coordination primitives the higher layers build on:

* :class:`Resource` — a counting semaphore with FIFO queuing (container
  concurrency slots inside an invoker).
* :class:`Store` — an unbounded FIFO buffer with blocking ``get``; the
  message broker's topics are stores.
* :class:`FilterStore` — ``get`` with a predicate.
* :class:`PriorityStore` — ``get`` returns the smallest item.

``put`` never blocks (capacities here are unbounded; the paper's systems
apply back-pressure at the protocol layer, not the transport layer), which
keeps the kernel small without losing any behaviour the reproduction needs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


@dataclass(order=True)
class PriorityItem:
    """Wrapper giving an arbitrary payload a sort key for PriorityStore."""

    priority: float
    item: Any = field(compare=False)


class Request(Event):
    """Pending acquisition of a :class:`Resource`; also a context manager."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request (e.g. on interrupt)."""
        self.resource._cancel(self)


class Resource:
    """A counting resource with ``capacity`` slots and FIFO granting."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self._capacity = capacity
        self._users: set[Request] = set()
        self._waiting: list[Request] = []

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        return Request(self)

    def release(self, request: Request) -> None:
        """Return a slot.  Releasing an unheld request is a no-op."""
        if request in self._users:
            self._users.discard(request)
            self._grant()

    # -- internal --------------------------------------------------------
    def _request(self, request: Request) -> None:
        self._waiting.append(request)
        self._grant()

    def _cancel(self, request: Request) -> None:
        try:
            self._waiting.remove(request)
        except ValueError:
            pass

    def _grant(self) -> None:
        while self._waiting and len(self._users) < self._capacity:
            request = self._waiting.pop(0)
            self._users.add(request)
            request.succeed()


class StoreGet(Event):
    """Pending retrieval from a store."""

    __slots__ = ("store", "predicate")

    def __init__(self, store: "Store", predicate: Optional[Callable[[Any], bool]] = None) -> None:
        # Flattened Event.__init__ — one call saved per get, and every
        # broker-topic consume is one of these.
        self.env = store.env
        self.callbacks = []
        self._value = Event.PENDING
        self._ok = None
        self._processed = False
        self._queued = False
        self.defused = False
        self.store = store
        self.predicate = predicate
        store._getters.append(self)
        store._dispatch()

    def cancel(self) -> None:
        """Withdraw the retrieval (e.g. when a consumer is interrupted)."""
        try:
            self.store._getters.remove(self)
        except ValueError:
            pass


class Store:
    """Unbounded FIFO store: ``put`` is immediate, ``get`` may block."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.items: list[Any] = []
        self._getters: list[StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> None:
        """Deposit *item* and wake a matching waiting getter, if any."""
        self._insert(item)
        self._dispatch()

    def get(self) -> StoreGet:
        """Return an event that settles with the next available item."""
        return StoreGet(self)

    def peek_all(self) -> list[Any]:
        """Snapshot of buffered items (does not consume them)."""
        return list(self.items)

    def drain(self) -> list[Any]:
        """Atomically remove and return all buffered items.

        Used by the fast-lane handoff: a departing invoker (or the
        controller, for unpulled messages) empties a topic in one step so
        no message can be concurrently consumed mid-drain.
        """
        items, self.items = self.items, []
        return items

    # -- internal --------------------------------------------------------
    def _insert(self, item: Any) -> None:
        self.items.append(item)

    def _next_index(self, predicate: Optional[Callable[[Any], bool]]) -> Optional[int]:
        if predicate is None:
            return 0 if self.items else None
        for i, item in enumerate(self.items):
            if predicate(item):
                return i
        return None

    def _dispatch(self) -> None:
        # Repeatedly match the earliest-waiting getter whose predicate some
        # buffered item satisfies.  FIFO on both sides.
        getters = self._getters
        items = self.items
        while getters and items:
            head = getters[0]
            if head.predicate is None:
                # FIFO fast path — the shape of every broker-topic get:
                # the earliest getter takes the earliest item, with no
                # snapshot copy of the waiter list and no index scan.
                del getters[0]
                head.succeed(items.pop(0))
                continue
            made_progress = False
            for getter in list(getters):
                index = self._next_index(getter.predicate)
                if index is not None:
                    getters.remove(getter)
                    item = items.pop(index)
                    getter.succeed(item)
                    made_progress = True
                    break
            if not made_progress:
                return


class FilterStore(Store):
    """A store whose ``get`` accepts a predicate over items."""

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> StoreGet:  # type: ignore[override]
        return StoreGet(self, predicate)


class PriorityStore(Store):
    """A store that hands out the smallest item first.

    Items must be mutually comparable; wrap payloads in
    :class:`PriorityItem` when they are not.
    """

    def _insert(self, item: Any) -> None:
        heapq.heappush(self.items, item)

    def _next_index(self, predicate: Optional[Callable[[Any], bool]]) -> Optional[int]:
        if not self.items:
            return None
        if predicate is None or predicate(self.items[0]):
            return 0
        return None

    def _dispatch(self) -> None:
        while self._getters and self.items:
            getter = self._getters[0]
            if getter.predicate is not None and not getter.predicate(self.items[0]):
                break
            self._getters.pop(0)
            getter.succeed(heapq.heappop(self.items))
