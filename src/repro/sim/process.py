"""Generator-based processes and interrupts.

A :class:`Process` drives a Python generator: each ``yield <event>``
suspends the generator until the event settles; the event's value is sent
back in (or its exception thrown in, for failed events).  The process itself
is an :class:`~repro.sim.events.Event` that settles with the generator's
return value — so processes can wait on each other.

:class:`Interrupt` models asynchronous signals (we use it for Slurm's
SIGTERM/SIGKILL delivery into pilot jobs): ``process.interrupt(cause)``
throws an :class:`Interrupt` inside the generator at its current yield
point.
"""

from __future__ import annotations

from types import GeneratorType as _GeneratorType
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import URGENT, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

_PENDING = Event.PENDING


class Interrupt(Exception):
    """Thrown inside a process generator by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> Any:
        """The object passed to :meth:`Process.interrupt`."""
        return self.args[0]

    def __str__(self) -> str:
        return f"Interrupt({self.cause!r})"


class InterruptError(RuntimeError):
    """Raised for invalid interrupt targets (dead or self-interrupt)."""


class Process(Event):
    """Wraps a generator and runs it as a simulation process."""

    __slots__ = ("_generator", "_target", "name", "_resume_cb")

    def __init__(self, env: "Environment", generator: Generator, name: str = "") -> None:
        if type(generator) is not _GeneratorType and (
            not hasattr(generator, "send") or not hasattr(generator, "throw")
        ):
            raise TypeError(f"{generator!r} is not a generator")
        # Flattened Event.__init__ — one Python call saved per spawn,
        # and process churn spawns one of these per simulated request.
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._processed = False
        self._queued = False
        self.defused = False
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: one bound method reused for every yield (a fresh bound-method
        #: object per suspension is measurable at millions of events)
        resume = self._resume
        self._resume_cb = resume
        # Bootstrap: resume the generator at the next instant.  Pulled
        # from the environment's event pool (process churn recycles one
        # bootstrap event per spawn), pre-succeeded and URGENT-scheduled
        # in one step — this runs once per simulated request/job/tick.
        #: the event this process currently waits on (None when resuming)
        self._target: Optional[Event] = env._init_event(resume)

    # -- state ---------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for."""
        return self._target

    # -- interrupts ------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point.

        The interrupt is delivered via an URGENT event at the current
        instant, so it wins over ordinary events scheduled for the same
        time.  Interrupting a finished process raises
        :class:`InterruptError`; so does a process interrupting itself.
        """
        if not self.is_alive:
            raise InterruptError(f"{self.name} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise InterruptError("a process is not allowed to interrupt itself")
        # Detach from the event we were waiting on: when it later settles it
        # must not resume this generator a second time.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume_cb)
            except ValueError:  # pragma: no cover - already detached
                pass
        self._target = None
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defused = True
        interrupt_event.callbacks.append(self._resume_cb)
        self.env.schedule(interrupt_event, priority=URGENT)

    # -- generator driving ------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self._value is not _PENDING:
            # A queued interrupt can arrive after normal termination; drop it.
            return
        env = self.env
        env._active_process = self
        generator = self._generator
        target: Optional[Event] = None
        while True:
            try:
                if event._ok:
                    next_target = generator.send(event._value)
                else:
                    # Failed event or interrupt: throw into the generator.
                    event.defused = True
                    next_target = generator.throw(event._value)
            except StopIteration as stop:
                env._active_process = None
                self._target = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                env._active_process = None
                self._target = None
                self.fail(exc)
                return

            if not isinstance(next_target, Event):
                env._active_process = None
                exc = TypeError(
                    f"process {self.name!r} yielded a non-event: {next_target!r}"
                )
                try:
                    generator.throw(exc)
                except BaseException as err:
                    self._target = None
                    self.fail(err)
                    return
                raise RuntimeError("generator swallowed the non-event error")

            if next_target._processed:
                # Already settled: resume immediately without rescheduling.
                event = next_target
                continue
            target = next_target
            break

        target.callbacks.append(self._resume_cb)
        self._target = target
        env._active_process = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"
