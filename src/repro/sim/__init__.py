"""Discrete-event simulation kernel.

A from-scratch, generator-based DES kernel in the style of SimPy (which is
not available in this environment).  All simulated subsystems — the Slurm-like
cluster, the OpenWhisk-like FaaS middleware, workload generators and metric
samplers — are implemented as :class:`Process` generators driven by a single
:class:`Environment` event loop.

Quick taste::

    from repro.sim import Environment

    def clock(env, name, tick):
        while True:
            yield env.timeout(tick)
            print(name, env.now)

    env = Environment()
    env.process(clock(env, "fast", 1))
    env.process(clock(env, "slow", 5))
    env.run(until=10)

Design notes
------------
* Events carry ``callbacks`` and settle exactly once (``succeed``/``fail``).
* Processes are plain generators; ``yield event`` suspends until the event
  settles; failed events are re-raised inside the generator at the yield.
* :class:`~repro.sim.process.Interrupt` supports Slurm-style SIGTERM
  delivery into running job processes.
* Time is a ``float`` in **seconds**; all modules in this package treat one
  simulated unit as one second.
"""

from repro.sim.core import (
    COMPILED_LOOP,
    Environment,
    SimTime,
    StopSimulation,
    resolve_pool,
)
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    EventPriority,
    Timeout,
)
from repro.sim.process import Interrupt, InterruptError, Process
from repro.sim.queue import (
    DEFAULT_QUEUE,
    QUEUE_KINDS,
    CalendarQueue,
    HeapEventQueue,
    resolve_queue,
)
from repro.sim.resources import (
    FilterStore,
    PriorityItem,
    PriorityStore,
    Resource,
    Store,
)
from repro.sim.rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "COMPILED_LOOP",
    "DEFAULT_QUEUE",
    "Environment",
    "resolve_pool",
    "HeapEventQueue",
    "QUEUE_KINDS",
    "resolve_queue",
    "Event",
    "EventPriority",
    "FilterStore",
    "Interrupt",
    "InterruptError",
    "PriorityItem",
    "PriorityStore",
    "Process",
    "RandomStreams",
    "Resource",
    "SimTime",
    "StopSimulation",
    "Store",
    "Timeout",
]
