"""The simulation environment: clock, event heap, and run loop."""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Generator, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.events import Event, Timeout
    from repro.sim.process import Process

#: Simulated time.  One unit is one second throughout this code base.
SimTime = float


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` at an event."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """A discrete-event simulation environment.

    The environment owns the simulated clock (:attr:`now`) and a binary heap
    of scheduled events ordered by ``(time, priority, sequence)``.  The
    sequence number makes the ordering total and deterministic: two events
    scheduled for the same instant at the same priority fire in the order
    they were scheduled, which every test in this repository relies on.
    """

    def __init__(self, initial_time: SimTime = 0.0) -> None:
        self._now: SimTime = float(initial_time)
        self._queue: list[tuple[SimTime, int, int, "Event"]] = []
        self._eid: int = 0
        self._active_process: Optional["Process"] = None

    # ------------------------------------------------------------------
    # clock & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> SimTime:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional["Process"]:
        """The process whose generator is currently executing, if any."""
        return self._active_process

    def peek(self) -> SimTime:
        """Time of the next scheduled event, or ``float('inf')`` if none."""
        while self._queue:
            when, _prio, _eid, event = self._queue[0]
            if event is not None:
                return when
            heapq.heappop(self._queue)
        return float("inf")

    def __len__(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        event: "Event",
        delay: SimTime = 0.0,
        priority: int = 1,
    ) -> None:
        """Queue *event* to fire ``delay`` seconds from now.

        ``priority`` follows the SimPy convention: ``0`` (URGENT) fires
        before ``1`` (NORMAL) at the same instant.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    # ------------------------------------------------------------------
    # event/process factories (convenience mirrors of simpy's API)
    # ------------------------------------------------------------------
    def event(self) -> "Event":
        from repro.sim.events import Event

        return Event(self)

    def timeout(self, delay: SimTime, value: Any = None) -> "Timeout":
        from repro.sim.events import Timeout

        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> "Process":
        from repro.sim.process import Process

        return Process(self, generator)

    def all_of(self, events: Iterable["Event"]) -> "Event":
        from repro.sim.events import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable["Event"]) -> "Event":
        from repro.sim.events import AnyOf

        return AnyOf(self, list(events))

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event.

        Advances the clock to the event's scheduled time, marks the event
        processed and invokes its callbacks.  Raises :class:`EmptySchedule`
        if nothing is queued.
        """
        try:
            when, _prio, _eid, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        if when < self._now:  # pragma: no cover - defensive; cannot happen
            raise RuntimeError("event scheduled in the past")
        self._now = when
        event._mark_processed()
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if event.failed and not event.defused:
            raise event.value

    def run(self, until: "SimTime | Event | None" = None) -> Any:
        """Run the simulation.

        * ``until=None`` — run until the event queue drains.
        * ``until=<number>`` — run until the clock reaches that time.
        * ``until=<Event>`` — run until that event settles and return its
          value (raising if the event failed).
        """
        from repro.sim.events import Event

        stop_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value
            stop_event.callbacks.append(self._stop_callback)
        else:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(
                    f"until ({horizon}) must not be before now ({self._now})"
                )
            stop_event = Event(self)
            stop_event._ok = True
            stop_event._value = None
            # URGENT so the horizon pre-empts same-instant NORMAL events.
            self.schedule(stop_event, delay=horizon - self._now, priority=0)
            stop_event.callbacks.append(self._stop_callback)

        try:
            while True:
                try:
                    self.step()
                except EmptySchedule:
                    break
        except StopSimulation as stop:
            return stop.value

        if stop_event is not None and not stop_event.processed:
            # Queue drained before the stop event fired.
            if isinstance(until, Event):
                raise RuntimeError("simulation ended before `until` event")
        return None

    @staticmethod
    def _stop_callback(event: "Event") -> None:
        if event.failed:
            raise event.value
        raise StopSimulation(event.value)
