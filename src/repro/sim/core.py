"""The simulation environment: clock, event heap, and run loop.

The run loop is the hottest code in the repository — every simulated
request, pilot job, and sampler tick flows through it — so it is written
for speed: event classes are imported once at module scope, the
:class:`Environment` is slotted, and :meth:`Environment.run` pops the
heap with locally bound functions instead of going through
:meth:`Environment.step` per event.

The environment also keeps cheap throughput counters
(:attr:`Environment.events_processed`, :attr:`Environment.peak_queue_depth`)
and flushes them into the process-wide :data:`KERNEL_TOTALS` aggregate at
the end of every ``run()``/``step()``, which is what
:mod:`repro.bench.instrument` reads to turn wall time into events/sec.
"""

from __future__ import annotations

import os
from functools import partial as _partial
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Generator, Iterable, Optional, Tuple

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.queue import CalendarQueue, HeapEventQueue, resolve_queue

#: Simulated time.  One unit is one second throughout this code base.
SimTime = float

_INF = float("inf")


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` at an event."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class KernelTotals:
    """Process-wide kernel counters, summed across all environments.

    Every :meth:`Environment.run` (and every direct :meth:`Environment.step`)
    adds its work here, so a probe can measure the event throughput of a
    whole scenario run without holding references to the environments it
    creates internally.  See :class:`repro.bench.instrument.KernelProbe`.
    """

    __slots__ = (
        "events_processed",
        "events_scheduled",
        "events_reused",
        "peak_queue_depth",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.events_processed = 0
        self.events_scheduled = 0
        self.events_reused = 0
        self.peak_queue_depth = 0

    def snapshot(self) -> Tuple[int, int, int, int]:
        """``(events_processed, events_scheduled, events_reused, peak_queue_depth)``."""
        return (
            self.events_processed,
            self.events_scheduled,
            self.events_reused,
            self.peak_queue_depth,
        )


#: the one process-wide aggregate (reset it via ``KERNEL_TOTALS.reset()``)
KERNEL_TOTALS = KernelTotals()


#: kernel-wide default for the event allocation pool; disable per
#: environment with ``Environment(pool=False)`` or process-wide with
#: ``REPRO_POOL=0``.
DEFAULT_POOL = True


def resolve_pool(flag: Optional[bool] = None) -> bool:
    """Resolve the event-pool selector (arg > ``REPRO_POOL`` > default)."""
    if flag is not None:
        return bool(flag)
    raw = os.environ.get("REPRO_POOL", "")
    if raw == "":
        return DEFAULT_POOL
    return raw.lower() not in ("0", "off", "false", "no")


def _load_hotloop():
    """Select the run-loop implementation (compiled build vs pure source).

    A mypyc build of :mod:`repro.sim._hotloop` (built by
    ``tools/build_compiled.py``) shadows the ``.py`` source on import and
    is picked up automatically.  ``REPRO_COMPILED=0`` forces the pure
    interpreted source even when a compiled extension is installed, by
    loading the ``.py`` file directly under a private module name.
    """
    if os.environ.get("REPRO_COMPILED", "") == "0":
        import importlib.util

        path = os.path.join(os.path.dirname(__file__), "_hotloop.py")
        spec = importlib.util.spec_from_file_location("repro.sim._hotloop_pure", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module
    from repro.sim import _hotloop

    return _hotloop


_hotloop = _load_hotloop()
_hotloop.install(Timeout, Event, StopSimulation)

#: True when the mypyc-compiled hot loop is active this process.
COMPILED_LOOP: bool = bool(getattr(_hotloop, "COMPILED", False))

_run_loop = _hotloop.run_loop


class Environment:
    """A discrete-event simulation environment.

    The environment owns the simulated clock (:attr:`now`) and a binary heap
    of scheduled events ordered by ``(time, priority, sequence)``.  The
    sequence number makes the ordering total and deterministic: two events
    scheduled for the same instant at the same priority fire in the order
    they were scheduled, which every test in this repository relies on.

    Scheduled events can be withdrawn with :meth:`cancel`: the queue entry
    is tombstoned and silently discarded when it reaches the front of the
    queue.  ``len(env)``, :meth:`peek`, and :attr:`peak_queue_depth` agree
    on this: all count only live (non-cancelled) entries.

    The backing store is pluggable: ``queue="heap"`` uses the classic
    binary heap, ``"wheel"`` the calendar queue, and ``"auto"`` (the
    default) the calendar queue with automatic degradation back to heap
    layout for workloads outside its sweet spot.  All produce the exact
    same event order — see :mod:`repro.sim.queue`.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_push",
        "_pop",
        "queue_kind",
        "_eid",
        "_eid_flushed",
        "_active_process",
        "_cancelled",
        "_timeout_pool",
        "_event_pool",
        "events_processed",
        "events_reused",
        "_reused_flushed",
        "peak_queue_depth",
    )

    def __init__(
        self,
        initial_time: SimTime = 0.0,
        queue: Optional[str] = None,
        pool: Optional[bool] = None,
    ) -> None:
        self._now: SimTime = float(initial_time)
        impl, degrade = resolve_queue(queue)
        if impl == "heap":
            q = HeapEventQueue()
            # partial() of the C heap functions: pushes from the inlined
            # hot paths in events.py stay a single C call.
            self._push = _partial(_heappush, q)
            self._pop = _partial(_heappop, q)
        else:
            q = CalendarQueue(degrade=degrade)
            self._push = q.push
            self._pop = q.pop
        self._queue = q
        #: which backing store this environment runs on ("heap"/"wheel")
        self.queue_kind: str = impl
        self._eid: int = 0
        self._eid_flushed: int = 0
        self._active_process: Optional["Process"] = None
        self._cancelled: set = set()
        # Event freelists (``None`` = pooling disabled): processed
        # Timeout/Event instances with no surviving references are
        # parked here by the run loop and reused by timeout()/event().
        if resolve_pool(pool):
            self._timeout_pool: Optional[list] = []
            self._event_pool: Optional[list] = []
        else:
            self._timeout_pool = None
            self._event_pool = None
        #: events processed by this environment's run loop so far
        self.events_processed: int = 0
        #: events served from the freelist instead of a fresh allocation
        self.events_reused: int = 0
        self._reused_flushed: int = 0
        #: largest queue depth observed while processing events
        self.peak_queue_depth: int = 0

    # ------------------------------------------------------------------
    # clock & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> SimTime:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional["Process"]:
        """The process whose generator is currently executing, if any."""
        return self._active_process

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled into this environment."""
        return self._eid

    def peek(self) -> SimTime:
        """Time of the next live scheduled event, or ``float('inf')``.

        Cancelled (tombstoned) entries at the front of the queue are
        garbage-collected on the way.
        """
        queue = self._queue
        cancelled = self._cancelled
        pop = self._pop
        peek_entry = queue.peek_entry
        while True:
            entry = peek_entry()
            if entry is None:
                return _INF
            event = entry[3]
            if cancelled and event in cancelled:
                pop()
                cancelled.discard(event)
                event._queued = False
                continue
            return entry[0]

    def __len__(self) -> int:
        """Number of live (non-cancelled) scheduled events."""
        return len(self._queue) - len(self._cancelled)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        event: Event,
        delay: SimTime = 0.0,
        priority: int = 1,
    ) -> None:
        """Queue *event* to fire ``delay`` seconds from now.

        ``priority`` follows the SimPy convention: ``0`` (URGENT) fires
        before ``1`` (NORMAL) at the same instant.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        self._eid += 1
        event._queued = True
        self._push((self._now + delay, priority, self._eid, event))

    def cancel(self, event: Event) -> bool:
        """Withdraw a scheduled event so it is discarded unprocessed.

        The entry stays in the heap as a tombstone and is dropped when it
        surfaces; :meth:`__len__` and :meth:`peek` stop counting it
        immediately.  Returns ``True`` if the event was live in the queue
        and is now cancelled, ``False`` otherwise (never scheduled,
        scheduled elsewhere, already processed, already cancelled, or
        failed).

        Cancellation means the occurrence never happens: the event's
        callbacks never run, so anything waiting on it is never resumed —
        retract only events whose waiters you control (the typical use is
        withdrawing a pending :class:`Timeout` wakeup).  Failed events
        are refused outright: an un-defused failure must crash the run,
        and cancelling it would silently swallow the exception.
        """
        if (
            event.env is not self
            or not event._queued
            or event._processed
            or event._ok is False
            or event in self._cancelled
        ):
            return False
        self._cancelled.add(event)
        return True

    # ------------------------------------------------------------------
    # event/process factories (convenience mirrors of simpy's API)
    # ------------------------------------------------------------------
    def event(self) -> Event:
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.callbacks = []
            event._value = Event.PENDING
            event._ok = None
            event._processed = False
            event._queued = False
            event.defused = False
            self.events_reused += 1
            return event
        return Event(self)

    def _init_event(self, callback: Any) -> Event:
        """Pooled, pre-succeeded, URGENT-scheduled event in one step.

        The process-bootstrap shape (`Process.__init__` is the only
        caller): equivalent to ``event()`` + mark succeeded + schedule
        URGENT, without the intermediate resets those steps redo.
        """
        pool = self._event_pool
        if pool:
            event = pool.pop()
            self.events_reused += 1
        else:
            event = Event.__new__(Event)
            event.env = self
        event.callbacks = [callback]
        event._value = None
        event._ok = True
        event._processed = False
        event._queued = True
        event.defused = False
        self._eid += 1
        self._push((self._now, 0, self._eid, event))
        return event

    def timeout(self, delay: SimTime, value: Any = None) -> Timeout:
        pool = self._timeout_pool
        if pool:
            # Reuse a recycled Timeout: every field Timeout.__init__
            # writes is written fresh here, so no state survives the
            # recycle — only the object identity does.
            if delay < 0:
                raise ValueError(f"negative delay: {delay!r}")
            timeout = pool.pop()
            timeout.callbacks = []
            timeout._value = value
            timeout._ok = True
            timeout._processed = False
            timeout._queued = True
            timeout.defused = False
            timeout.delay = delay
            self.events_reused += 1
            self._eid += 1
            self._push((self._now + delay, 1, self._eid, timeout))
            return timeout
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> "Process":
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, list(events))

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process the single next live event.

        Advances the clock to the event's scheduled time, marks the event
        processed and invokes its callbacks.  Cancelled entries are
        discarded on the way.  Raises :class:`EmptySchedule` if nothing
        live is queued.
        """
        queue = self._queue
        cancelled = self._cancelled
        pop = self._pop
        while True:
            depth = len(queue) - len(cancelled)
            try:
                when, _prio, _eid, event = pop()
            except IndexError:
                raise EmptySchedule() from None
            if cancelled and event in cancelled:
                cancelled.discard(event)
                event._queued = False
                continue
            break
        if when < self._now:  # pragma: no cover - defensive; cannot happen
            raise RuntimeError("event scheduled in the past")
        self._now = when
        event._processed = True
        callbacks, event.callbacks = event.callbacks, None
        try:
            for callback in callbacks:
                callback(event)
        finally:
            self._flush_counters(1, depth)
        if event._ok is False and not event.defused:
            raise event.value

    def run(self, until: "SimTime | Event | None" = None) -> Any:
        """Run the simulation.

        * ``until=None`` — run until the event queue drains.
        * ``until=<number>`` — run until the clock reaches that time.
        * ``until=<Event>`` — run until that event settles and return its
          value (raising if the event failed).
        """
        stop_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value
            stop_event.callbacks.append(self._stop_callback)
        else:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(
                    f"until ({horizon}) must not be before now ({self._now})"
                )
            stop_event = self.event()
            stop_event._ok = True
            stop_event._value = None
            # URGENT so the horizon pre-empts same-instant NORMAL events.
            self.schedule(stop_event, delay=horizon - self._now, priority=0)
            stop_event.callbacks.append(self._stop_callback)

        # The per-event drain lives in repro.sim._hotloop (one branch
        # per backing store, everything bound to locals) so the same
        # loop body can optionally run as a mypyc-compiled extension.
        # It flushes the kernel counters on every exit path itself.
        stopped, value = _run_loop(self)
        if stopped:
            return value

        if stop_event is not None and not stop_event.processed:
            # Queue drained before the stop event fired.
            if isinstance(until, Event):
                raise RuntimeError("simulation ended before `until` event")
        return None

    def _flush_counters(self, processed: int, peak: int) -> None:
        """Fold a run's work into this env and the process-wide totals."""
        self.events_processed += processed
        if peak > self.peak_queue_depth:
            self.peak_queue_depth = peak
        totals = KERNEL_TOTALS
        totals.events_processed += processed
        totals.events_scheduled += self._eid - self._eid_flushed
        self._eid_flushed = self._eid
        totals.events_reused += self.events_reused - self._reused_flushed
        self._reused_flushed = self.events_reused
        if peak > totals.peak_queue_depth:
            totals.peak_queue_depth = peak

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event.failed:
            raise event.value
        raise StopSimulation(event.value)


# Imported last: process.py needs events but not core at runtime; keeping
# the import at the bottom lets `repro.sim.process` import cleanly even if
# a user imports it before `repro.sim.core`.
from repro.sim.process import Process  # noqa: E402  (deliberate, see above)
