"""Event-queue implementations behind the simulation kernel.

Both queues store identical entries — ``(time, priority, eid, event)``
tuples — and drain them in exactly the same strict total order (the
``eid`` sequence number breaks every tie), so the kernel's observable
behaviour is byte-identical regardless of which implementation an
:class:`~repro.sim.core.Environment` was built with.  What differs is
the cost model:

:class:`HeapEventQueue`
    The classic binary heap (``heapq``).  Every push and pop is
    ``O(log n)`` tuple comparisons — all in C, but the log factor bites
    in the timeout-flood regime where a fig5-scale run holds 10⁵+
    pending events.

:class:`CalendarQueue`
    A Brown-style calendar queue (event wheel): pending events hash
    into time buckets of ``width`` seconds, so a push is ``O(1)`` (one
    int quantization + dict lookup + list append) and draining a bucket
    is one C ``list.sort`` followed by plain index reads.  The heap
    survives only in two small places: a heap of *bucket keys* (one
    entry per distinct bucket, not per event) and a tiny ``incoming``
    heap for events scheduled into the bucket currently being drained.
    Bucket width is resized from the observed event density
    (inter-event deltas expressed as events-per-bucket occupancy), and
    when resizing cannot reach a useful occupancy the queue degrades
    gracefully to a plain binary heap — so the wheel is never
    catastrophically worse than the heap it replaces.

Selection is via ``Environment(queue="heap"|"wheel"|"auto")``, the
``REPRO_QUEUE`` environment variable, or :data:`DEFAULT_QUEUE`.
``auto`` picks the wheel *with* heap degradation armed; ``wheel`` pins
the calendar layout unconditionally.  The byte-identical goldens under
``tests/golden/`` are verified under both implementations in CI, which
is what allowed the default to move off ``heap``.
"""

from __future__ import annotations

import os
from heapq import (
    heapify as _heapify,
    heappop as _heappop,
    heappush as _heappush,
)
from typing import Any, List, Optional, Tuple

#: one scheduled occurrence: (time, priority, eid, event)
Entry = Tuple[float, int, int, Any]

#: queue kinds accepted by Environment(queue=...) / REPRO_QUEUE
QUEUE_KINDS = ("heap", "wheel", "auto")

#: kernel-wide default when neither the constructor argument nor the
#: REPRO_QUEUE environment variable says otherwise.  ``auto`` (wheel +
#: degradation) replaced ``heap`` once every registered scenario's
#: smoke golden was proven byte-identical under both implementations.
DEFAULT_QUEUE = "auto"


def resolve_queue(kind: Optional[str]) -> Tuple[str, bool]:
    """Resolve a queue selector to ``(impl, degrade)``.

    ``impl`` is ``"heap"`` or ``"wheel"``; ``degrade`` (meaningful for
    the wheel only) arms the automatic fall-back to heap layout when
    the workload is outside the calendar's sweet spot.  ``None`` reads
    ``REPRO_QUEUE`` and falls back to :data:`DEFAULT_QUEUE`; an empty
    environment value means "unset".
    """
    if kind is None:
        kind = os.environ.get("REPRO_QUEUE") or DEFAULT_QUEUE
    kind = str(kind).lower()
    if kind == "heap":
        return "heap", False
    if kind == "wheel":
        return "wheel", False
    if kind == "auto":
        return "wheel", True
    raise ValueError(
        f"unknown queue kind {kind!r}; expected one of {QUEUE_KINDS}"
    )


class HeapEventQueue(list):
    """Binary-heap event queue — a ``heapq``-managed list of entries.

    Subclassing :class:`list` lets the kernel's run loop keep calling
    the C ``heappush``/``heappop`` directly on the queue object, so
    heap mode pays nothing for the abstraction.
    """

    __slots__ = ()

    kind = "heap"

    def push(self, entry: Entry) -> None:
        _heappush(self, entry)

    def pop(self) -> Entry:
        """Smallest entry; raises :class:`IndexError` when empty."""
        return _heappop(self)

    def peek_entry(self) -> Optional[Entry]:
        """Smallest entry without consuming it, or ``None``."""
        return self[0] if self else None


class CalendarQueue:
    """Calendar-queue (event-wheel) implementation of the event queue.

    Invariants:

    * every pending entry lives in exactly one of: the current batch
      tail ``_batch[_idx:]``, the ``_incoming`` heap, or a future
      bucket in ``_buckets`` (keyed by ``int(time * 1/width)``);
    * ``_keyheap`` holds each future bucket's key exactly once;
    * ``len(self)`` (``_size``) counts all pending entries, including
      tombstoned ones the environment has cancelled but not yet
      discarded — mirroring ``len()`` of the heap queue exactly;
    * entries pop in strict ``(time, priority, eid)`` order.

    Pushes into the *currently draining* bucket go to the ``_incoming``
    heap rather than the batch list, because they may precede entries
    still pending in the sorted batch (e.g. an URGENT interrupt at the
    current instant); the pop path compares the two heads.
    """

    __slots__ = (
        "_buckets",
        "_keyheap",
        "_size",
        "_width",
        "_inv_width",
        "_cur_key",
        "_batch",
        "_idx",
        "_incoming",
        "_advances",
        "_resizes",
        "_degrade",
        "_degraded",
        "_heap",
    )

    kind = "wheel"

    #: run the geometry check every this-many bucket advances
    CHECK_MASK = 31
    #: events-per-bucket band the width resizer steers toward
    MIN_OCCUPANCY = 2.0
    MAX_OCCUPANCY = 64.0
    #: resize factor applied when occupancy leaves the band
    GROWTH = 4.0
    #: give up and fall back to a heap after this many fruitless resizes
    MAX_RESIZES = 6
    MIN_WIDTH = 1e-9
    MAX_WIDTH = 1e12

    def __init__(self, width: float = 1.0, degrade: bool = True) -> None:
        if not width > 0.0:
            raise ValueError(f"bucket width must be positive, got {width!r}")
        self._buckets: dict = {}
        self._keyheap: List[int] = []
        self._size = 0
        self._width = float(width)
        self._inv_width = 1.0 / float(width)
        self._cur_key: Optional[int] = None
        self._batch: List[Entry] = []
        self._idx = 0
        self._incoming: List[Entry] = []
        self._advances = 0
        self._resizes = 0
        self._degrade = degrade
        self._degraded = False
        self._heap: List[Entry] = []

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def width(self) -> float:
        """Current bucket width in simulated seconds."""
        return self._width

    @property
    def degraded(self) -> bool:
        """True once the queue has fallen back to heap layout."""
        return self._degraded

    # -- core operations -----------------------------------------------
    def push(self, entry: Entry) -> None:
        if self._degraded:
            _heappush(self._heap, entry)
            self._size += 1
            return
        key = int(entry[0] * self._inv_width)
        cur = self._cur_key
        if cur is not None and key <= cur:
            # The bucket is mid-drain (or peek has already claimed a
            # *future* bucket and a push now lands at or before it —
            # the peek-sleep-push pattern of the live kernel): the
            # sorted batch must not grow, and the new entry may precede
            # pending batch entries, so it goes through the incoming
            # heap that both pop and peek compare against the batch
            # head.  Filing it under an earlier bucket key instead
            # would let the claimed batch drain first — out of order.
            _heappush(self._incoming, entry)
        else:
            buckets = self._buckets
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [entry]
                _heappush(self._keyheap, key)
            else:
                bucket.append(entry)
        self._size += 1

    def pop(self) -> Entry:
        """Smallest entry; raises :class:`IndexError` when empty."""
        if self._degraded:
            entry = _heappop(self._heap)  # IndexError when empty
            self._size -= 1
            return entry
        batch = self._batch
        idx = self._idx
        if idx < len(batch):
            entry = batch[idx]
            inc = self._incoming
            if inc and inc[0] < entry:
                entry = _heappop(inc)
            else:
                self._idx = idx + 1
                # Consumed slots are cleared (never re-read: _idx has
                # moved past) so the entry tuple — and the event inside
                # it — is freed as soon as the caller drops it, which
                # is what lets the run loop's recycler see a processed
                # event's refcount hit the pool-eligibility floor.
                batch[idx] = None
            self._size -= 1
            return entry
        inc = self._incoming
        if inc:
            self._size -= 1
            return _heappop(inc)
        # Current bucket fully drained: advance to the next one.
        cur = self._cur_key
        if cur is not None:
            del self._buckets[cur]
            self._cur_key = None
        self._advances += 1
        if (self._advances & self.CHECK_MASK) == 0 and self._size >= 64:
            self._check_geometry()
            if self._degraded:
                return self.pop()
        keyheap = self._keyheap
        if not keyheap:
            raise IndexError("pop from an empty CalendarQueue")
        key = _heappop(keyheap)
        self._cur_key = key
        batch = self._buckets[key]
        if len(batch) > 1:
            batch.sort()
        self._batch = batch
        self._idx = 1
        self._size -= 1
        entry = batch[0]
        batch[0] = None
        return entry

    def peek_entry(self) -> Optional[Entry]:
        """Smallest entry without consuming it, or ``None``.

        May advance internal bucket state (sorting the next bucket) but
        never consumes an entry.
        """
        if self._degraded:
            return self._heap[0] if self._heap else None
        batch = self._batch
        idx = self._idx
        if idx < len(batch):
            entry = batch[idx]
            inc = self._incoming
            if inc and inc[0] < entry:
                return inc[0]
            return entry
        if self._incoming:
            return self._incoming[0]
        cur = self._cur_key
        if cur is not None:
            del self._buckets[cur]
            self._cur_key = None
        keyheap = self._keyheap
        if not keyheap:
            return None
        key = _heappop(keyheap)
        self._cur_key = key
        batch = self._buckets[key]
        if len(batch) > 1:
            batch.sort()
        self._batch = batch
        self._idx = 0
        return batch[0]

    # -- geometry adaptation ---------------------------------------------
    def _pending_entries(self) -> List[Entry]:
        """Every pending entry, in no particular order."""
        entries = self._batch[self._idx:]
        entries.extend(self._incoming)
        cur = self._cur_key
        for key, bucket in self._buckets.items():
            if key != cur:
                entries.extend(bucket)
        return entries

    def _check_geometry(self) -> None:
        """Steer bucket width toward the target occupancy band.

        Called on the bucket-advance path (so the current batch and the
        incoming heap are empty).  Occupancy — pending events per
        bucket — is the observable form of the mean inter-event delta:
        too few events per bucket means the width undershoots the
        deltas (every advance pays dict/keyheap overhead for a near-
        empty bucket), too many means one bucket sort handles what
        should be spread over the wheel.
        """
        buckets = len(self._buckets)
        if buckets == 0:
            return
        occupancy = self._size / buckets
        if occupancy < self.MIN_OCCUPANCY:
            if self._resizes >= self.MAX_RESIZES:
                if self._degrade:
                    self._degrade_to_heap()
                return
            width = min(self._width * self.GROWTH, self.MAX_WIDTH)
            if width != self._width:
                self._rebuild(width)
        elif occupancy > self.MAX_OCCUPANCY:
            width = max(self._width / self.GROWTH, self.MIN_WIDTH)
            if width != self._width:
                self._rebuild(width)

    def _rebuild(self, width: float) -> None:
        """Re-bucket every pending entry at a new width."""
        entries = self._pending_entries()
        self._width = width
        self._inv_width = 1.0 / width
        self._buckets = {}
        self._keyheap = []
        self._cur_key = None
        self._batch = []
        self._idx = 0
        self._incoming = []
        self._size = 0
        self._resizes += 1
        push = self.push
        for entry in entries:
            push(entry)

    def _degrade_to_heap(self) -> None:
        """Fall back to binary-heap layout permanently.

        Reached when repeated widening never got the occupancy off the
        floor — the event-time distribution has no density the wheel
        can exploit, so the heap's log factor is the better deal.
        """
        entries = self._pending_entries()
        _heapify(entries)
        self._heap = entries
        self._degraded = True
        self._buckets = {}
        self._keyheap = []
        self._cur_key = None
        self._batch = []
        self._idx = 0
        self._incoming = []
