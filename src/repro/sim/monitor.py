"""Periodic state monitoring for simulations.

A :class:`Monitor` samples arbitrary callables on a fixed cadence and
keeps aligned time series — the in-simulation equivalent of a metrics
scraper.  Examples use it to build Fig 5a-style live series without
post-processing logs.

Samples are stored in compact ``array('d')`` buffers (8 bytes per
sample, C-contiguous) rather than Python lists of boxed floats: the
``append`` coerces to double in C, so the sampling loop does no
per-sample ``float()`` calls, and :meth:`Monitor.series` exposes the
buffers to numpy without copying element objects.

Alongside the buffers every probe keeps a
:class:`~repro.analysis.streaming.StreamingStats` running aggregate
(count/sum/min/max/Welford variance), available via
:meth:`Monitor.stats` — and with ``keep_history=False`` the buffers
are skipped entirely, so an arbitrarily long run monitors in O(1)
memory (the trace-engine mode; :meth:`series` is then unavailable).
"""

from __future__ import annotations

from array import array
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.analysis.streaming import StreamingStats
from repro.sim.core import Environment
from repro.sim.process import Interrupt


class Monitor:
    """Samples named probes every ``interval`` seconds."""

    def __init__(
        self,
        env: Environment,
        interval: float = 10.0,
        keep_history: bool = True,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.env = env
        self.interval = interval
        self.keep_history = keep_history
        self._probes: Dict[str, Callable[[], float]] = {}
        #: sample timestamps, one per sampling tick (float64 buffer)
        self.times: array = array("d")
        #: probe name -> float64 sample buffer, aligned with :attr:`times`
        self.samples: Dict[str, array] = {}
        #: probe name -> running aggregate, maintained in both modes
        self.streams: Dict[str, StreamingStats] = {}
        self._count = 0
        self._proc = None

    def probe(self, name: str, fn: Callable[[], float]) -> "Monitor":
        """Register a probe; returns self for chaining."""
        if self._proc is not None:
            raise RuntimeError("cannot add probes after start()")
        self._probes[name] = fn
        self.samples[name] = array("d")
        self.streams[name] = StreamingStats()
        return self

    def start(self) -> "Monitor":
        if self._proc is not None:
            raise RuntimeError("monitor already started")
        if not self._probes:
            raise RuntimeError("no probes registered")
        self._proc = self.env.process(self._run())
        return self

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")

    def _run(self):
        env = self.env
        interval = self.interval
        keep = self.keep_history
        times_append = self.times.append
        # array('d').append coerces to C double itself — no float() per sample
        probes: List[Tuple[Callable[[float], None], Callable[[float], None], Callable[[], float]]] = [
            (self.samples[name].append, self.streams[name].add, fn)
            for name, fn in self._probes.items()
        ]
        try:
            while True:
                self._count += 1
                if keep:
                    times_append(env.now)
                    for append, add, fn in probes:
                        value = fn()
                        append(value)
                        add(value)
                else:
                    for _append, add, fn in probes:
                        add(fn())
                yield env.timeout(interval)
        except Interrupt:
            return

    # ------------------------------------------------------------------
    def series(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """(times, values) for one probe, as float64 arrays."""
        if name not in self.samples:
            raise KeyError(f"unknown probe {name!r}")
        if not self.keep_history and self._count:
            raise RuntimeError(
                "series() needs sample history, but this Monitor was built "
                "with keep_history=False; use stats() for the running "
                "aggregates"
            )
        return (
            np.asarray(self.times, dtype=np.float64),
            np.asarray(self.samples[name], dtype=np.float64),
        )

    def stats(self, name: str) -> StreamingStats:
        """Running aggregate for one probe (works in both modes)."""
        try:
            return self.streams[name]
        except KeyError:
            raise KeyError(f"unknown probe {name!r}") from None

    def mean(self, name: str) -> float:
        """Mean of a probe's samples.

        With history retained this is the numpy re-scan, bit-identical
        to what it always was; in streaming mode it is the running
        ``total/count`` (identical for integer-valued probes, within
        float summation order otherwise).
        """
        if self.keep_history:
            values = self.samples.get(name)
            if not len(values or ()):
                return float("nan")
            return float(np.mean(values))
        stream = self.streams.get(name)
        if stream is None or not stream.count:
            return float("nan")
        return stream.mean

    def __len__(self) -> int:
        return self._count if not self.keep_history else len(self.times)
