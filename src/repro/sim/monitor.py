"""Periodic state monitoring for simulations.

A :class:`Monitor` samples arbitrary callables on a fixed cadence and
keeps aligned time series — the in-simulation equivalent of a metrics
scraper.  Examples use it to build Fig 5a-style live series without
post-processing logs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.sim.core import Environment
from repro.sim.process import Interrupt


class Monitor:
    """Samples named probes every ``interval`` seconds."""

    def __init__(self, env: Environment, interval: float = 10.0) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.env = env
        self.interval = interval
        self._probes: Dict[str, Callable[[], float]] = {}
        self.times: List[float] = []
        self.samples: Dict[str, List[float]] = {}
        self._proc = None

    def probe(self, name: str, fn: Callable[[], float]) -> "Monitor":
        """Register a probe; returns self for chaining."""
        if self._proc is not None:
            raise RuntimeError("cannot add probes after start()")
        self._probes[name] = fn
        self.samples[name] = []
        return self

    def start(self) -> "Monitor":
        if self._proc is not None:
            raise RuntimeError("monitor already started")
        if not self._probes:
            raise RuntimeError("no probes registered")
        self._proc = self.env.process(self._run())
        return self

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")

    def _run(self):
        env = self.env
        try:
            while True:
                self.times.append(env.now)
                for name, fn in self._probes.items():
                    self.samples[name].append(float(fn()))
                yield env.timeout(self.interval)
        except Interrupt:
            return

    # ------------------------------------------------------------------
    def series(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """(times, values) for one probe."""
        if name not in self.samples:
            raise KeyError(f"unknown probe {name!r}")
        return np.asarray(self.times), np.asarray(self.samples[name])

    def mean(self, name: str) -> float:
        values = self.samples.get(name)
        if not values:
            return float("nan")
        return float(np.mean(values))

    def __len__(self) -> int:
        return len(self.times)
