"""Deterministic, named random-number streams.

Every stochastic component of the reproduction (job arrivals, runtimes,
warm-up times, broker latencies, Lambda noise, …) draws from its own named
substream derived from one root seed via :class:`numpy.random.SeedSequence`.
This gives two properties the experiments need:

* **Reproducibility** — the same root seed regenerates the same experiment
  byte-for-byte, which `EXPERIMENTS.md` records per run.
* **Isolation** — adding draws to one component does not perturb another
  component's stream, so ablations change only what they claim to change.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RandomStreams:
    """A factory of independent, named :class:`numpy.random.Generator` s."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this factory was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it on first use.

        The substream key is derived from a stable hash of the name, so the
        mapping name → stream is independent of call order.
        """
        generator = self._streams.get(name)
        if generator is None:
            key = zlib.crc32(name.encode("utf-8"))
            sequence = np.random.SeedSequence(entropy=self._seed, spawn_key=(key,))
            generator = np.random.default_rng(sequence)
            self._streams[name] = generator
        return generator

    def fork(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of this one's."""
        key = zlib.crc32(name.encode("utf-8"))
        return RandomStreams(seed=self._seed * 1_000_003 + key)

    def __repr__(self) -> str:  # pragma: no cover
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._streams)})"
