"""Events: the unit of causality in the simulation kernel."""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment, SimTime


class EventPriority(enum.IntEnum):
    """Scheduling priority of an event at a given instant."""

    URGENT = 0
    NORMAL = 1


#: Interned plain-``int`` aliases of :class:`EventPriority` for the hot
#: paths: queue entries built from these compare int-vs-int inside the
#: heap/wheel C comparison loops instead of going through the IntEnum
#: subclass, and the values are identical so event order cannot change.
URGENT: int = int(EventPriority.URGENT)
NORMAL: int = int(EventPriority.NORMAL)


class Event:
    """A one-shot occurrence other parts of the simulation can wait on.

    Lifecycle: *pending* → *triggered* (scheduled, value fixed) →
    *processed* (callbacks ran).  An event settles exactly once, either via
    :meth:`succeed` or :meth:`fail`.
    """

    __slots__ = (
        "env", "callbacks", "_value", "_ok", "_processed", "_queued", "defused"
    )

    #: sentinel for "no value yet"
    PENDING = object()

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: callables invoked with the event when it is processed; ``None``
        #: once processing happened.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = Event.PENDING
        self._ok: Optional[bool] = None
        self._processed = False
        #: set by Environment.schedule; cleared again only on cancellation
        self._queued = False
        #: if True, an un-waited-on failure will not crash the run loop
        self.defused = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is queued for processing."""
        return self._value is not Event.PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def failed(self) -> bool:
        """True if the event failed.  Only meaningful once triggered."""
        return self._ok is False

    @property
    def value(self) -> Any:
        """The event's value (or exception, for failed events)."""
        if self._value is Event.PENDING:
            raise AttributeError("value not yet available")
        return self._value

    # -- settling ------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Settle the event successfully and schedule its callbacks."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Inlined env.schedule(self, priority=priority): settling an
        # event is a kernel hot path (every process step ends here).
        # env._push is the queue's push pre-bound at Environment
        # construction (a C heappush partial in heap mode).
        env = self.env
        env._eid += 1
        self._queued = True
        env._push((env._now, priority, env._eid, self))
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Settle the event with an exception."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not Event.PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Settle this event with another event's outcome (callback shape)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- composition ----------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self._processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


#: module-level alias of the sentinel — hot paths compare against a
#: global load instead of the two-step ``Event.PENDING`` class lookup
_PENDING = Event.PENDING


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: "SimTime", value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        # Flattened Event.__init__ + env.schedule — one less call each on
        # the hottest allocation path (every simulated wait is a Timeout).
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._processed = False
        self._queued = True
        self.defused = False
        self.delay = delay
        env._eid += 1
        env._push((env._now + delay, 1, env._eid, self))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Timeout delay={self.delay}>"


class Condition(Event):
    """Base for events that settle when a set of child events settles.

    A failing child fails the condition immediately.  Already-settled
    children are honoured (their outcome counts toward the condition).
    """

    __slots__ = ("_events", "_count", "_needed")

    def __init__(self, env: "Environment", events: list[Event], needed: int) -> None:
        # Flattened Event.__init__ — conditions are built per wait-on-
        # multiple (every invocation's result-or-deadline race is one).
        self.env = env
        self.callbacks = []
        self._value = Event.PENDING
        self._ok = None
        self._processed = False
        self._queued = False
        self.defused = False
        for event in events:
            if event.env is not env:
                raise ValueError("mixing events from different environments")
        self._events = events
        self._count = 0
        self._needed = min(needed, len(events))
        if not events or self._needed == 0:
            self.succeed(self._collect())
            return
        on_child = self._on_child
        for event in events:
            if event._processed:
                on_child(event)
            else:
                event.callbacks.append(on_child)
            if self._value is not _PENDING:
                break

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if event.failed:
                event.defused = True
            return
        if event.failed:
            event.defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count >= self._needed:
            self.succeed(self._collect())

    def _collect(self) -> dict[Event, Any]:
        """Values of all already-processed, successful children, in order."""
        return {
            event: event._value
            for event in self._events
            if event._processed and event._ok
        }


class AllOf(Condition):
    """Settles when *all* child events succeed (or any fails)."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: list[Event]) -> None:
        super().__init__(env, events, needed=len(events))


class AnyOf(Condition):
    """Settles when *any* child event succeeds (or any fails)."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: list[Event]) -> None:
        super().__init__(env, events, needed=1 if events else 0)
