"""The kernel's hot loop, extracted for optional mypyc compilation.

This module contains the per-event drain loops behind
:meth:`repro.sim.core.Environment.run` — the single hottest code in the
repository.  It is written to be compiled by mypyc (see
``tools/build_compiled.py``); when no compiled build is present the
plain interpreted source runs unchanged, so behaviour is identical
either way and the compiled artifact is purely an accelerator.

Two constraints shape the code:

* **Zero package imports.**  mypyc builds this file standalone, so it
  must not import anything from ``repro``.  The event classes and the
  stop exception are injected once via :func:`install` when
  ``repro.sim.core`` loads.
* **Byte-identical semantics.**  The loops here are the former inlined
  bodies of ``Environment.run`` — same pops, same counter flushes, same
  cancellation tombstone handling — proven against every committed
  golden under both queue implementations.

The loop also hosts the event-recycling side of the allocation pool:
after an event's callbacks have run, if the environment pools events and
the *only* remaining reference is the loop's own local (checked with
``sys.getrefcount``), the object is reset and parked on the
environment's freelist for :meth:`Environment.timeout` /
:meth:`Environment.event` to reuse.  Any event the user (or a Condition,
a Store, a pending dict...) still holds fails the refcount guard and is
simply left for the garbage collector — recycling is opt-out-by-holding,
never observable.

``COMPILED`` reports whether this module instance is the mypyc build
(imports of the compiled extension shadow the ``.py`` source on disk).
``REPRO_COMPILED=0`` makes :mod:`repro.sim.core` bypass a compiled build
and load this source file directly.
"""

from heapq import heappop as _heappop
from sys import getrefcount as _getrefcount
from typing import Any, Tuple

#: True when this module instance is the mypyc-compiled extension.
COMPILED: bool = not __file__.endswith(".py")

#: recycled events parked per environment; bounded so a burst can never
#: pin an unbounded amount of memory on the freelist
POOL_CAP: int = 4096

# Injected by install() — the kernel's event classes and stop signal.
# Plain module globals so the loop's type checks are exact-class tests.
_Timeout: Any = None
_Event: Any = None
_Stop: Any = None


def install(timeout_cls: Any, event_cls: Any, stop_exc: Any) -> None:
    """Inject the kernel classes this module must not import."""
    global _Timeout, _Event, _Stop
    _Timeout = timeout_cls
    _Event = event_cls
    _Stop = stop_exc


def run_loop(env: Any) -> Tuple[bool, Any]:
    """Drain *env*'s queue; the body of ``Environment.run``.

    Returns ``(True, value)`` when a :class:`StopSimulation` halted the
    run and ``(False, None)`` when the queue drained.  Counters are
    flushed into the environment (and the process-wide totals) on every
    exit path, including exceptions propagating out of callbacks.
    """
    queue = env._queue
    cancelled = env._cancelled
    tpool = env._timeout_pool
    epool = env._event_pool
    processed = 0
    peak = 0
    try:
        try:
            if env.queue_kind == "heap":
                pop = _heappop
                while queue:
                    # Peak tracking: live depth <= raw length, so only
                    # pay the tombstone subtraction when the raw length
                    # clears the current peak.
                    depth = len(queue)
                    if depth > peak:
                        if cancelled:
                            depth -= len(cancelled)
                        if depth > peak:
                            peak = depth
                    when, _prio, _eid, event = pop(queue)
                    if cancelled and event in cancelled:
                        cancelled.discard(event)
                        event._queued = False
                        continue
                    env._now = when
                    event._processed = True
                    processed += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if event._ok is False:
                        if not event.defused:
                            raise event._value
                    elif tpool is not None:
                        # Recycle: only exact Timeout/Event instances
                        # (subclasses carry extra state), and only when
                        # the loop local is the last reference — 2 is
                        # this frame's slot plus getrefcount's argument.
                        cls = type(event)
                        if cls is _Timeout:
                            if len(tpool) < POOL_CAP and _getrefcount(event) == 2:
                                event._value = None
                                tpool.append(event)
                        elif cls is _Event:
                            if len(epool) < POOL_CAP and _getrefcount(event) == 2:
                                event._value = None
                                epool.append(event)
            else:
                pop = env._pop
                while queue._size:
                    depth = queue._size
                    if depth > peak:
                        if cancelled:
                            depth -= len(cancelled)
                        if depth > peak:
                            peak = depth
                    # Inlined CalendarQueue.pop fast path: in-bucket
                    # drain including the incoming-heap head race (every
                    # zero-delay event lands in the currently-draining
                    # bucket, so the race is the common case, not the
                    # exception); only bucket advance and degraded mode
                    # take the slow path.  All queue state is written
                    # back before callbacks run, so code that peeks or
                    # pushes mid-callback sees it consistent.  Consumed
                    # batch slots are cleared so the recycler's refcount
                    # guard sees the loop as the last holder.
                    batch = queue._batch
                    idx = queue._idx
                    inc = queue._incoming
                    if idx < len(batch):
                        entry = batch[idx]
                        if inc and inc[0] < entry:
                            entry = _heappop(inc)
                        else:
                            batch[idx] = None
                            queue._idx = idx + 1
                        queue._size -= 1
                    elif inc:
                        entry = _heappop(inc)
                        queue._size -= 1
                    else:
                        entry = pop()
                    when, _prio, _eid, event = entry
                    entry = None
                    if cancelled and event in cancelled:
                        cancelled.discard(event)
                        event._queued = False
                        continue
                    env._now = when
                    event._processed = True
                    processed += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if event._ok is False:
                        if not event.defused:
                            raise event._value
                    elif tpool is not None:
                        cls = type(event)
                        if cls is _Timeout:
                            if len(tpool) < POOL_CAP and _getrefcount(event) == 2:
                                event._value = None
                                tpool.append(event)
                        elif cls is _Event:
                            if len(epool) < POOL_CAP and _getrefcount(event) == 2:
                                event._value = None
                                epool.append(event)
        except BaseException as exc:
            if isinstance(exc, _Stop):
                return (True, exc.value)
            raise
        return (False, None)
    finally:
        env._flush_counters(processed, peak)
