"""``sinfo``-like queries with the measured response-latency jitter.

The paper's Slurm-level monitoring (Sec. IV-A) polled node states with a
fixed 10-second spacing between *receiving* one response and *sending* the
next request, because response times varied from under half a second to
almost twenty seconds.  Over their week of calibration, consecutive
measurements were 10 s apart in 76.43% of cases, 11–13 s in 23.26%, and
longer in the remaining 0.31% — we reproduce exactly that mixture here so
the Slurm-level analyses carry the same sampling noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.slurmctld import SlurmController


@dataclass(frozen=True)
class SinfoSnapshot:
    """One point-in-time view of node states, as the poller records it."""

    #: when the response was received (sampling timestamp)
    time: float
    idle_nodes: Tuple[str, ...]
    #: nodes running jobs of the HPC-Whisk partition
    whisk_nodes: Tuple[str, ...]
    #: nodes allocated to prime jobs
    busy_nodes: Tuple[str, ...]
    #: nodes invisible to scheduling (down or commercially reserved)
    unavailable_nodes: Tuple[str, ...]


class QueryLatencyModel:
    """Samples slurmctld response latencies matching the paper's mixture.

    The three observed inter-measurement bands translate to latencies of
    roughly [0, 1) s, [1, 3] s and (3, 10] s given the poller's fixed
    10-second pause between response and next request.
    """

    BANDS: Tuple[Tuple[float, float, float], ...] = (
        (0.7643, 0.05, 0.95),
        (0.2326, 1.0, 3.0),
        (0.0031, 3.0, 10.0),
    )

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._weights = np.array([band[0] for band in self.BANDS])
        self._weights = self._weights / self._weights.sum()

    def sample(self) -> float:
        band = self._rng.choice(len(self.BANDS), p=self._weights)
        _, low, high = self.BANDS[band]
        return float(self._rng.uniform(low, high))


def sinfo(
    controller: "SlurmController",
    whisk_partition: str = "whisk",
    exclude: Optional[set[str]] = None,
) -> SinfoSnapshot:
    """Instantaneous node-state view (the poller adds latency around it)."""
    from repro.cluster.node import NodeState

    exclude = exclude or set()
    idle: List[str] = []
    whisk: List[str] = []
    busy: List[str] = []
    unavailable: List[str] = []
    for name in sorted(controller.nodes):
        if name in exclude:
            continue
        node = controller.nodes[name]
        if node.state is NodeState.IDLE:
            idle.append(name)
        elif node.state is NodeState.ALLOCATED:
            assert node.job is not None
            if node.job.spec.partition == whisk_partition:
                whisk.append(name)
            else:
                busy.append(name)
        else:
            unavailable.append(name)
    return SinfoSnapshot(
        time=controller.env.now,
        idle_nodes=tuple(idle),
        whisk_nodes=tuple(whisk),
        busy_nodes=tuple(busy),
        unavailable_nodes=tuple(unavailable),
    )
