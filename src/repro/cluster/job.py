"""Jobs: specifications, runtime state, and termination signals."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.sim.core import Environment


class JobState(enum.Enum):
    """Lifecycle of a job, mirroring Slurm's visible states."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"      # body finished on its own
    TIMEOUT = "timeout"          # killed at its granted time limit
    PREEMPTED = "preempted"      # cancelled to make room for a higher tier
    CANCELLED = "cancelled"      # withdrawn while pending, or scancel'd
    FAILED = "failed"            # body raised
    NODE_FAIL = "node_fail"      # node went down under the job


class JobSignal(enum.Enum):
    """Signals slurmd delivers into a job body (as Interrupt causes)."""

    SIGTERM = "SIGTERM"
    SIGKILL = "SIGKILL"


#: A job body: a generator factory invoked as ``body(env, job, nodes)``.
#: Prime HPC jobs sleep for their actual runtime; HPC-Whisk pilot jobs run
#: an OpenWhisk invoker.  ``None`` bodies sleep until killed at the limit.
JobBody = Callable[["Environment", "Job", Sequence["Node"]], Generator]

_job_ids = itertools.count(1)


@dataclass
class JobSpec:
    """What a user submits: ``sbatch``-level parameters.

    ``time_min`` enables Slurm's variable-length jobs (``--time-min`` +
    ``--time``): the scheduler may grant any limit in
    ``[time_min, time_limit]`` to fit an availability window.  All times are
    seconds.
    """

    name: str
    num_nodes: int = 1
    time_limit: float = 3600.0
    time_min: Optional[float] = None
    partition: str = "main"
    #: larger = more urgent within the partition's tier.  The fib manager
    #: sets priority proportional to job length (Sec. III-D).
    priority: float = 0.0
    body: Optional[JobBody] = None
    #: pin the job to specific nodes (trace replay uses this)
    required_nodes: Optional[tuple[str, ...]] = None
    #: earliest start (``--begin``); None = as soon as possible.  Trace
    #: replay uses this so early job completions do not compress the trace.
    begin_time: Optional[float] = None
    #: actual work duration for prime jobs (completes early vs the limit);
    #: None means run until the granted limit
    actual_runtime: Optional[float] = None
    user: str = "user"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.time_limit <= 0:
            raise ValueError("time_limit must be positive")
        if self.time_min is not None:
            if self.time_min <= 0 or self.time_min > self.time_limit:
                raise ValueError(
                    f"time_min ({self.time_min}) must be in (0, time_limit]"
                )
        if self.required_nodes is not None and len(self.required_nodes) < self.num_nodes:
            raise ValueError("required_nodes shorter than num_nodes")

    @property
    def is_flexible(self) -> bool:
        """True for variable-length (``--time-min``) jobs."""
        return self.time_min is not None and self.time_min < self.time_limit


class Job:
    """A submitted job tracked by the controller."""

    def __init__(self, spec: JobSpec, submit_time: float) -> None:
        self.job_id: int = next(_job_ids)
        self.spec = spec
        self.state = JobState.PENDING
        self.submit_time = submit_time
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        #: the limit the scheduler granted (== spec.time_limit for fixed
        #: jobs; anything in [time_min, time_limit] for flexible jobs)
        self.granted_time: Optional[float] = None
        self.nodes: tuple["Node", ...] = ()
        #: time SIGTERM was delivered, if any
        self.sigterm_time: Optional[float] = None
        #: why SIGTERM was sent ("preempt" | "timeout" | "cancel")
        self.term_reason: Optional[str] = None
        #: set by slurmd; interrupting this process delivers signals
        self.process: Any = None
        #: arbitrary results the body left behind (pilot statistics etc.)
        self.result: Any = None

    # ------------------------------------------------------------------
    @property
    def is_pending(self) -> bool:
        return self.state is JobState.PENDING

    @property
    def is_running(self) -> bool:
        return self.state is JobState.RUNNING

    @property
    def finished(self) -> bool:
        return self.state not in (JobState.PENDING, JobState.RUNNING)

    @property
    def planned_end(self) -> Optional[float]:
        """Scheduler's view of when the job ends (start + granted limit)."""
        if self.start_time is None or self.granted_time is None:
            return None
        return self.start_time + self.granted_time

    def runtime(self) -> Optional[float]:
        """Wall-clock the job actually ran, once finished."""
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Job {self.job_id} {self.spec.name!r} {self.state.value}"
            f" nodes={self.spec.num_nodes}>"
        )


def reset_job_ids() -> None:
    """Restart the global job-id counter (test isolation)."""
    global _job_ids
    _job_ids = itertools.count(1)
