"""A Slurm-like HPC workload manager, simulated.

This package reimplements the slice of Slurm that HPC-Whisk depends on
(Sec. III-D of the paper):

* whole-node allocations with **priority tiers** — a lower-tier job is never
  placed where it would delay a higher-tier job;
* **preemption** (``PreemptMode=CANCEL``) with a SIGTERM → grace →
  SIGKILL sequence (3-minute grace on Prometheus);
* an EASY-style **backfill scheduler** operating on 2-minute slots over a
  120-minute window, including **variable-length jobs**
  (``--time-min``/``--time``), whose placement procedure is costlier — the
  mechanism the paper blames for the var model's coverage gap;
* a **query interface** (`sinfo`-like) with the response-latency jitter the
  authors measured while polling the production system.

The controller is :class:`~repro.cluster.slurmctld.SlurmController`; each
node runs a :class:`~repro.cluster.slurmd.NodeDaemon`.
"""

from repro.cluster.job import (
    Job,
    JobSignal,
    JobSpec,
    JobState,
)
from repro.cluster.node import Node, NodeState
from repro.cluster.partition import Partition, PreemptMode
from repro.cluster.backfill import BackfillScheduler, SchedulerConfig
from repro.cluster.slurmctld import SlurmConfig, SlurmController
from repro.cluster.slurmd import NodeDaemon
from repro.cluster.reservations import Reservation
from repro.cluster.query import QueryLatencyModel, SinfoSnapshot
from repro.cluster.accounting import (
    PartitionAccounting,
    merge_accounts,
    render_sacct,
    summarize,
)
from repro.cluster.federation import Federation

__all__ = [
    "BackfillScheduler",
    "Federation",
    "PartitionAccounting",
    "merge_accounts",
    "render_sacct",
    "summarize",
    "Job",
    "JobSignal",
    "JobSpec",
    "JobState",
    "Node",
    "NodeState",
    "NodeDaemon",
    "Partition",
    "PreemptMode",
    "QueryLatencyModel",
    "Reservation",
    "SchedulerConfig",
    "SinfoSnapshot",
    "SlurmConfig",
    "SlurmController",
]
