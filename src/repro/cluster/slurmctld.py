"""The cluster controller: queue, dispatch, preemption, accounting.

:class:`SlurmController` is the ``slurmctld`` of the reproduction.  It owns
the pending queue and the nodes, runs scheduling passes (event-triggered
with a small latency, plus periodic), executes the
:class:`~repro.cluster.backfill.BackfillScheduler`'s decisions through
:class:`~repro.cluster.slurmd.NodeDaemon`, and keeps the per-node
allocation interval log every analysis in this repository reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.backfill import BackfillScheduler, SchedulerConfig, SchedulingPlan
from repro.cluster.job import Job, JobSpec, JobState
from repro.cluster.node import Node, NodeState
from repro.cluster.partition import Partition, default_partitions
from repro.cluster.slurmd import JobExecution, NodeDaemon
from repro.sim import Environment


@dataclass
class SlurmConfig:
    """Cluster-level configuration."""

    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    #: SIGTERM → SIGKILL delay at a job's *time limit* (Slurm KillWait)
    kill_wait: float = 30.0
    #: number of nodes when building a uniform cluster
    num_nodes: int = 16
    node_cores: int = 24
    node_memory_mb: int = 131072
    #: federation member id; "" means "unnamed" (resolves to ``c0``)
    cluster_id: str = ""


@dataclass
class AllocationInterval:
    """One contiguous allocation of a node by a job (for the interval log)."""

    node: str
    start: float
    end: Optional[float]
    job_id: int
    partition: str


class SlurmController:
    """Central workload manager for a simulated cluster."""

    def __init__(
        self,
        env: Environment,
        config: Optional[SlurmConfig] = None,
        partitions: Optional[Dict[str, Partition]] = None,
        nodes: Optional[Sequence[Node]] = None,
        rng=None,
    ) -> None:
        self.env = env
        self.config = config or SlurmConfig()
        #: federation member id this controller answers to
        self.cluster_id = self.config.cluster_id or "c0"
        self.partitions = partitions or default_partitions()
        if nodes is None:
            nodes = [
                Node(
                    name=f"n{i:04d}",
                    cores=self.config.node_cores,
                    memory_mb=self.config.node_memory_mb,
                )
                for i in range(self.config.num_nodes)
            ]
        self.nodes: Dict[str, Node] = {n.name: n for n in nodes}
        self.scheduler = BackfillScheduler(self.config.scheduler, rng=rng)
        self.daemon = NodeDaemon(env, kill_wait=self.config.kill_wait)

        self.pending: List[Job] = []
        self.running: Dict[int, JobExecution] = {}
        self.completed: List[Job] = []
        #: node name -> job id of the waiting job the node is being freed for
        self.committed: Dict[str, int] = {}

        #: per-node allocation history (closed and open intervals)
        self.allocation_log: List[AllocationInterval] = []
        self._open_intervals: Dict[Tuple[str, int], AllocationInterval] = {}

        #: subscribers called as ``fn(job)`` when a job reaches a final state
        self.on_job_end: List[Callable[[Job], None]] = []
        #: subscribers called as ``fn(job)`` when a job starts running
        self.on_job_start: List[Callable[[Job], None]] = []

        self._pass_pending = False
        self._sched_proc = env.process(self._scheduler_loop())
        self._flex_proc = env.process(self._flex_loop())

    # ------------------------------------------------------------------
    # public job API (sbatch / scancel / squeue)
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        """``sbatch``: enqueue a job and trigger a scheduling pass."""
        partition = self.partitions.get(spec.partition)
        if partition is None:
            raise ValueError(f"unknown partition {spec.partition!r}")
        partition.validate_time_limit(spec.time_limit)
        job = Job(spec, submit_time=self.env.now)
        self.pending.append(job)
        self.request_pass()
        return job

    def cancel(self, job: Job) -> None:
        """``scancel``: withdraw a pending job or kill a running one."""
        if job.is_pending:
            job.state = JobState.CANCELLED
            job.end_time = self.env.now
            self.pending.remove(job)
            self.completed.append(job)
            self.committed = {
                name: jid for name, jid in self.committed.items() if jid != job.job_id
            }
        elif job.is_running:
            self.running[job.job_id].cancel()

    def pending_jobs(self, partition: Optional[str] = None) -> List[Job]:
        """``squeue -t PD``-ish view."""
        jobs = list(self.pending)
        if partition is not None:
            jobs = [j for j in jobs if j.spec.partition == partition]
        return jobs

    def running_jobs(self, partition: Optional[str] = None) -> List[Job]:
        jobs = [execution.job for execution in self.running.values()]
        if partition is not None:
            jobs = [j for j in jobs if j.spec.partition == partition]
        return jobs

    # ------------------------------------------------------------------
    # node views
    # ------------------------------------------------------------------
    def nodes_in_state(self, state: NodeState) -> List[Node]:
        return [n for n in self.nodes.values() if n.state is state]

    def idle_node_names(self) -> List[str]:
        return sorted(n.name for n in self.nodes.values() if n.state is NodeState.IDLE)

    def nodes_running_partition(self, partition: str) -> List[str]:
        return sorted(
            n.name
            for n in self.nodes.values()
            if n.state is NodeState.ALLOCATED
            and n.job is not None
            and n.job.spec.partition == partition
        )

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------
    def fail_node(self, name: str) -> None:
        """Take a node down, killing whatever runs there (NODE_FAIL).

        The job's body gets an immediate SIGKILL — no SIGTERM, no drain:
        this is the ungraceful loss path.  A pilot's invoker simply stops
        pinging; the FaaS controller must detect it via the ping timeout,
        and the stranded messages time out (stock-OpenWhisk behaviour the
        drain protocol normally avoids).
        """
        node = self.nodes[name]
        if node.state is NodeState.ALLOCATED and node.job is not None:
            execution = self.running.get(node.job.job_id)
            if execution is not None:
                execution.node_fail()

        def downer():
            # Teardown runs within the current instant's event cascade;
            # give it one tick, then flip the node to DOWN.
            while self.nodes[name].state is NodeState.ALLOCATED:
                yield self.env.timeout(0.01)
            if self.nodes[name].state is NodeState.IDLE:
                self.nodes[name].set_down()
            self.request_pass()

        self.env.process(downer())

    def restore_node(self, name: str) -> None:
        """Return a DOWN node to service."""
        node = self.nodes[name]
        if node.state is NodeState.DOWN:
            node.set_idle(self.env.now)
            self.request_pass()

    # ------------------------------------------------------------------
    # scheduling machinery
    # ------------------------------------------------------------------
    def request_pass(self) -> None:
        """Ask for a scheduling pass `sched_latency` seconds from now.

        Multiple requests within the same latency window coalesce into one
        pass, mimicking Slurm's batched event-driven scheduling.
        """
        self._pass_pending = True

    def _scheduler_loop(self):
        """Main scheduler: event-triggered + periodic, prime tiers only.

        Tier-0 (pilot) placement is deliberately *not* done here: real
        Slurm's backfill is a separate, slower cycle, and the paper's
        coverage numbers reflect that placement latency.
        """
        cfg = self.config.scheduler
        env = self.env
        next_periodic = env.now
        while True:
            if self._pass_pending:
                self._pass_pending = False
                yield env.timeout(cfg.sched_latency)
                self._run_pass(include_tier0=False, include_flexible=False)
            elif env.now >= next_periodic:
                next_periodic = env.now + cfg.sched_interval
                self._run_pass(include_tier0=False, include_flexible=False)
            else:
                # Sleep until the next periodic tick, but poll for event
                # requests at a fine grain so event-triggered passes keep
                # their low latency.
                yield env.timeout(min(cfg.sched_latency, max(next_periodic - env.now, 0.01)))

    def _flex_loop(self):
        """The backfill cycle: places tier-0 jobs; flexible ones less often."""
        cfg = self.config.scheduler
        env = self.env
        since_flex = 0.0
        while True:
            yield env.timeout(cfg.bf_interval)
            since_flex += cfg.bf_interval
            include_flexible = since_flex >= cfg.bf_flex_interval
            if include_flexible:
                since_flex = 0.0
            self._run_pass(include_tier0=True, include_flexible=include_flexible)

    def _run_pass(self, include_tier0: bool, include_flexible: bool) -> SchedulingPlan:
        plan = self.scheduler.plan(
            now=self.env.now,
            pending=self.pending,
            nodes=self.nodes,
            partitions=self.partitions,
            committed=self.committed,
            include_tier0=include_tier0,
            include_flexible=include_flexible,
        )
        # Preemptions first: they free nodes for committed starts.
        self.committed.update(plan.commits)
        for decision in plan.preemptions:
            victim = decision.victim
            execution = self.running.get(victim.job_id)
            if execution is None:
                continue
            grace = self.partitions[victim.spec.partition].grace_time
            for node in victim.nodes:
                self.committed[node.name] = decision.for_job.job_id
            execution.preempt(reason="preempt", grace=grace)
        for decision in plan.starts:
            self._start_job(decision.job, decision.nodes, decision.granted_time)
        return plan

    def _start_job(self, job: Job, nodes: Tuple[Node, ...], granted: float) -> None:
        if not job.is_pending:  # pragma: no cover - defensive
            return
        self.pending.remove(job)
        # Release every node held on this job's behalf (it is starting now,
        # possibly on a different set than was originally committed).
        self.committed = {
            name: jid for name, jid in self.committed.items() if jid != job.job_id
        }
        for node in nodes:
            self.committed.pop(node.name, None)
        execution = self.daemon.execute(job, nodes, granted, self._job_ended)
        self.running[job.job_id] = execution
        for node in nodes:
            interval = AllocationInterval(
                node=node.name,
                start=self.env.now,
                end=None,
                job_id=job.job_id,
                partition=job.spec.partition,
            )
            self.allocation_log.append(interval)
            self._open_intervals[(node.name, job.job_id)] = interval
        for callback in self.on_job_start:
            callback(job)

    def _job_ended(self, job: Job) -> None:
        self.running.pop(job.job_id, None)
        self.completed.append(job)
        for node in job.nodes:
            interval = self._open_intervals.pop((node.name, job.job_id), None)
            if interval is not None:
                interval.end = self.env.now
        for callback in self.on_job_end:
            callback(job)
        self.request_pass()

    # ------------------------------------------------------------------
    # accounting helpers
    # ------------------------------------------------------------------
    def close_interval_log(self) -> None:
        """Close still-open allocation intervals at the current time."""
        for interval in self._open_intervals.values():
            interval.end = self.env.now
        self._open_intervals.clear()

    def utilization(self, start: float, end: float, partition: Optional[str] = None) -> float:
        """Fraction of node-time allocated over [start, end]."""
        if end <= start:
            raise ValueError("empty accounting window")
        total = (end - start) * len(self.nodes)
        busy = 0.0
        for interval in self.allocation_log:
            if partition is not None and interval.partition != partition:
                continue
            s = max(interval.start, start)
            e = min(interval.end if interval.end is not None else end, end)
            if e > s:
                busy += e - s
        return busy / total
