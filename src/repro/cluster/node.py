"""Cluster nodes and their states."""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.job import Job


class NodeState(enum.Enum):
    """Slurm-style node states, reduced to what the experiments observe."""

    #: available and empty
    IDLE = "idle"
    #: running a job (prime or pilot)
    ALLOCATED = "allocated"
    #: out of service (maintenance / failure) — invisible to scheduling
    DOWN = "down"
    #: held by a commercial block reservation — never harvested
    RESERVED = "reserved"


class Node:
    """A whole-node allocation unit.

    Prometheus' main partition schedules these jobs node-exclusively, so a
    node runs at most one job at a time.  ``cores``/``memory_mb`` default to
    the Prometheus hardware (2× 12-core Xeon E5-2680v3, 128 GB).
    """

    __slots__ = ("name", "cores", "memory_mb", "state", "job", "idle_since")

    def __init__(
        self,
        name: str,
        cores: int = 24,
        memory_mb: int = 131072,
    ) -> None:
        self.name = name
        self.cores = cores
        self.memory_mb = memory_mb
        self.state = NodeState.IDLE
        self.job: Optional["Job"] = None
        #: simulation time at which the node last became idle (for metrics)
        self.idle_since: float = 0.0

    # ------------------------------------------------------------------
    @property
    def available(self) -> bool:
        """True if the node can be allocated right now."""
        return self.state is NodeState.IDLE

    def allocate(self, job: "Job", now: float) -> None:
        if self.state is not NodeState.IDLE:
            raise RuntimeError(
                f"node {self.name} is {self.state.value}, cannot allocate {job.job_id}"
            )
        self.state = NodeState.ALLOCATED
        self.job = job

    def release(self, now: float) -> None:
        if self.state is not NodeState.ALLOCATED:
            raise RuntimeError(f"node {self.name} is {self.state.value}, cannot release")
        self.state = NodeState.IDLE
        self.job = None
        self.idle_since = now

    def set_down(self) -> None:
        if self.job is not None:
            raise RuntimeError(f"node {self.name} has a running job")
        self.state = NodeState.DOWN

    def set_reserved(self) -> None:
        if self.job is not None:
            raise RuntimeError(f"node {self.name} has a running job")
        self.state = NodeState.RESERVED

    def set_idle(self, now: float) -> None:
        """Return a DOWN/RESERVED node to service."""
        if self.state is NodeState.ALLOCATED:
            raise RuntimeError(f"node {self.name} has a running job")
        self.state = NodeState.IDLE
        self.idle_since = now

    def __repr__(self) -> str:  # pragma: no cover
        tag = self.job.job_id if self.job else "-"
        return f"<Node {self.name} {self.state.value} job={tag}>"
