"""Job execution on nodes: signal delivery and lifecycle.

One :class:`JobExecution` drives one running job, playing the role of the
``slurmd`` daemons on the job's nodes:

* runs the job body (a generator; prime jobs are simple sleeps),
* enforces the granted time limit — SIGTERM at the limit, SIGKILL
  ``kill_wait`` seconds later (Slurm's ``KillWait``),
* implements preemption — SIGTERM immediately, SIGKILL after the
  partition's ``GraceTime`` (3 minutes in the paper's configuration).

Signals are delivered as :class:`~repro.sim.process.Interrupt` with a
:class:`TermSignal` cause, which pilot-job bodies catch to run the
drain-and-deregister handoff (Sec. III-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.cluster.job import Job, JobSignal, JobState
from repro.sim import Environment, Interrupt, Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node


@dataclass(frozen=True)
class TermSignal:
    """Cause object attached to termination interrupts."""

    signal: JobSignal
    #: "preempt" | "timeout" | "cancel"
    reason: str
    #: seconds until SIGKILL follows (grace for preempt, kill_wait for timeout)
    grace: float


class _Preempt(Exception):
    """Internal cause used to wake the execution watchdog."""

    def __init__(self, reason: str, grace: float) -> None:
        super().__init__(reason)
        self.reason = reason
        self.grace = grace


def _wrap_body(generator):
    """Run a job body, converting every outcome into a plain return value.

    The watchdog waits on the wrapped process with ``yield body | timer``;
    if the body process itself could *fail*, that condition would re-raise
    inside the watchdog.  Wrapping keeps the watchdog's control flow linear:
    the outcome is inspected as a ``(status, payload)`` tuple.
    """
    try:
        value = yield from generator
        return ("completed", value)
    except Interrupt as interrupt:
        # An uncaught SIGTERM/SIGKILL: the body made no attempt to drain.
        return ("killed", interrupt.cause)
    except Exception as exc:  # noqa: BLE001 - body bugs become FAILED jobs
        return ("failed", exc)


class NodeDaemon:
    """Factory for job executions; one logical daemon per cluster.

    Real Slurm runs one ``slurmd`` per node; since our nodes share one
    event loop there is no benefit to per-node processes, but the class
    boundary keeps signal logic out of the controller.
    """

    def __init__(self, env: Environment, kill_wait: float = 30.0) -> None:
        self.env = env
        self.kill_wait = kill_wait

    def execute(
        self,
        job: Job,
        nodes: Sequence["Node"],
        granted_time: float,
        on_end: Callable[[Job], None],
    ) -> "JobExecution":
        execution = JobExecution(self, job, nodes, granted_time, on_end)
        execution.start()
        return execution


class JobExecution:
    """Drives one running job to completion, timeout, or preemption."""

    def __init__(
        self,
        daemon: NodeDaemon,
        job: Job,
        nodes: Sequence["Node"],
        granted_time: float,
        on_end: Callable[[Job], None],
    ) -> None:
        self.daemon = daemon
        self.env = daemon.env
        self.job = job
        self.nodes = tuple(nodes)
        self.granted_time = granted_time
        self.on_end = on_end
        self._watchdog: Optional[Process] = None
        self._body: Optional[Process] = None
        self._preempting = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        env = self.env
        job = self.job
        job.state = JobState.RUNNING
        job.start_time = env.now
        job.granted_time = self.granted_time
        job.nodes = self.nodes
        for node in self.nodes:
            node.allocate(job, env.now)
        self._watchdog = env.process(self._run())
        self._watchdog.name = f"exec-{job.job_id}"

    def preempt(self, reason: str = "preempt", grace: Optional[float] = None) -> None:
        """Begin eviction: SIGTERM now, SIGKILL after *grace* seconds."""
        if self._preempting or self.job.finished:
            return
        self._preempting = True
        if grace is None:
            grace = 180.0
        assert self._watchdog is not None
        self._watchdog.interrupt(_Preempt(reason, grace))

    def cancel(self) -> None:
        """scancel a running job (same signal path, zero political grace)."""
        self.preempt(reason="cancel", grace=self.daemon.kill_wait)

    def node_fail(self) -> None:
        """The node died under the job: hard kill, no SIGTERM, no drain."""
        if self._preempting or self.job.finished:
            return
        self._preempting = True
        assert self._watchdog is not None
        self._watchdog.interrupt(_Preempt("node_fail", 0.0))

    # ------------------------------------------------------------------
    def _run(self):
        env = self.env
        job = self.job
        body_gen = None
        if job.spec.body is not None:
            body_gen = job.spec.body(env, job, self.nodes)

        if body_gen is not None:
            self._body = env.process(_wrap_body(body_gen))
            self._body.name = f"body-{job.job_id}"
            job.process = self._body

        final_state = JobState.COMPLETED
        reason: Optional[str] = None
        try:
            if self._body is not None:
                limit = env.timeout(self.granted_time)
                yield self._body | limit
                if self._body.is_alive:
                    # Granted limit reached: SIGTERM, then SIGKILL.
                    final_state = JobState.TIMEOUT
                    reason = "timeout"
                    yield from self._signal_sequence("timeout", self.daemon.kill_wait)
                elif self._body.value[0] == "failed":
                    final_state = JobState.FAILED
            else:
                # Sleep job: runs for its actual runtime, capped at the limit.
                actual = job.spec.actual_runtime
                duration = self.granted_time if actual is None else min(actual, self.granted_time)
                yield env.timeout(duration)
                if actual is not None and actual > self.granted_time:
                    final_state = JobState.TIMEOUT
        except Interrupt as interrupt:
            cause = interrupt.cause
            if not isinstance(cause, _Preempt):  # pragma: no cover - defensive
                raise
            if cause.reason == "node_fail":
                final_state = JobState.NODE_FAIL
            elif cause.reason == "preempt":
                final_state = JobState.PREEMPTED
            else:
                final_state = JobState.CANCELLED
            reason = cause.reason
            if cause.reason == "node_fail":
                # Hard kill: straight to SIGKILL, no grace, no drain.
                if self._body is not None and self._body.is_alive:
                    job.sigterm_time = env.now
                    job.term_reason = reason
                    self._body.interrupt(TermSignal(JobSignal.SIGKILL, reason, 0.0))
                    yield self._body
            elif self._body is not None and self._body.is_alive:
                yield from self._signal_sequence(cause.reason, cause.grace)
            elif self._body is not None:
                # Race: the body finished at the very instant of preemption.
                final_state = (
                    JobState.COMPLETED
                    if self._body.value[0] == "completed"
                    else JobState.FAILED
                )
                reason = None
            elif self._body is None:
                # Sleep job under eviction: it ends at SIGKILL unless its
                # natural end comes first.
                assert job.start_time is not None
                actual = job.spec.actual_runtime
                natural_remaining = (
                    None
                    if actual is None
                    else max(0.0, (job.start_time + actual) - env.now)
                )
                if natural_remaining is not None and natural_remaining <= cause.grace:
                    yield env.timeout(natural_remaining)
                    final_state = JobState.COMPLETED
                else:
                    yield env.timeout(cause.grace)

        self._finish(final_state, reason)

    def _signal_sequence(self, reason: str, grace: float):
        """SIGTERM the body; SIGKILL after *grace* if it is still alive."""
        env = self.env
        job = self.job
        assert self._body is not None
        job.sigterm_time = env.now
        job.term_reason = reason
        self._body.interrupt(TermSignal(JobSignal.SIGTERM, reason, grace))
        deadline = env.timeout(grace)
        yield self._body | deadline
        if self._body.is_alive:
            self._body.interrupt(TermSignal(JobSignal.SIGKILL, reason, 0.0))
            yield self._body  # bodies must exit promptly on SIGKILL

    def _finish(self, state: JobState, reason: Optional[str]) -> None:
        env = self.env
        job = self.job
        job.state = state
        job.end_time = env.now
        if reason is not None:
            job.term_reason = reason
        if self._body is not None and self._body.processed and self._body.ok:
            status, payload = self._body.value
            if status == "completed":
                job.result = payload
        for node in self.nodes:
            node.release(env.now)
        self.on_end(job)
