"""A federation of Slurm clusters behind one merged query surface.

Real sites run fleets of heterogeneous partitions and clusters; the
:class:`Federation` facade makes N :class:`~repro.cluster.slurmctld.SlurmController`
members addressable by ``cluster_id`` and exposes the merged views the
upper layers need — joint job queues, node counts, utilization weighted
by member size, and per-cluster + merged ``sacct``-style accounting.

Every member keeps its own scheduler hot loop, pending queue, and
allocation log; the federation never schedules across members itself.
Cross-cluster *activation* routing lives one layer up, in
:class:`repro.faas.router.FederationRouter` — this facade is the Slurm
half of the control plane.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.accounting import PartitionAccounting, merge_accounts, summarize
from repro.cluster.job import Job
from repro.cluster.slurmctld import SlurmController


class Federation:
    """N member clusters under one control plane, keyed by ``cluster_id``."""

    def __init__(self, members: Sequence[SlurmController]) -> None:
        if not members:
            raise ValueError("a federation needs at least one member cluster")
        self._members: Dict[str, SlurmController] = {}
        for member in members:
            if member.cluster_id in self._members:
                raise ValueError(
                    f"duplicate cluster_id {member.cluster_id!r} in federation"
                )
            self._members[member.cluster_id] = member

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @property
    def ids(self) -> List[str]:
        """Member ids in declaration order (the failover order)."""
        return list(self._members)

    @property
    def primary(self) -> SlurmController:
        """The first-declared member (the N=1 compatibility cluster)."""
        return next(iter(self._members.values()))

    def cluster(self, cluster_id: str) -> SlurmController:
        try:
            return self._members[cluster_id]
        except KeyError:
            raise KeyError(
                f"unknown cluster {cluster_id!r}; members: {self.ids}"
            ) from None

    def members(self) -> List[Tuple[str, SlurmController]]:
        return list(self._members.items())

    def __iter__(self) -> Iterator[SlurmController]:
        return iter(self._members.values())

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, cluster_id: str) -> bool:
        return cluster_id in self._members

    # ------------------------------------------------------------------
    # merged queries (squeue / sinfo over the fleet)
    # ------------------------------------------------------------------
    @property
    def total_nodes(self) -> int:
        return sum(len(member.nodes) for member in self)

    def pending_jobs(self, partition: Optional[str] = None) -> List[Job]:
        jobs: List[Job] = []
        for member in self:
            jobs.extend(member.pending_jobs(partition))
        return jobs

    def running_jobs(self, partition: Optional[str] = None) -> List[Job]:
        jobs: List[Job] = []
        for member in self:
            jobs.extend(member.running_jobs(partition))
        return jobs

    def idle_node_names(self) -> Dict[str, List[str]]:
        """``cluster_id -> sorted idle node names`` across the fleet."""
        return {cid: member.idle_node_names() for cid, member in self.members()}

    def idle_node_count(self) -> int:
        return sum(len(names) for names in self.idle_node_names().values())

    # ------------------------------------------------------------------
    # merged accounting
    # ------------------------------------------------------------------
    def utilization(
        self, start: float, end: float, partition: Optional[str] = None
    ) -> float:
        """Node-time-weighted utilization over every member's log."""
        total = sum(len(member.nodes) for member in self)
        if total == 0:
            return 0.0
        weighted = sum(
            member.utilization(start, end, partition) * len(member.nodes)
            for member in self
        )
        return weighted / total

    def summarize(self) -> Dict[str, Dict[str, PartitionAccounting]]:
        """Per-member ``sacct`` accounting, keyed by cluster id."""
        return {cid: summarize(member) for cid, member in self.members()}

    def summarize_merged(self) -> Dict[str, PartitionAccounting]:
        """Fleet-wide accounting: every member's jobs in one view."""
        return merge_accounts(list(self.summarize().values()))

    def close_interval_logs(self) -> None:
        for member in self:
            member.close_interval_log()

    # ------------------------------------------------------------------
    # fleet-level failure injection (outage / maintenance windows)
    # ------------------------------------------------------------------
    def fail_cluster(self, cluster_id: str) -> None:
        """Take every node of one member down (a whole-cluster outage)."""
        member = self.cluster(cluster_id)
        for name in sorted(member.nodes):
            member.fail_node(name)

    def restore_cluster(self, cluster_id: str) -> None:
        """Return every DOWN node of one member to service."""
        member = self.cluster(cluster_id)
        for name in sorted(member.nodes):
            member.restore_node(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = {cid: len(m.nodes) for cid, m in self.members()}
        return f"Federation({sizes})"


def federation_of(members: Mapping[str, SlurmController]) -> Federation:
    """Build a federation from an already-keyed mapping (id order kept)."""
    return Federation(list(members.values()))
