"""Partitions: priority tiers and preemption policy."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class PreemptMode(enum.Enum):
    """Slurm ``PreemptMode`` values the reproduction uses."""

    OFF = "off"
    #: preempted jobs are cancelled (after GraceTime) — HPC-Whisk's setting
    CANCEL = "cancel"


@dataclass(frozen=True)
class Partition:
    """A named partition with a priority tier.

    The paper's configuration (Sec. III-D): the HPC-Whisk partition has
    ``PriorityTier`` 0 — the lowest possible — and ``PreemptMode=CANCEL``;
    prime partitions have tier >= 1.  Slurm never allots a lower-tier job
    where it would delay any higher-tier job, and jobs in a CANCEL
    partition may be evicted with a grace period.
    """

    name: str
    priority_tier: int = 1
    preempt_mode: PreemptMode = PreemptMode.OFF
    #: SIGTERM → SIGKILL grace for preempted jobs, seconds (GraceTime)
    grace_time: float = 180.0
    #: maximum time limit a job in this partition may declare, seconds
    max_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.priority_tier < 0:
            raise ValueError("priority_tier must be >= 0")
        if self.grace_time < 0:
            raise ValueError("grace_time must be >= 0")
        if self.max_time is not None and self.max_time <= 0:
            raise ValueError("max_time must be positive")

    @property
    def preemptible(self) -> bool:
        """True if jobs in this partition may be preempted."""
        return self.preempt_mode is PreemptMode.CANCEL

    def validate_time_limit(self, time_limit: float) -> None:
        if self.max_time is not None and time_limit > self.max_time:
            raise ValueError(
                f"time limit {time_limit}s exceeds partition {self.name!r}"
                f" MaxTime {self.max_time}s"
            )


def default_partitions(grace_time: float = 180.0) -> dict[str, Partition]:
    """The two-partition layout from the paper.

    ``main`` hosts the prime HPC workload at tier 1; ``whisk`` hosts
    preemptible pilot jobs at tier 0 with a 2-hour MaxTime (the backfill
    window).
    """
    return {
        "main": Partition(name="main", priority_tier=1, preempt_mode=PreemptMode.OFF),
        "whisk": Partition(
            name="whisk",
            priority_tier=0,
            preempt_mode=PreemptMode.CANCEL,
            grace_time=grace_time,
            max_time=7200.0,
        ),
    }
