"""``sacct``-like job accounting over a controller's history.

Summaries the experiments and examples use when reporting on the prime
workload's experience — crucially, evidence for design goal 1 (minimal
invasiveness): queue-wait statistics of prime jobs with and without the
HPC-Whisk supply must be indistinguishable up to drain-time effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

import numpy as np

from repro.cluster.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.slurmctld import SlurmController


@dataclass
class PartitionAccounting:
    """Aggregates for one partition."""

    partition: str
    jobs_total: int = 0
    by_state: Dict[str, int] = field(default_factory=dict)
    node_seconds: float = 0.0
    #: submit → start delays of started jobs, seconds
    wait_times: List[float] = field(default_factory=list)
    #: start → end durations of finished jobs, seconds
    run_times: List[float] = field(default_factory=list)

    @property
    def mean_wait(self) -> float:
        return float(np.mean(self.wait_times)) if self.wait_times else 0.0

    @property
    def median_wait(self) -> float:
        return float(np.median(self.wait_times)) if self.wait_times else 0.0

    @property
    def node_hours(self) -> float:
        return self.node_seconds / 3600.0


def summarize(controller: "SlurmController") -> Dict[str, PartitionAccounting]:
    """Build per-partition accounting from a controller's job history."""
    accounts: Dict[str, PartitionAccounting] = {}
    jobs: List[Job] = list(controller.completed) + controller.running_jobs()
    for job in jobs:
        partition = job.spec.partition
        account = accounts.get(partition)
        if account is None:
            account = PartitionAccounting(partition=partition)
            accounts[partition] = account
        account.jobs_total += 1
        account.by_state[job.state.value] = account.by_state.get(job.state.value, 0) + 1
        if job.start_time is not None:
            effective_start = (
                job.spec.begin_time
                if job.spec.begin_time is not None and job.spec.begin_time > job.submit_time
                else job.submit_time
            )
            account.wait_times.append(max(0.0, job.start_time - effective_start))
            end = job.end_time if job.end_time is not None else controller.env.now
            account.run_times.append(end - job.start_time)
            account.node_seconds += (end - job.start_time) * job.spec.num_nodes
    return accounts


def merge_accounts(
    sides: List[Dict[str, PartitionAccounting]]
) -> Dict[str, PartitionAccounting]:
    """Merge per-cluster accountings into one fleet-wide view.

    Counts and node-seconds add; wait/run-time lists concatenate, so the
    merged means/medians weight every job equally regardless of which
    member cluster ran it.
    """
    merged: Dict[str, PartitionAccounting] = {}
    for accounts in sides:
        for partition, account in accounts.items():
            target = merged.get(partition)
            if target is None:
                target = PartitionAccounting(partition=partition)
                merged[partition] = target
            target.jobs_total += account.jobs_total
            for state, count in account.by_state.items():
                target.by_state[state] = target.by_state.get(state, 0) + count
            target.node_seconds += account.node_seconds
            target.wait_times.extend(account.wait_times)
            target.run_times.extend(account.run_times)
    return merged


def render_sacct(accounts: Dict[str, PartitionAccounting]) -> str:
    """A compact text view of the accounting."""
    lines = [
        f"{'partition':<10} {'jobs':>6} {'node-hours':>11} {'mean wait':>10} "
        f"{'median wait':>12}  states"
    ]
    for partition in sorted(accounts):
        account = accounts[partition]
        states = ", ".join(
            f"{state}:{count}" for state, count in sorted(account.by_state.items())
        )
        lines.append(
            f"{partition:<10} {account.jobs_total:>6d} {account.node_hours:>11.2f} "
            f"{account.mean_wait:>9.1f}s {account.median_wait:>11.1f}s  {states}"
        )
    return "\n".join(lines)


def prime_wait_comparison(
    with_whisk: Dict[str, PartitionAccounting],
    without_whisk: Dict[str, PartitionAccounting],
    partition: str = "main",
) -> Dict[str, float]:
    """Design-goal-1 evidence: prime-job wait deltas with vs without pilots."""
    a = with_whisk.get(partition)
    b = without_whisk.get(partition)
    if a is None or b is None:
        raise ValueError(f"partition {partition!r} missing from one side")
    return {
        "mean_wait_with": a.mean_wait,
        "mean_wait_without": b.mean_wait,
        "mean_wait_delta": a.mean_wait - b.mean_wait,
        "median_wait_with": a.median_wait,
        "median_wait_without": b.median_wait,
    }
