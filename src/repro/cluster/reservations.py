"""Commercial block reservations.

On Prometheus, commercial customers reserve blocks of nodes for long
periods, managed outside Slurm's scientific queue: *no scientific job can be
executed on an idle, yet reserved node* (Sec. I).  The paper excludes such
nodes from all idleness analyses; we model them so the analysis layer has
something real to exclude.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.slurmctld import SlurmController


@dataclass(frozen=True)
class Reservation:
    """A block of nodes held for a customer over a time range."""

    name: str
    node_names: Tuple[str, ...]
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("reservation must have positive duration")
        if not self.node_names:
            raise ValueError("reservation must cover at least one node")

    def active_at(self, now: float) -> bool:
        return self.start <= now < self.end


class ReservationManager:
    """Applies reservations to a controller's nodes over simulated time.

    Reserved nodes are flipped to ``RESERVED`` at the reservation start and
    released at its end.  A reservation whose nodes are busy at start time
    raises — generators must place reservations on nodes they keep free,
    exactly as the real cluster's separately-managed commercial blocks are.
    """

    def __init__(self, controller: "SlurmController", reservations: Iterable[Reservation]) -> None:
        self.controller = controller
        self.reservations: List[Reservation] = sorted(reservations, key=lambda r: r.start)
        for reservation in self.reservations:
            for name in reservation.node_names:
                if name not in controller.nodes:
                    raise ValueError(f"reservation {reservation.name!r}: unknown node {name}")
        controller.env.process(self._run())

    def reserved_node_names(self, now: float) -> set[str]:
        """Names of nodes under an active reservation at *now*."""
        return {
            name
            for reservation in self.reservations
            if reservation.active_at(now)
            for name in reservation.node_names
        }

    def _run(self):
        env = self.controller.env
        events: List[Tuple[float, bool, Reservation]] = []
        for reservation in self.reservations:
            events.append((reservation.start, True, reservation))
            events.append((reservation.end, False, reservation))
        events.sort(key=lambda item: (item[0], not item[1]))
        for when, is_start, reservation in events:
            if when > env.now:
                yield env.timeout(when - env.now)
            for name in reservation.node_names:
                node = self.controller.nodes[name]
                if is_start:
                    node.set_reserved()
                else:
                    node.set_idle(env.now)
            self.controller.request_pass()
