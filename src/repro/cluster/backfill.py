"""Priority-tier scheduling with EASY-style backfill.

The planner is a pure function over controller state: given the clock, the
pending queue, and node/running-job status, it returns *decisions* — jobs to
start now (with granted time limits) and preemptions to issue.  The
controller (:mod:`repro.cluster.slurmctld`) owns all side effects.

Semantics reproduced from the paper's Slurm configuration (Sec. III-D):

* Higher priority tiers are planned first; a lower-tier job is started only
  where it cannot delay any known higher-tier start ("Slurm never allots a
  job with a lower priority tier if it would delay any job with a higher
  priority tier").
* Tier-0 jobs in a ``PreemptMode=CANCEL`` partition are *invisible* to
  higher-tier planning: a node running one counts as preemptable-now.
* Backfill operates on 2-minute slots over a 120-minute window: granted
  times of flexible jobs are rounded down to whole slots.
* Variable-length (``--time-min``) jobs are granted
  ``clamp(window, time_min, time_limit)``; their placement procedure is
  costlier, which we model with a per-pass budget
  (``max_flex_starts_per_pass``) and by restricting them to periodic
  backfill passes — the mechanism the paper blames for var's coverage gap
  (Sec. V-B2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.job import Job
from repro.cluster.node import Node, NodeState
from repro.cluster.partition import Partition


@dataclass
class SchedulerConfig:
    """Tunables of the scheduling machinery.

    Defaults reproduce the Prometheus configuration described in the paper;
    ablation benchmarks sweep them.
    """

    #: backfill slot granularity, seconds (the paper: 2-minute slots)
    slot: float = 120.0
    #: backfill planning window, seconds (the paper: 120 minutes)
    bf_window: float = 7200.0
    #: delay between a triggering event and the pass taking effect, seconds
    sched_latency: float = 1.0
    #: periodic main-scheduler pass interval, seconds
    sched_interval: float = 15.0
    #: periodic backfill pass interval, seconds: tier-0 (pilot) jobs are
    #: placed only by these passes, never by event-triggered main passes —
    #: matching real Slurm, where backfill is a separate, slower cycle
    bf_interval: float = 30.0
    #: interval between backfill passes that also consider *flexible*
    #: (``--time-min``) jobs, seconds.  Scheduling a flexible job means
    #: "schedule at minimum time, then extend" (Sec. V-B2) — costly enough
    #: that the paper blames it for var's coverage gap; we model the cost
    #: as a slower cadence plus the per-pass start budget below.
    bf_flex_interval: float = 60.0
    #: max flexible-job starts per pass (extension procedure is expensive)
    max_flex_starts_per_pass: int = 4
    #: flexible-job extension success: Slurm grants ``time_min`` first and
    #: extends "until the time limit is reached or available resources are
    #: exhausted" (Sec. III-D).  With ~100 pending flexible pilots, their
    #: own reservations collide with the extension, so only a uniform
    #: fraction in [flex_extension_min, 1] of the feasible window is
    #: granted.  (1, 1) disables the pathology for ablations.
    flex_extension_min: float = 0.15
    flex_extension_max: float = 1.0
    #: max fixed tier-0 starts per pass (effectively unlimited by default)
    max_fixed_starts_per_pass: int = 1000
    #: reservations computed per pass for blocked unpinned jobs (EASY = 1)
    max_reservations: int = 8

    def floor_slot(self, seconds: float) -> float:
        """Round *seconds* down to a whole number of backfill slots."""
        return math.floor(seconds / self.slot) * self.slot


@dataclass
class StartDecision:
    """Start *job* on *nodes* with the given granted time limit."""

    job: Job
    nodes: Tuple[Node, ...]
    granted_time: float


@dataclass
class PreemptDecision:
    """Evict *victim* (a preemptible lower-tier job) to free nodes for *for_job*."""

    victim: Job
    for_job: Job


@dataclass
class SchedulingPlan:
    """Everything one pass decided."""

    starts: List[StartDecision] = field(default_factory=list)
    preemptions: List[PreemptDecision] = field(default_factory=list)
    #: node name -> job id: nodes to hold for a job awaiting preemptions
    commits: Dict[str, int] = field(default_factory=dict)
    #: node name -> earliest known higher-tier claim (diagnostics/tests)
    reservations: Dict[str, float] = field(default_factory=dict)
    #: tier-0 jobs examined (budget accounting, diagnostics)
    examined_tier0: int = 0


class BackfillScheduler:
    """Plans one scheduling pass.  Stateless between passes (the RNG only
    feeds the flexible-extension model)."""

    def __init__(self, config: Optional[SchedulerConfig] = None, rng=None) -> None:
        self.config = config or SchedulerConfig()
        if rng is None:
            import numpy as np

            rng = np.random.default_rng(0)
        self.rng = rng

    # ------------------------------------------------------------------
    def plan(
        self,
        now: float,
        pending: Sequence[Job],
        nodes: Dict[str, Node],
        partitions: Dict[str, Partition],
        committed: Dict[str, int],
        include_tier0: bool = True,
        include_flexible: bool = True,
    ) -> SchedulingPlan:
        """Compute one pass.

        ``committed`` maps node name → job id for nodes whose pilots are
        already being preempted on behalf of a waiting job; such nodes are
        untouchable by this pass (except by that waiting job itself).
        """
        plan = SchedulingPlan()
        cfg = self.config

        # -- classify pending jobs by tier ------------------------------
        def tier_of(job: Job) -> int:
            return partitions[job.spec.partition].priority_tier

        eligible = [j for j in pending if j.is_pending]
        tiers = sorted({tier_of(j) for j in eligible}, reverse=True)

        # -- availability maps -----------------------------------------
        # free_now: nodes idle and not committed to a waiting preemptor
        free_now: Dict[str, Node] = {
            name: n
            for name, n in nodes.items()
            if n.state is NodeState.IDLE and name not in committed
        }
        # claims[node] = earliest future instant a higher-tier job needs it
        claims: Dict[str, float] = {}

        def claim(node_name: str, when: float) -> None:
            prev = claims.get(node_name)
            if prev is None or when < prev:
                claims[node_name] = when

        # Future pinned jobs announce their begin times as soon as they are
        # submitted (the scheduler knows the queue) — these bound tier-0
        # windows even before the jobs become eligible.
        for job in pending:
            if not job.is_pending:
                continue
            if tier_of(job) == 0:
                continue
            if job.spec.required_nodes:
                start_at = max(now, job.spec.begin_time if job.spec.begin_time is not None else job.submit_time)
                for node_name in job.spec.required_nodes[: job.spec.num_nodes]:
                    claim(node_name, start_at)

        # -- Phase A: higher tiers, highest first ------------------------
        reservations_left = cfg.max_reservations
        for tier in tiers:
            if tier == 0:
                continue
            tier_jobs = sorted(
                (j for j in eligible if tier_of(j) == tier),
                key=lambda j: (-j.spec.priority, j.submit_time, j.job_id),
            )
            for job in tier_jobs:
                begin = job.spec.begin_time if job.spec.begin_time is not None else job.submit_time
                if begin > now:
                    continue  # not yet eligible; its claim is already mapped
                placed = self._try_start_or_preempt(
                    now, job, tier, nodes, partitions, free_now, committed, plan
                )
                if placed:
                    continue
                # Blocked: record a reservation so lower tiers cannot delay it.
                if reservations_left > 0:
                    reservations_left -= 1
                    self._reserve(now, job, nodes, partitions, committed, claim)

        # -- Phase B: tier-0 backfill ------------------------------------
        if not include_tier0:
            plan.reservations = dict(claims)
            return plan
        fixed_budget = cfg.max_fixed_starts_per_pass
        flex_budget = cfg.max_flex_starts_per_pass if include_flexible else 0
        tier0_jobs = sorted(
            (j for j in eligible if tier_of(j) == 0),
            key=lambda j: (-j.spec.priority, j.submit_time, j.job_id),
        )
        # window(node) = time until the earliest higher-tier claim
        for job in tier0_jobs:
            if not free_now:
                break
            is_flex = job.spec.is_flexible
            if is_flex and flex_budget <= 0:
                continue
            if not is_flex and fixed_budget <= 0:
                continue
            plan.examined_tier0 += 1
            choice = self._fit_tier0(now, job, free_now, claims)
            if choice is None:
                continue
            node, granted = choice
            del free_now[node.name]
            plan.starts.append(StartDecision(job=job, nodes=(node,), granted_time=granted))
            if is_flex:
                flex_budget -= 1
            else:
                fixed_budget -= 1

        plan.reservations = dict(claims)
        return plan

    # ------------------------------------------------------------------
    def _try_start_or_preempt(
        self,
        now: float,
        job: Job,
        tier: int,
        nodes: Dict[str, Node],
        partitions: Dict[str, Partition],
        free_now: Dict[str, Node],
        committed: Dict[str, int],
        plan: SchedulingPlan,
    ) -> bool:
        """Start *job* now, possibly by preempting lower-tier jobs.

        Returns True if the job was started or its nodes were committed via
        preemption; False if it stays blocked.
        """
        want = job.spec.num_nodes

        def claimed_by_other(name: str) -> bool:
            """Node already committed to another job — by a previous pass
            (the ``committed`` input) or earlier in THIS pass (the plan's
            accumulating commits)."""
            for claim_map in (committed, plan.commits):
                owner = claim_map.get(name)
                if owner is not None and owner != job.job_id:
                    return True
            return False

        if job.spec.required_nodes:
            candidates = list(job.spec.required_nodes[:want])
            usable: List[Node] = []
            preemptable: List[Job] = []
            for name in candidates:
                node = nodes[name]
                if claimed_by_other(name):
                    return False  # someone else already claimed this node
                if node.state is NodeState.IDLE:
                    # The node must also still be unclaimed within THIS
                    # pass: an earlier start decision pops it from
                    # free_now while the live state stays IDLE until the
                    # controller executes the plan.  (Reachable when an
                    # outage window delays one pinned job into the
                    # next one's slot on the same node.)
                    if name not in free_now and committed.get(name) != job.job_id:
                        return False
                    usable.append(node)
                elif node.state is NodeState.ALLOCATED and node.job is not None:
                    victim = node.job
                    vpart = partitions[victim.spec.partition]
                    if vpart.preemptible and vpart.priority_tier < tier:
                        preemptable.append(victim)
                    else:
                        return False  # busy with an equal/higher tier job
                else:
                    return False  # down / reserved
            if preemptable:
                for victim in preemptable:
                    plan.preemptions.append(PreemptDecision(victim=victim, for_job=job))
                for name in candidates:
                    plan.commits[name] = job.job_id
                    free_now.pop(name, None)
                return True  # will start once nodes free (controller commits)
            if len(usable) == want:
                for node in usable:
                    free_now.pop(node.name, None)
                plan.starts.append(
                    StartDecision(job=job, nodes=tuple(usable), granted_time=job.spec.time_limit)
                )
                return True
            return False

        # Unpinned: idle nodes already committed to this job (earlier
        # preemption round) come first, then any free node, then preempt
        # lower tiers for the remainder.
        mine = [
            nodes[name]
            for name in sorted(nodes)
            if committed.get(name) == job.job_id and nodes[name].state is NodeState.IDLE
        ]
        pool = mine + [free_now[name] for name in sorted(free_now) if free_now[name] not in mine]
        chosen = pool[:want]
        if len(chosen) == want:
            for node in chosen:
                free_now.pop(node.name, None)
            plan.starts.append(
                StartDecision(job=job, nodes=tuple(chosen), granted_time=job.spec.time_limit)
            )
            return True
        victims: List[Job] = []
        needed = want - len(chosen)
        for name in sorted(nodes):
            if needed <= len(victims):
                break
            node = nodes[name]
            if node.state is not NodeState.ALLOCATED or node.job is None:
                continue
            if claimed_by_other(name):
                continue
            vpart = partitions[node.job.spec.partition]
            if vpart.preemptible and vpart.priority_tier < tier and node.job not in victims:
                victims.append(node.job)
        if len(victims) >= needed:
            for victim in victims[:needed]:
                plan.preemptions.append(PreemptDecision(victim=victim, for_job=job))
                for node in victim.nodes:
                    plan.commits[node.name] = job.job_id
            # Hold the idle part of the allocation as well, so no pilot
            # slips onto it while the victims drain.
            for node in chosen:
                plan.commits[node.name] = job.job_id
                free_now.pop(node.name, None)
            return True
        return False

    def _reserve(
        self,
        now: float,
        job: Job,
        nodes: Dict[str, Node],
        partitions: Dict[str, Partition],
        committed: Dict[str, int],
        claim,
    ) -> None:
        """Claim the nodes a blocked job will use at its earliest start."""
        want = job.spec.num_nodes
        if job.spec.required_nodes:
            names = list(job.spec.required_nodes[:want])
            start = now
            for name in names:
                node = nodes[name]
                if node.state is NodeState.ALLOCATED and node.job is not None:
                    end = node.job.planned_end or now
                    vpart = partitions[node.job.spec.partition]
                    if vpart.preemptible:
                        end = now  # preemptable: effectively free now
                    start = max(start, end)
            start = max(start, job.spec.begin_time if job.spec.begin_time is not None else job.submit_time)
            for name in names:
                claim(name, start)
            return
        # Unpinned: earliest instant `want` nodes are free, claiming the
        # earliest-freeing nodes (classic EASY shadow computation).
        frees: List[Tuple[float, str]] = []
        for name, node in nodes.items():
            if node.state is NodeState.IDLE:
                if committed.get(name) is None:
                    frees.append((now, name))
            elif node.state is NodeState.ALLOCATED and node.job is not None:
                vpart = partitions[node.job.spec.partition]
                end = now if vpart.preemptible else (node.job.planned_end or now)
                frees.append((end, name))
        frees.sort()
        if len(frees) < want:
            return
        shadow = max(t for t, _ in frees[:want])
        shadow = max(shadow, job.spec.begin_time if job.spec.begin_time is not None else job.submit_time)
        for _, name in frees[:want]:
            claim(name, shadow)

    def _fit_tier0(
        self,
        now: float,
        job: Job,
        free_now: Dict[str, Node],
        claims: Dict[str, float],
    ) -> Optional[Tuple[Node, float]]:
        """Best-fit placement of a single-node tier-0 job.

        Picks the free node with the *smallest adequate* window, so long
        windows are preserved for long jobs.  Returns (node, granted_time)
        or None.
        """
        cfg = self.config
        spec = job.spec
        best: Optional[Tuple[float, Node, float]] = None
        for name in sorted(free_now):
            node = free_now[name]
            claim_at = claims.get(name)
            window = math.inf if claim_at is None else claim_at - now
            if window <= 0:
                continue
            if spec.is_flexible:
                fit = cfg.floor_slot(min(window, spec.time_limit))
                time_min = spec.time_min or fit
                if fit < time_min:
                    continue
                # Extension model: grant time_min plus a random share of
                # the remaining feasible window (see SchedulerConfig).
                share = float(
                    self.rng.uniform(cfg.flex_extension_min, cfg.flex_extension_max)
                )
                granted = cfg.floor_slot(time_min + share * (fit - time_min))
                granted = max(granted, time_min)
            else:
                if window < spec.time_limit:
                    continue
                granted = spec.time_limit
            key = window
            if best is None or key < best[0]:
                best = (key, node, granted)
        if best is None:
            return None
        return best[1], best[2]
