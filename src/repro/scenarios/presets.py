"""Scale presets shared by the CLI, sweeps, benchmarks, and examples.

One definition of "how big is a run" for the whole repo:

* ``full``  — the paper's scale: 7-day calibration traces, 24-hour
  experiment days, 864k requests; tens of minutes of wall time;
* ``quick`` — reduced horizons/sizes; minutes of wall time total;
  preserves every qualitative conclusion (the benchmark default);
* ``smoke`` — seconds of wall time; only checks that the pipeline runs
  (used by tests and sweep smoke checks).

``benchmarks/conftest.py`` builds its ``scale`` fixture from this
module, and registered scenarios derive their per-scale parameter
defaults from the same preset objects (``fig7``'s full-scale
``invocations`` is the one deliberate exception: its CLI default stays
at the historical 50 while benchmarks use the paper's 200).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class ScalePreset:
    """Scale factors used across experiments and benchmarks."""

    #: calibration-trace horizon ("the monitored week"), seconds
    week: float
    #: experiment-day horizon (Tables II/III), seconds
    day: float
    #: cluster size for week-long trace studies
    num_nodes: int
    #: cluster size for experiment days
    day_nodes: int
    #: SeBS invocations per function (Fig 7)
    sebs_invocations: int
    #: SeBS graph size (Fig 7)
    sebs_graph: int

    def as_dict(self) -> Dict[str, float]:
        return asdict(self)


SCALE_PRESETS: Dict[str, ScalePreset] = {
    "full": ScalePreset(
        week=7 * 24 * 3600.0,
        day=24 * 3600.0,
        num_nodes=2239,
        day_nodes=300,
        sebs_invocations=200,
        sebs_graph=40000,
    ),
    "quick": ScalePreset(
        week=24 * 3600.0,  # one day stands in for the week
        day=3 * 3600.0,  # three hours stand in for a day
        num_nodes=512,
        day_nodes=128,
        sebs_invocations=20,
        sebs_graph=12000,
    ),
    "smoke": ScalePreset(
        week=2 * 3600.0,
        day=900.0,
        num_nodes=128,
        day_nodes=24,
        sebs_invocations=2,
        sebs_graph=2000,
    ),
}

#: CLI ordering: paper scale first (the default for single runs).
SCALE_NAMES: Tuple[str, ...] = ("full", "quick", "smoke")

FULL = SCALE_PRESETS["full"]
QUICK = SCALE_PRESETS["quick"]
SMOKE = SCALE_PRESETS["smoke"]


def get_preset(name: str) -> ScalePreset:
    try:
        return SCALE_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown scale preset {name!r}; expected one of {sorted(SCALE_PRESETS)}"
        ) from None
