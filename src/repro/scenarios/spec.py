"""The declarative scenario contract: :class:`ScenarioSpec` in,
:class:`ScenarioResult` out.

Every experiment in :mod:`repro.experiments` is registered as a scenario
(see :mod:`repro.scenarios.registry`) whose runner takes one fully
resolved :class:`ScenarioSpec` and returns one :class:`ScenarioResult`.
The CLI, the sweep executor, benchmarks, and examples all talk to
experiments through this pair — nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully resolved run of one scenario.

    The common knobs every scenario shares are first-class fields; the
    scenario-specific knobs live in :attr:`params` (already resolved
    against the scale preset, so runners never consult presets).
    """

    #: registry name of the scenario ("fig1", "day", ...)
    name: str
    #: root seed for the run's :class:`~repro.sim.rng.RandomStreams`
    seed: int
    #: cluster size, when the scenario has one
    nodes: Optional[int] = None
    #: simulated horizon in seconds, when the scenario has one
    horizon: Optional[float] = None
    #: pilot supply model ("fib" / "var"), when the scenario runs one
    supply: Optional[str] = None
    #: workload family driving the run ("gatling", "idleness-trace", ...)
    workload: Optional[str] = None
    #: scale preset the params were resolved against
    scale: str = "full"
    #: scenario-specific parameters, resolved (name -> value)
    params: Mapping[str, Any] = field(default_factory=dict)

    def spec_hash(self) -> str:
        """Canonical configuration identity (scenario + resolved params).

        Seed and scale are deliberately excluded — they are separate
        axes of a run's identity (the warehouse stores them as their
        own columns), so two runs of the same configuration at
        different seeds share a spec hash and the ``drift`` query can
        group on it.
        """
        from repro.provenance import spec_hash

        return spec_hash(
            {
                "scenario": self.name,
                "params": {k: self.params[k] for k in sorted(self.params)},
            }
        )

    def overrides(self) -> Dict[str, Any]:
        """The flat override mapping that rebuilds this spec.

        ``registry.build_spec(spec.name, spec.overrides(), spec.scale)``
        round-trips to an identical spec — including the first-class
        fields (``nodes``, ``horizon``, ``supply``, ``workload``),
        because every one of them is derived from a declared parameter
        whose resolved value is carried in :attr:`params`.  The
        ``scale`` must be passed alongside (it is not an override): the
        mapping pins every parameter explicitly, so the rebuilt params
        are scale-independent, but the spec's recorded ``scale`` label
        is whatever the caller rebuilds at.

        ``tests/test_scenarios/test_spec_roundtrip.py`` proves the
        round-trip property over every registered scenario; the sweep
        executor and the persistence layer rely on it.
        """
        return {"seed": self.seed, **dict(self.params)}


@dataclass
class ScenarioResult:
    """Uniform result of one scenario run.

    ``metrics`` is a flat ``name -> float`` mapping — the only part that
    crosses process boundaries during sweeps and the only part that is
    aggregated, persisted to JSON/CSV, and compared across runs.
    ``text`` is the human rendering the CLI prints (identical to the
    pre-registry per-experiment output).  ``artifacts`` holds rich
    in-process objects (result dataclasses, numpy series) for notebooks,
    examples, and plots; it is never pickled to sweep workers.
    """

    spec: ScenarioSpec
    metrics: Dict[str, float]
    text: str
    artifacts: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready view (spec + metrics, no artifacts)."""
        from repro.provenance import RESULT_SCHEMA

        return {
            "schema": RESULT_SCHEMA,
            "spec_hash": self.spec.spec_hash(),
            "scenario": self.spec.name,
            "scale": self.spec.scale,
            "seed": self.spec.seed,
            "params": {k: self.spec.params[k] for k in sorted(self.spec.params)},
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
        }

    def to_json(self) -> str:
        """Canonical JSON rendering of :meth:`to_dict`.

        Deterministic for a deterministic scenario — the golden-trace
        tests under ``tests/golden/`` assert this output byte-for-byte.
        """
        import json

        return json.dumps(self.to_dict(), indent=2, sort_keys=True)
