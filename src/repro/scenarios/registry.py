"""Scenario registry: declare once, run from anywhere.

Experiment modules declare their parameters and entry point with the
:func:`register` decorator; the CLI generates its subcommands, the sweep
executor its grids, and EXPERIMENTS.md its catalogue from the resulting
:class:`ScenarioRegistry`.  A declaration looks like::

    @register(
        "fig1",
        help="idleness analysis",
        seed=2022,
        workload="idleness-trace",
        params=(
            Param("days", float, 7.0, scale={"quick": 1.0}, help="trace length"),
            Param("nodes", int, 2239, scale={"quick": 512}, spec_field="nodes"),
        ),
    )
    def _scenario(spec: ScenarioSpec) -> ScenarioResult: ...

Parameter resolution order is explicit override > scale-preset default >
paper default, so ``full`` scale with no overrides reproduces the paper
exactly and always matches the historical CLI defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.scenarios.presets import SCALE_PRESETS
from repro.scenarios.spec import ScenarioResult, ScenarioSpec

#: spec fields a parameter may feed (value passed through ``to_spec``)
SPEC_FIELDS = ("nodes", "horizon", "supply", "workload")


@dataclass(frozen=True)
class Param:
    """One declared scenario parameter (and its CLI option)."""

    name: str
    #: value type; ``bool`` means a ``store_true`` CLI flag
    type: type = float
    #: the paper-scale default (also the CLI default at ``--scale full``)
    default: Any = None
    #: per-scale defaults, e.g. ``{"quick": 1.0, "smoke": 0.1}``
    scale: Mapping[str, Any] = field(default_factory=dict)
    help: str = ""
    choices: Optional[Tuple[str, ...]] = None
    #: feed this resolved value into the named :class:`ScenarioSpec` field
    spec_field: Optional[str] = None
    #: unit conversion applied before storing into the spec field
    to_spec: Optional[Callable[[Any], Any]] = None
    #: grids may vary this parameter (plot/output switches may not)
    sweepable: bool = True

    def __post_init__(self) -> None:
        if self.spec_field is not None and self.spec_field not in SPEC_FIELDS:
            raise ValueError(
                f"param {self.name!r}: spec_field must be one of {SPEC_FIELDS}"
            )

    def resolve(self, overrides: Mapping[str, Any], scale: str) -> Any:
        if self.name in overrides:
            return self.coerce(overrides[self.name])
        if scale in self.scale:
            return self.scale[scale]
        return self.default

    def coerce(self, value: Any) -> Any:
        """Parse a raw (possibly string) value into the declared type."""
        if self.type is bool:
            if isinstance(value, str):
                token = value.strip().lower()
                if token in ("1", "true", "yes", "on"):
                    return True
                if token in ("0", "false", "no", "off"):
                    return False
                raise ValueError(
                    f"param {self.name!r}: expected a boolean "
                    f"(true/false/1/0/yes/no/on/off), got {value!r}"
                )
            return bool(value)
        if value is None:
            return None
        coerced = self.type(value)
        if self.choices is not None and coerced not in self.choices:
            raise ValueError(
                f"param {self.name!r}: {coerced!r} not in {self.choices}"
            )
        return coerced


def _run_captured(
    runner: Callable[[ScenarioSpec], ScenarioResult], spec: ScenarioSpec
) -> ScenarioResult:
    """Run a resolved spec and record the result into the warehouse.

    Both registry entry points (``Scenario.run`` and
    ``ScenarioRegistry.run_spec``) funnel through here, so every
    scenario execution — CLI, sweeps (in worker processes), benches,
    configs — is captured exactly once.  Capture is opt-out via
    ``REPRO_WAREHOUSE`` and never raises (see
    :mod:`repro.warehouse.capture`).
    """
    import time

    started = time.perf_counter()
    result = runner(spec)
    elapsed = time.perf_counter() - started

    from repro.warehouse import capture

    capture.record_scenario(result, wall_time_s=elapsed)
    return result


#: a scenario's default seed: a constant, or a function of resolved params
SeedDefault = Union[int, Callable[[Mapping[str, Any]], int]]


@dataclass(frozen=True)
class Scenario:
    """A registered scenario: metadata + parameters + runner."""

    name: str
    help: str
    runner: Callable[[ScenarioSpec], ScenarioResult]
    params: Tuple[Param, ...] = ()
    seed: SeedDefault = 2022
    #: human description of a callable ``seed`` for help/list output
    seed_help: Optional[str] = None
    #: workload family label stored on specs (unless a param overrides it)
    workload: Optional[str] = None

    def param(self, name: str) -> Param:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"scenario {self.name!r} has no parameter {name!r}")

    def default_seed(self, params: Mapping[str, Any]) -> int:
        if callable(self.seed):
            return int(self.seed(params))
        return int(self.seed)

    def build_spec(
        self, overrides: Optional[Mapping[str, Any]] = None, scale: str = "full"
    ) -> ScenarioSpec:
        """Resolve overrides + scale preset into a runnable spec."""
        if scale not in SCALE_PRESETS:
            raise KeyError(
                f"unknown scale {scale!r}; expected one of {sorted(SCALE_PRESETS)}"
            )
        overrides = dict(overrides or {})
        known = {p.name for p in self.params}
        unknown = set(overrides) - known - {"seed"}
        if unknown:
            raise KeyError(
                f"scenario {self.name!r} has no parameter(s) "
                f"{sorted(unknown)}; declared: {sorted(known)}"
            )

        values: Dict[str, Any] = {
            p.name: p.resolve(overrides, scale) for p in self.params
        }
        seed = overrides.get("seed")
        seed = self.default_seed(values) if seed is None else int(seed)

        spec_fields: Dict[str, Any] = {"workload": self.workload}
        for p in self.params:
            if p.spec_field is None:
                continue
            value = values[p.name]
            spec_fields[p.spec_field] = (
                p.to_spec(value) if p.to_spec is not None else value
            )
        return ScenarioSpec(
            name=self.name, seed=seed, scale=scale, params=values, **spec_fields
        )

    def run(
        self, overrides: Optional[Mapping[str, Any]] = None, scale: str = "full"
    ) -> ScenarioResult:
        return _run_captured(self.runner, self.build_spec(overrides, scale))


class ScenarioRegistry:
    """Name -> :class:`Scenario` mapping with registration-order listing."""

    def __init__(self) -> None:
        self._scenarios: Dict[str, Scenario] = {}

    def add(self, scenario: Scenario) -> None:
        if scenario.name in self._scenarios:
            raise ValueError(f"scenario {scenario.name!r} registered twice")
        self._scenarios[scenario.name] = scenario

    def get(self, name: str) -> Scenario:
        try:
            return self._scenarios[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario {name!r}; known: {self.names()}"
            ) from None

    def names(self) -> List[str]:
        return list(self._scenarios)

    def items(self) -> List[Tuple[str, Scenario]]:
        return list(self._scenarios.items())

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios

    def __len__(self) -> int:
        return len(self._scenarios)

    def build_spec(
        self,
        name: str,
        overrides: Optional[Mapping[str, Any]] = None,
        scale: str = "full",
    ) -> ScenarioSpec:
        return self.get(name).build_spec(overrides, scale)

    def run(
        self,
        name: str,
        overrides: Optional[Mapping[str, Any]] = None,
        scale: str = "full",
    ) -> ScenarioResult:
        return self.get(name).run(overrides, scale)

    def run_spec(self, spec: ScenarioSpec) -> ScenarioResult:
        """Run an already-resolved spec through its scenario's runner."""
        return _run_captured(self.get(spec.name).runner, spec)

    #: allowed keys of a scenario-mode config mapping
    CONFIG_KEYS = ("scenario", "scale", "seed", "overrides")

    def spec_from_config(self, config: Mapping[str, Any]) -> ScenarioSpec:
        """Resolve a declarative config mapping into a :class:`ScenarioSpec`.

        The shape (YAML-friendly; see ``repro run --config``)::

            scenario: day        # required: a registered scenario name
            scale: smoke         # optional, default "full"
            seed: 99             # optional, same as overrides["seed"]
            overrides:           # optional parameter overrides
              model: var

        Values arrive as YAML scalars (possibly strings) and are coerced
        through each parameter's declared type, exactly like CLI options.
        """
        unknown = set(config) - set(self.CONFIG_KEYS)
        if unknown:
            raise KeyError(
                f"unknown scenario-config key(s) {sorted(unknown)}; "
                f"allowed: {sorted(self.CONFIG_KEYS)}"
            )
        if "scenario" not in config:
            raise KeyError("scenario config needs a 'scenario' key")
        overrides = dict(config.get("overrides") or {})
        if "seed" in config and config["seed"] is not None:
            if "seed" in overrides:
                raise ValueError(
                    "seed given both at top level and in overrides"
                )
            overrides["seed"] = config["seed"]
        scale = config.get("scale") or "full"
        return self.build_spec(str(config["scenario"]), overrides, str(scale))


#: the process-wide registry all experiment modules register into
REGISTRY = ScenarioRegistry()


def register(
    name: str,
    *,
    help: str,
    seed: SeedDefault = 2022,
    seed_help: Optional[str] = None,
    params: Sequence[Param] = (),
    workload: Optional[str] = None,
    registry: ScenarioRegistry = REGISTRY,
) -> Callable[[Callable[[ScenarioSpec], ScenarioResult]], Callable[[ScenarioSpec], ScenarioResult]]:
    """Register the decorated runner as the scenario ``name``."""

    def decorator(
        runner: Callable[[ScenarioSpec], ScenarioResult]
    ) -> Callable[[ScenarioSpec], ScenarioResult]:
        registry.add(
            Scenario(
                name=name,
                help=help,
                runner=runner,
                params=tuple(params),
                seed=seed,
                seed_help=seed_help,
                workload=workload,
            )
        )
        return runner

    return decorator


def load_builtin() -> ScenarioRegistry:
    """Import the experiment package so its scenarios self-register."""
    import repro.experiments  # noqa: F401  (import populates REGISTRY)

    return REGISTRY
