"""Parameter-grid and seed-replication sweeps over registered scenarios.

``SweepExecutor`` expands a parameter grid (every combination of the
listed values) times a number of seed replications, runs the resulting
cells either serially or on a :class:`~concurrent.futures.ProcessPoolExecutor`,
and aggregates each cell's metrics across seeds (mean / sample stdev /
95% CI).

Determinism is the design center:

* every run's root seed is derived from ``(base_seed, cell_key,
  replicate)`` via :class:`numpy.random.SeedSequence` — independent of
  worker count, scheduling order, and of which other cells exist;
* global id counters are reset before every run, so a run's metrics
  never depend on what ran before it in the same process;
* results are aggregated in grid order, so a serial (``jobs=1``) and a
  parallel (``jobs=8``) execution of the same sweep produce
  byte-identical :meth:`SweepResult.to_json` output.
"""

from __future__ import annotations

import itertools
import json
import math
import os
import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.scenarios.registry import REGISTRY, ScenarioRegistry, load_builtin


def derive_run_seed(base_seed: int, cell_key: str, replicate: int) -> int:
    """Deterministic per-run root seed.

    Stable across processes and Python versions: the cell key is hashed
    with CRC-32 (like :mod:`repro.sim.rng` does for stream names) and
    fed to :class:`numpy.random.SeedSequence` together with the
    replicate index.
    """
    key = zlib.crc32(cell_key.encode("utf-8"))
    sequence = np.random.SeedSequence(
        entropy=int(base_seed), spawn_key=(key, int(replicate))
    )
    return int(sequence.generate_state(1, np.uint64)[0] >> 1)


def cell_key(params: Mapping[str, Any]) -> str:
    """Canonical ``k=v,k=v`` form of one grid cell (sorted by name)."""
    return ",".join(f"{k}={params[k]}" for k in sorted(params))


def expand_grid(
    grid: Mapping[str, Sequence[Any]]
) -> List[Dict[str, Any]]:
    """Every combination of the grid's values, in grid-declaration order."""
    if not grid:
        return [{}]
    names = list(grid)
    cells = []
    for combo in itertools.product(*(grid[n] for n in names)):
        cells.append(dict(zip(names, combo)))
    return cells


@dataclass(frozen=True)
class SweepSpec:
    """One sweep: a scenario, a grid, and a replication count."""

    scenario: str
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    #: seed replications per grid cell
    seeds: int = 1
    #: entropy root for per-run seed derivation (None = scenario default)
    base_seed: Optional[int] = None
    scale: str = "quick"
    #: worker processes; 1 = run serially in this process
    jobs: int = 1
    #: fixed (non-swept) parameter overrides applied to every cell
    fixed: Mapping[str, Any] = field(default_factory=dict)

    def spec_hash(self) -> str:
        """Canonical sweep identity: scenario + grid + fixed + seeds.

        ``base_seed``/``jobs``/``scale`` are excluded — the seed and
        scale are separate identity axes in the warehouse, and the
        worker count never changes results (serial/parallel sweeps are
        byte-identical by contract).
        """
        from repro.provenance import spec_hash

        return spec_hash(
            {
                "scenario": self.scenario,
                "grid": {k: list(self.grid[k]) for k in sorted(self.grid)},
                "fixed": {k: self.fixed[k] for k in sorted(self.fixed)},
                "seeds": self.seeds,
            }
        )


@dataclass
class CellResult:
    """Aggregate of one grid cell across its seed replications."""

    params: Dict[str, Any]
    run_seeds: List[int]
    #: per-replicate raw metrics, replicate order
    runs: List[Dict[str, float]]
    #: metric -> {"mean", "stdev", "ci95", "min", "max", "n"}
    metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)


@dataclass
class SweepResult:
    """All cells of one executed sweep plus execution metadata."""

    spec: SweepSpec
    base_seed: int
    cells: List[CellResult]
    #: wall-clock seconds (not part of the deterministic aggregate)
    elapsed: float = 0.0
    #: distinct worker PIDs that executed runs
    worker_pids: Tuple[int, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic aggregate view (identical for serial/parallel)."""
        from repro.provenance import SWEEP_SCHEMA

        return {
            "schema": SWEEP_SCHEMA,
            "spec_hash": self.spec.spec_hash(),
            "scenario": self.spec.scenario,
            "scale": self.spec.scale,
            "base_seed": self.base_seed,
            "seeds": self.spec.seeds,
            "grid": {k: list(v) for k, v in self.spec.grid.items()},
            "fixed": dict(self.spec.fixed),
            "cells": [
                {
                    "params": cell.params,
                    "run_seeds": cell.run_seeds,
                    "metrics": {
                        name: cell.metrics[name] for name in sorted(cell.metrics)
                    },
                }
                for cell in self.cells
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_table(self) -> "Table":
        """One row per (cell, metric): params (grid + fixed overrides),
        then n/mean/stdev/ci95.  Floats are repr-formatted so the CSV
        rendering is byte-stable across Python versions."""
        from repro.analysis.tables import Table

        fixed = dict(self.spec.fixed)
        param_names = sorted(
            {name for cell in self.cells for name in cell.params} | set(fixed)
        )
        rows = []
        for cell in self.cells:
            params = {**fixed, **cell.params}
            for name in sorted(cell.metrics):
                agg = cell.metrics[name]
                rows.append(
                    [
                        self.spec.scenario,
                        self.spec.scale,
                        self.base_seed,
                        *[params.get(p, "") for p in param_names],
                        name,
                        int(agg["n"]),
                        repr(agg["mean"]),
                        repr(agg["stdev"]),
                        repr(agg["ci95"]),
                    ]
                )
        return Table(
            columns=["scenario", "scale", "base_seed", *param_names,
                     "metric", "n", "mean", "stdev", "ci95"],
            rows=rows,
        )

    def to_csv(self) -> str:
        return self.to_table().to_csv()


def aggregate_metrics(runs: Sequence[Mapping[str, float]]) -> Dict[str, Dict[str, float]]:
    """Per-metric mean / sample stdev / 95% CI across replicates.

    Only metrics present in every replicate are aggregated (a scenario
    may emit optional metrics); non-finite values are carried into the
    mean so they surface rather than vanish.
    """
    if not runs:
        return {}
    names = set(runs[0])
    for run in runs[1:]:
        names &= set(run)
    aggregates: Dict[str, Dict[str, float]] = {}
    for name in sorted(names):
        values = [float(run[name]) for run in runs]
        n = len(values)
        mean = math.fsum(values) / n
        if n > 1:
            variance = math.fsum((v - mean) ** 2 for v in values) / (n - 1)
            stdev = math.sqrt(variance)
        else:
            stdev = 0.0
        ci95 = 1.96 * stdev / math.sqrt(n) if n > 1 else 0.0
        if any(math.isnan(v) for v in values):
            # min()/max() with NaN are position-dependent; propagate
            # explicitly so the aggregate is replicate-order independent
            vmin = vmax = float("nan")
        else:
            vmin, vmax = min(values), max(values)
        aggregates[name] = {
            "mean": mean,
            "stdev": stdev,
            "ci95": ci95,
            "min": vmin,
            "max": vmax,
            "n": float(n),
        }
    return aggregates


def reset_run_state() -> None:
    """Reset global id counters so runs are order-independent.

    Public shared infrastructure: the sweep executor calls it before
    every replicate, the bench harness before every benchmark repeat,
    and the golden-trace tests before every golden run — all three need
    the same guarantee that a run's output never depends on what ran
    before it in the same process.
    """
    from repro.cluster.job import reset_job_ids
    from repro.faas.messages import reset_activation_ids
    from repro.hpcwhisk.job_manager import reset_submission_ids
    from repro.hpcwhisk.pilot import reset_pilot_ids

    reset_job_ids()
    reset_activation_ids()
    reset_pilot_ids()
    reset_submission_ids()


def execute_run(
    scenario: str, overrides: Mapping[str, Any], scale: str
) -> Tuple[Dict[str, float], int]:
    """Run one scenario of the global registry once.

    Module-level so :class:`ProcessPoolExecutor` can pickle it; the
    serial path goes through :func:`execute_run_in` with the executor's
    registry, so both paths share every determinism guarantee.
    """
    load_builtin()
    return execute_run_in(REGISTRY, scenario, overrides, scale)


def execute_run_in(
    registry: ScenarioRegistry,
    scenario: str,
    overrides: Mapping[str, Any],
    scale: str,
) -> Tuple[Dict[str, float], int]:
    """Run one scenario once and return ``(metrics, worker pid)``."""
    reset_run_state()
    result = registry.run(scenario, overrides, scale=scale)
    return dict(result.metrics), os.getpid()


class SweepExecutor:
    """Expands and executes :class:`SweepSpec` s."""

    def __init__(self, registry: ScenarioRegistry = REGISTRY) -> None:
        if registry is REGISTRY:
            load_builtin()  # library callers need not pre-import experiments
        self.registry = registry

    def plan(self, spec: SweepSpec) -> List[Tuple[Dict[str, Any], List[int]]]:
        """The sweep's cells and their derived per-replicate seeds."""
        scenario = self.registry.get(spec.scenario)
        clashes = set(spec.grid) & set(spec.fixed)
        if clashes:
            raise ValueError(
                f"parameter(s) {sorted(clashes)} appear in both the grid "
                "and the fixed overrides; pick one"
            )
        for name in list(spec.grid) + list(spec.fixed):
            if name == "seed":
                raise ValueError(
                    "'seed' cannot be swept directly; use the seeds "
                    "replication count (per-run seeds are derived)"
                )
            if not scenario.param(name).sweepable:
                raise ValueError(
                    f"parameter {name!r} of scenario {spec.scenario!r} "
                    "is not sweepable"
                )
        base_seed = self._base_seed(spec)
        plan = []
        for cell in expand_grid(spec.grid):
            key = cell_key({**spec.fixed, **cell})
            seeds = [
                derive_run_seed(base_seed, key, replicate)
                for replicate in range(spec.seeds)
            ]
            plan.append((cell, seeds))
        return plan

    def _base_seed(self, spec: SweepSpec) -> int:
        if spec.base_seed is not None:
            return int(spec.base_seed)
        scenario = self.registry.get(spec.scenario)
        defaults = scenario.build_spec(dict(spec.fixed), scale=spec.scale)
        return defaults.seed

    def run(self, spec: SweepSpec) -> SweepResult:
        """Execute the sweep, serially or across worker processes."""
        if spec.seeds < 1:
            raise ValueError("seeds must be >= 1")
        plan = self.plan(spec)
        tasks: List[Tuple[int, Dict[str, Any]]] = []  # (flat index, overrides)
        for cell_index, (cell, seeds) in enumerate(plan):
            for seed in seeds:
                tasks.append(
                    (cell_index, {**spec.fixed, **cell, "seed": seed})
                )

        started = time.perf_counter()
        outcomes: List[Tuple[Dict[str, float], int]] = [None] * len(tasks)  # type: ignore[list-item]
        if spec.jobs > 1 and len(tasks) > 1:
            if self.registry is not REGISTRY:
                # worker processes resolve scenarios in the global
                # registry; an injected one cannot be shipped to them
                raise ValueError(
                    "parallel sweeps (jobs > 1) require the global "
                    "registry; run with jobs=1 for a custom registry"
                )
            with ProcessPoolExecutor(max_workers=spec.jobs) as pool:
                futures = [
                    pool.submit(execute_run, spec.scenario, overrides, spec.scale)
                    for _index, overrides in tasks
                ]
                for slot, future in enumerate(futures):
                    outcomes[slot] = future.result()
        else:
            for slot, (_index, overrides) in enumerate(tasks):
                outcomes[slot] = execute_run_in(
                    self.registry, spec.scenario, overrides, spec.scale
                )
        elapsed = time.perf_counter() - started

        runs_by_cell: Dict[int, List[Dict[str, float]]] = {}
        for (cell_index, _overrides), (metrics, _pid) in zip(tasks, outcomes):
            runs_by_cell.setdefault(cell_index, []).append(metrics)

        cells = [
            CellResult(
                params=dict(cell),
                run_seeds=list(seeds),
                runs=runs_by_cell.get(cell_index, []),
                metrics=aggregate_metrics(runs_by_cell.get(cell_index, [])),
            )
            for cell_index, (cell, seeds) in enumerate(plan)
        ]
        pids = tuple(sorted({pid for _metrics, pid in outcomes}))
        result = SweepResult(
            spec=spec,
            base_seed=self._base_seed(spec),
            cells=cells,
            elapsed=elapsed,
            worker_pids=pids,
        )

        # the aggregate goes into the warehouse from the parent process;
        # individual replicates were already captured where they ran
        # (worker processes write the store concurrently under WAL)
        from repro.warehouse import capture

        capture.record_sweep(result)
        return result
