"""Declarative scenario layer: specs, a registry, scale presets, sweeps.

The one place the repo answers "what can I run and how":

* :class:`~repro.scenarios.spec.ScenarioSpec` /
  :class:`~repro.scenarios.spec.ScenarioResult` — the uniform contract
  every experiment implements;
* :func:`~repro.scenarios.registry.register` + ``REGISTRY`` — how
  experiment modules declare themselves; the CLI is generated from it;
* :mod:`~repro.scenarios.presets` — the shared full/quick/smoke scale
  presets (benchmarks' ``scale`` fixture is built from these);
* :class:`~repro.scenarios.sweep.SweepExecutor` — parallel grid x seed
  sweeps with deterministic per-run seed derivation.

See EXPERIMENTS.md for the catalogue of registered scenarios.
"""

from repro.scenarios.presets import SCALE_NAMES, SCALE_PRESETS, ScalePreset, get_preset
from repro.scenarios.registry import (
    REGISTRY,
    Param,
    Scenario,
    ScenarioRegistry,
    load_builtin,
    register,
)
from repro.scenarios.spec import ScenarioResult, ScenarioSpec
from repro.scenarios.sweep import (
    SweepExecutor,
    SweepResult,
    SweepSpec,
    derive_run_seed,
    expand_grid,
    reset_run_state,
)

__all__ = [
    "Param",
    "REGISTRY",
    "SCALE_NAMES",
    "SCALE_PRESETS",
    "ScalePreset",
    "Scenario",
    "ScenarioRegistry",
    "ScenarioResult",
    "ScenarioSpec",
    "SweepExecutor",
    "SweepResult",
    "SweepSpec",
    "derive_run_seed",
    "expand_grid",
    "get_preset",
    "load_builtin",
    "register",
    "reset_run_state",
]
