"""The AWS Lambda comparator model (Fig 7).

The paper runs identical SeBS functions on AWS Lambda and reports that
Prometheus nodes complete them consistently ≈15% faster than Lambda's
fastest configuration (2,048 MB).  Lambda's documented behaviour — also
measured by the SeBS paper — is that CPU share scales linearly with the
configured memory until one full vCPU at 1,792 MB.

This model converts a locally-measured ("Prometheus") execution time into
a synthetic Lambda time: apply the node-efficiency factor, the
memory-proportional CPU share, and multiplicative jitter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: memory at which a function owns one full vCPU
FULL_VCPU_MEMORY_MB = 1792.0


@dataclass
class LambdaPerformanceModel:
    """Synthesize Lambda execution times from local measurements."""

    #: Lambda time / Prometheus time at full CPU share (the paper's ≈15%)
    node_efficiency_factor: float = 1.15
    #: multiplicative lognormal jitter (σ of ln-time); SeBS observes a few
    #: percent of run-to-run variance on warm Lambda invocations
    jitter_sigma: float = 0.04

    def cpu_share(self, memory_mb: float) -> float:
        """Fraction of a vCPU available at *memory_mb* (≤ 1.0)."""
        if memory_mb <= 0:
            raise ValueError("memory must be positive")
        return min(1.0, memory_mb / FULL_VCPU_MEMORY_MB)

    def execution_time(
        self,
        local_time: float,
        memory_mb: float,
        rng: np.random.Generator,
    ) -> float:
        """One synthetic Lambda invocation time for a measured local time."""
        if local_time < 0:
            raise ValueError("local_time must be >= 0")
        base = local_time * self.node_efficiency_factor / self.cpu_share(memory_mb)
        if self.jitter_sigma <= 0:
            return base
        return float(base * rng.lognormal(0.0, self.jitter_sigma))

    def execution_times(
        self,
        local_times: np.ndarray,
        memory_mb: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Vectorized version of :meth:`execution_time`."""
        local_times = np.asarray(local_times, dtype=float)
        base = local_times * self.node_efficiency_factor / self.cpu_share(memory_mb)
        if self.jitter_sigma <= 0:
            return base
        return base * rng.lognormal(0.0, self.jitter_sigma, size=local_times.shape)
