"""Workload generators and compute kernels.

Everything stochastic about the reproduction's inputs lives here:

* :mod:`repro.workloads.distributions` — the calibrated probability models
  (idle-period lengths, idle-node intensity, job limits/runtimes/slack,
  pilot warm-up times) with the paper's published statistics as targets.
* :mod:`repro.workloads.idleness` — the cluster idleness process: when and
  where idle periods appear (Fig 1a–c).
* :mod:`repro.workloads.hpc_trace` — conversion of idleness traces into a
  pinned prime-job workload for the cluster simulator, plus a free-standing
  job-population generator (Fig 2).
* :mod:`repro.workloads.faas_trace` — Azure-like FaaS invocation durations.
* :mod:`repro.workloads.gatling` — the constant-rate open-model load client
  used by the responsiveness experiments (Figs 5b/6b, Sec. V-C).
* :mod:`repro.workloads.streaming` — lazy invocation sources + composable
  intensity modulators (diurnal/burst/flash-crowd/region-shift) and the
  O(1)-memory streaming injector for trace-scale runs.
* :mod:`repro.workloads.sebs` — real bfs/mst/pagerank kernels (SeBS).
* :mod:`repro.workloads.lambda_model` — the AWS Lambda comparator (Fig 7).
"""

from repro.workloads.distributions import (
    IdlePeriodLengthModel,
    JobPopulationModel,
    OutageDurationModel,
    WarmupModel,
)
from repro.workloads.idleness import IdlenessTrace, IdlenessTraceGenerator, IdlePeriod
from repro.workloads.hpc_trace import PrimeWorkload, busy_intervals, trace_to_prime_jobs
from repro.workloads.faas_trace import AzureDurationModel, Invocation
from repro.workloads.gatling import GatlingClient, GatlingReport, RequestOutcome
from repro.workloads.streaming import (
    BurstModulator,
    DiurnalModulator,
    FaaSStreamClient,
    FixedDurationModel,
    FlashCrowdModulator,
    PoissonSource,
    RegionShiftModulator,
    StreamReport,
    StreamSource,
    build_stream_source,
)

__all__ = [
    "AzureDurationModel",
    "BurstModulator",
    "DiurnalModulator",
    "FaaSStreamClient",
    "FixedDurationModel",
    "FlashCrowdModulator",
    "GatlingClient",
    "GatlingReport",
    "Invocation",
    "PoissonSource",
    "RegionShiftModulator",
    "StreamReport",
    "StreamSource",
    "build_stream_source",
    "IdlePeriod",
    "IdlePeriodLengthModel",
    "IdlenessTrace",
    "IdlenessTraceGenerator",
    "JobPopulationModel",
    "OutageDurationModel",
    "PrimeWorkload",
    "RequestOutcome",
    "WarmupModel",
    "busy_intervals",
    "trace_to_prime_jobs",
]
