"""Prime HPC workload: trace replay and free-standing population.

Two roles:

1. **Trace replay** — :func:`trace_to_prime_jobs` converts an
   :class:`~repro.workloads.idleness.IdlenessTrace` into pinned prime jobs
   for the cluster simulator: each node's *busy* intervals (the complement
   of its idle periods) are segmented into jobs with Fig 2-consistent
   declared limits, pinned to the node (``required_nodes``), anchored at
   their trace start (``begin_time``), and submitted with a stochastic
   *lead time*.  The lead time controls how much of the future the
   scheduler can see — visible begin times bound the backfill windows that
   pilot jobs are sized against; invisible arrivals preempt pilots.

2. **Population sampling** — :class:`JobPopulation` draws a standalone set
   of jobs (limits, runtimes, widths) to regenerate Fig 2's CDFs and feed
   generic scheduler tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.cluster.job import JobSpec
from repro.workloads.distributions import JobPopulationModel, LeadTimeModel
from repro.workloads.idleness import IdlenessTrace


def busy_intervals(
    trace: IdlenessTrace, node: str
) -> List[Tuple[float, float]]:
    """Complement of a node's idle periods over the trace horizon."""
    idle = sorted(
        ((p.start, p.end) for p in trace.periods if p.node == node),
        key=lambda iv: iv[0],
    )
    busy: List[Tuple[float, float]] = []
    cursor = 0.0
    for start, end in idle:
        if start > cursor:
            busy.append((cursor, start))
        cursor = max(cursor, end)
    if cursor < trace.horizon:
        busy.append((cursor, trace.horizon))
    return busy


@dataclass
class PrimeJob:
    """One prime job of the replayed workload, pre-submission."""

    spec: JobSpec
    submit_time: float


@dataclass
class PrimeWorkload:
    """The full prime-job list for an experiment, submit-time ordered."""

    jobs: List[PrimeJob] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.jobs.sort(key=lambda j: j.submit_time)

    def __len__(self) -> int:
        return len(self.jobs)

    def submit_all(self, env, controller) -> List:
        """A process generator: submits every job at its submit time."""
        submitted = []

        def driver():
            for prime in self.jobs:
                if prime.submit_time > env.now:
                    yield env.timeout(prime.submit_time - env.now)
                submitted.append(controller.submit(prime.spec))

        env.process(driver())
        return submitted


def _segment_busy_interval(
    start: float,
    end: float,
    population: JobPopulationModel,
    rng: np.random.Generator,
    min_piece: float = 120.0,
) -> List[Tuple[float, float]]:
    """Split one busy interval into job-sized pieces.

    Pieces follow the runtime distribution; a final remainder shorter than
    *min_piece* is merged into the previous piece, so no sub-2-minute jobs
    are produced (the cluster sim's slot floor would reject them anyway).
    """
    pieces: List[Tuple[float, float]] = []
    cursor = start
    while cursor < end:
        runtime, _limit = population.sample_runtime_and_limit()
        piece_end = min(cursor + max(runtime, min_piece), end)
        if end - piece_end < min_piece:
            piece_end = end
        pieces.append((cursor, piece_end))
        cursor = piece_end
    return pieces


def trace_to_prime_jobs(
    trace: IdlenessTrace,
    rng: np.random.Generator,
    partition: str = "main",
    lead_model: Optional[LeadTimeModel] = None,
    population: Optional[JobPopulationModel] = None,
) -> PrimeWorkload:
    """Convert an idleness trace into a pinned prime workload.

    Every busy segment becomes one job with:

    * ``required_nodes = (node,)`` and ``begin_time`` = segment start,
    * ``actual_runtime`` = segment length (the ground truth),
    * ``time_limit`` drawn via the inverse slack model — so the scheduler's
      expectation of when the node frees is realistically wrong, and idle
      windows open as *surprises* at early-completion events, exactly as on
      the production cluster,
    * ``submit_time = begin_time - lead`` (never negative).

    Over-declared limits may overlap the following idle window or even the
    next job's begin time; this is harmless because the scheduler derives
    its claims from queued jobs' begin times and reacts to completion
    events, never trusting planned ends of pinned jobs for starting them.
    """
    lead_model = lead_model or LeadTimeModel(rng)
    population = population or JobPopulationModel(rng)

    jobs: List[PrimeJob] = []
    by_node = trace.periods_by_node()
    for node in trace.node_names:
        node_busy = busy_intervals(trace, node)
        if not node_busy:
            continue
        # Precompute the start of the next busy segment for limit capping.
        for index, (seg_start, seg_end) in enumerate(node_busy):
            pieces = _segment_busy_interval(seg_start, seg_end, population, rng)
            for piece_index, (p_start, p_end) in enumerate(pieces):
                runtime = p_end - p_start
                limit = population.limit_for_runtime(runtime)
                lead = lead_model.sample()
                submit = max(0.0, p_start - lead)
                spec = JobSpec(
                    name=f"prime-{node}-{index}-{piece_index}",
                    num_nodes=1,
                    time_limit=limit,
                    partition=partition,
                    required_nodes=(node,),
                    begin_time=p_start,
                    actual_runtime=runtime,
                    user="trace",
                    metadata={"trace": True},
                )
                jobs.append(PrimeJob(spec=spec, submit_time=submit))
    _ = by_node
    return PrimeWorkload(jobs=jobs)


@dataclass
class SampledJob:
    """A free-standing sampled job (Fig 2 population)."""

    limit: float
    runtime: float
    width: int

    @property
    def slack(self) -> float:
        return self.limit - self.runtime


class JobPopulation:
    """Samples the Fig 2 job population (limits / runtimes / slack)."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._model = JobPopulationModel(rng)

    def sample(self, count: int) -> List[SampledJob]:
        jobs = []
        for _ in range(count):
            runtime, limit = self._model.sample_runtime_and_limit()
            jobs.append(SampledJob(limit=limit, runtime=runtime, width=self._model.sample_width()))
        return jobs
