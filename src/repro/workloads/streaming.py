"""Streaming invocation sources: the million-user trace engine's front end.

:class:`PoissonInvocationProcess.generate` materializes a full horizon of
:class:`~repro.workloads.faas_trace.Invocation` objects — fine for an
hour, structurally impossible for the ROADMAP's "millions of users over a
full day".  This module provides the lazy counterpart: **sources** that
yield invocations one at a time with O(1) resident state, and
**modulators** that wrap any source to reshape its arrival intensity
without touching its draw discipline.

Arrivals are sampled by Lewis–Shedler thinning: candidate points come
from a homogeneous Poisson process at the source's *peak* rate
(exponential inter-arrival gaps — no per-horizon allocation), and each
candidate is accepted with probability ``rate(t) / peak``.  The accept
uniform is drawn for every candidate even when the rate is flat, so a
neutral modulator (e.g. ``DiurnalModulator(base, amplitude=0.0)``)
consumes the RNG stream exactly like the bare base and produces the
identical arrival sequence for the same seed.

Modulators compose: ``FlashCrowdModulator(DiurnalModulator(PoissonSource(
...)))`` is a diurnal day with a flash crowd on top.  The intensity
modulators multiply ``rate(t)``; :class:`RegionShiftModulator` instead
tags each invocation with a time-rotating federation-member preference
(the ``Invocation.cluster`` field), which the controller and the sharded
coordinator honor as a soft placement hint.

:class:`FaaSStreamClient` is the open-loop injector over any source: it
pulls invocations lazily, so resident memory is bounded by the number of
*in-flight* requests, never the horizon, and it folds every outcome into
a :class:`StreamReport` of streaming aggregates (mergeable across shards).
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.faas.activation import ActivationResult, ActivationStatus
from repro.sim import Environment
from repro.workloads.faas_trace import AzureDurationModel, Invocation

# ---------------------------------------------------------------------------
# sources
# ---------------------------------------------------------------------------


class FixedDurationModel:
    """Constant service times (duck-typed like :class:`AzureDurationModel`).

    Useful for capacity smoke tests: the Azure trace's heavy tail (mean
    ~30 s) saturates a small harvested fleet at any realistic qps, while
    fixed short sleeps keep the workload CPU-shaped like ``gatling``.
    """

    def __init__(self, duration: float) -> None:
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.duration = float(duration)

    def sample(self) -> float:
        return self.duration


class StreamSource:
    """A lazily-evaluated invocation source (non-homogeneous Poisson).

    Subclasses define the arrival intensity (:meth:`rate`, with an upper
    envelope :meth:`peak_rate` for thinning) and the marking
    (:meth:`make` builds the invocation at an accepted arrival time).
    :meth:`iter_invocations` — the only entry point consumers need — is
    implemented once, here, by Lewis–Shedler thinning.
    """

    def rate(self, t: float) -> float:
        """Instantaneous arrival intensity at simulated time ``t`` (1/s)."""
        raise NotImplementedError

    def peak_rate(self, horizon: float) -> float:
        """An upper bound on :meth:`rate` over ``[0, horizon)``."""
        raise NotImplementedError

    @property
    def rng(self) -> np.random.Generator:
        raise NotImplementedError

    @property
    def functions(self) -> List[str]:
        raise NotImplementedError

    def make(self, t: float) -> Invocation:
        """Draw the function/duration marks for an arrival at ``t``."""
        raise NotImplementedError

    def iter_invocations(self, horizon: float) -> Iterator[Invocation]:
        """Invocations in ``[0, horizon)``, one at a time, O(1) memory."""
        if horizon <= 0.0:
            return
        peak = float(self.peak_rate(horizon))
        if peak <= 0.0:
            return
        rng = self.rng
        scale = 1.0 / peak
        t = 0.0
        while True:
            t += float(rng.exponential(scale))
            if t >= horizon:
                return
            # One accept draw per candidate, unconditionally: keeps the
            # stream consumption identical between a bare source and the
            # same source under a neutral (factor == 1) modulator.
            if float(rng.uniform(0.0, peak)) <= self.rate(t):
                yield self.make(t)


class PoissonSource(StreamSource):
    """Homogeneous Poisson arrivals with Zipf function popularity.

    The streaming analogue of :class:`~repro.workloads.faas_trace.
    PoissonInvocationProcess`: same marks (Zipf s = 1.1 popularity,
    :class:`AzureDurationModel` durations), constant base rate, but
    produced incrementally.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        functions: Sequence[str],
        rate_per_second: float,
        duration_model: Optional[AzureDurationModel] = None,
        zipf_s: float = 1.1,
    ) -> None:
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        if not functions:
            raise ValueError("need at least one function")
        self._rng = rng
        self._functions = list(functions)
        self.rate_per_second = float(rate_per_second)
        self.duration_model = duration_model or AzureDurationModel(rng)
        ranks = np.arange(1, len(self._functions) + 1, dtype=float)
        weights = ranks ** (-zipf_s)
        # cumulative popularity → one uniform + binary search per mark
        self._cumulative = np.cumsum(weights / weights.sum())

    def rate(self, t: float) -> float:
        return self.rate_per_second

    def peak_rate(self, horizon: float) -> float:
        return self.rate_per_second

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    @property
    def functions(self) -> List[str]:
        return self._functions

    def make(self, t: float) -> Invocation:
        u = float(self._rng.random())
        index = min(
            int(np.searchsorted(self._cumulative, u, side="right")),
            len(self._functions) - 1,
        )
        return Invocation(
            time=t,
            function=self._functions[index],
            duration=float(self.duration_model.sample()),
        )


# ---------------------------------------------------------------------------
# modulators
# ---------------------------------------------------------------------------


class Modulator(StreamSource):
    """Base wrapper: multiplies the wrapped source's intensity by
    :meth:`factor`, delegating marks and RNG to the base so a stack of
    modulators still draws from one stream in one order."""

    def __init__(self, base: StreamSource) -> None:
        self.base = base

    def factor(self, t: float) -> float:
        """Intensity multiplier at time ``t`` (>= 0)."""
        raise NotImplementedError

    def peak_factor(self, horizon: float) -> float:
        """An upper bound on :meth:`factor` over ``[0, horizon)``."""
        raise NotImplementedError

    def rate(self, t: float) -> float:
        return self.base.rate(t) * self.factor(t)

    def peak_rate(self, horizon: float) -> float:
        return self.base.peak_rate(horizon) * self.peak_factor(horizon)

    @property
    def rng(self) -> np.random.Generator:
        return self.base.rng

    @property
    def functions(self) -> List[str]:
        return self.base.functions

    def make(self, t: float) -> Invocation:
        return self.base.make(t)


class DiurnalModulator(Modulator):
    """Sinusoidal day/night cycle: ``1 + amplitude * sin(2π (t+phase)/period)``."""

    def __init__(
        self,
        base: StreamSource,
        amplitude: float = 0.5,
        period: float = 86_400.0,
        phase: float = 0.0,
    ) -> None:
        super().__init__(base)
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError("diurnal amplitude must be in [0, 1]")
        if period <= 0:
            raise ValueError("diurnal period must be positive")
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.phase = float(phase)

    def factor(self, t: float) -> float:
        return 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * (t + self.phase) / self.period
        )

    def peak_factor(self, horizon: float) -> float:
        return 1.0 + self.amplitude


class BurstModulator(Modulator):
    """A flat intensity multiplier over one ``[start, start+duration)`` window."""

    def __init__(
        self,
        base: StreamSource,
        start: float,
        duration: float,
        factor: float = 4.0,
    ) -> None:
        super().__init__(base)
        if duration <= 0:
            raise ValueError("burst duration must be positive")
        if factor < 0:
            raise ValueError("burst factor must be >= 0")
        self.start = float(start)
        self.duration = float(duration)
        self.burst_factor = float(factor)

    def factor(self, t: float) -> float:
        if self.start <= t < self.start + self.duration:
            return self.burst_factor
        return 1.0

    def peak_factor(self, horizon: float) -> float:
        return max(1.0, self.burst_factor)


class FlashCrowdModulator(Modulator):
    """A flash crowd: linear ramp to ``1 + magnitude`` then exponential decay."""

    def __init__(
        self,
        base: StreamSource,
        at: float,
        magnitude: float = 9.0,
        rise: float = 60.0,
        decay: float = 600.0,
    ) -> None:
        super().__init__(base)
        if magnitude < 0:
            raise ValueError("flash magnitude must be >= 0")
        if rise <= 0 or decay <= 0:
            raise ValueError("flash rise/decay must be positive")
        self.at = float(at)
        self.magnitude = float(magnitude)
        self.rise = float(rise)
        self.decay = float(decay)

    def factor(self, t: float) -> float:
        if t < self.at:
            return 1.0
        if t < self.at + self.rise:
            return 1.0 + self.magnitude * (t - self.at) / self.rise
        return 1.0 + self.magnitude * math.exp(-(t - self.at - self.rise) / self.decay)

    def peak_factor(self, horizon: float) -> float:
        return 1.0 + self.magnitude


class RegionShiftModulator(Modulator):
    """Tags invocations with a slowly rotating region (member) preference.

    Region ``i`` of ``R`` has weight ``max(0, 1 + sharpness * cos(2π (t +
    phase)/period - 2π i/R))`` at time ``t`` — as the day progresses the
    "active" region rotates through the federation, the follow-the-sun
    pattern of a geo-distributed user base.  Intensity is untouched; the
    tag lands in :attr:`Invocation.cluster` and is honored as a soft
    placement preference (empty regions fall back to normal routing).
    """

    def __init__(
        self,
        base: StreamSource,
        regions: Sequence[str],
        period: float = 86_400.0,
        phase: float = 0.0,
        sharpness: float = 1.0,
    ) -> None:
        super().__init__(base)
        if not regions:
            raise ValueError("need at least one region")
        if period <= 0:
            raise ValueError("region period must be positive")
        if sharpness < 0:
            raise ValueError("region sharpness must be >= 0")
        self.regions = list(regions)
        self.period = float(period)
        self.phase = float(phase)
        self.sharpness = float(sharpness)

    def factor(self, t: float) -> float:
        return 1.0

    def peak_factor(self, horizon: float) -> float:
        return 1.0

    def weights(self, t: float) -> List[float]:
        n = len(self.regions)
        angle = 2.0 * math.pi * (t + self.phase) / self.period
        raw = [
            max(0.0, 1.0 + self.sharpness * math.cos(angle - 2.0 * math.pi * i / n))
            for i in range(n)
        ]
        return raw if sum(raw) > 0.0 else [1.0] * n

    def make(self, t: float) -> Invocation:
        invocation = self.base.make(t)
        weights = self.weights(t)
        threshold = float(self.rng.random()) * sum(weights)
        acc = 0.0
        region = self.regions[-1]
        for name, weight in zip(self.regions, weights):
            acc += weight
            if threshold <= acc:
                region = name
                break
        return Invocation(
            time=invocation.time,
            function=invocation.function,
            duration=invocation.duration,
            cluster=region,
        )


def build_stream_source(
    rng: np.random.Generator,
    functions: Sequence[str],
    rate_per_second: float,
    *,
    duration_model: Optional[AzureDurationModel] = None,
    zipf_s: float = 1.1,
    diurnal_amplitude: float = 0.0,
    diurnal_period: float = 86_400.0,
    diurnal_phase: float = 0.0,
    burst_at: Optional[float] = None,
    burst_duration: float = 300.0,
    burst_factor: float = 4.0,
    flash_at: Optional[float] = None,
    flash_magnitude: float = 9.0,
    flash_rise: float = 60.0,
    flash_decay: float = 600.0,
    regions: Optional[Sequence[str]] = None,
    region_period: float = 86_400.0,
    region_sharpness: float = 1.0,
) -> StreamSource:
    """One canonical source stack from flat options.

    Both the ``faas-stream`` workload component (unsharded path) and the
    sharded coordinator build their source through this helper, in this
    fixed wrapper order, so the two paths generate the *identical*
    invocation sequence from the same named stream and seed.
    """
    source: StreamSource = PoissonSource(
        rng, functions, rate_per_second,
        duration_model=duration_model, zipf_s=zipf_s,
    )
    if diurnal_amplitude > 0.0:
        source = DiurnalModulator(
            source,
            amplitude=diurnal_amplitude,
            period=diurnal_period,
            phase=diurnal_phase,
        )
    if burst_at is not None:
        source = BurstModulator(
            source, start=burst_at, duration=burst_duration, factor=burst_factor
        )
    if flash_at is not None:
        source = FlashCrowdModulator(
            source,
            at=flash_at,
            magnitude=flash_magnitude,
            rise=flash_rise,
            decay=flash_decay,
        )
    if regions:
        source = RegionShiftModulator(
            source, regions, period=region_period, sharpness=region_sharpness
        )
    return source


# ---------------------------------------------------------------------------
# injector + streaming report
# ---------------------------------------------------------------------------


class StreamReport:
    """O(1)-memory outcome aggregates for a streaming load run.

    The streaming analogue of :class:`~repro.workloads.gatling.
    GatlingReport`: per-status counts plus a :class:`StreamingStats`
    (with a deterministic reservoir sketch) over successful response
    times.  Reports from different shards :meth:`merge` into one fleet
    view — counts and moments exactly, quantiles per the sketch-merge
    contract.
    """

    __slots__ = ("total", "by_status", "response", "run_horizon")

    def __init__(self, quantile_capacity: int = 512) -> None:
        # Deferred: repro.analysis pulls in the OW-log/pilot layer, which
        # itself imports repro.workloads — a cycle at module-import time.
        from repro.analysis.streaming import StreamingStats

        self.total = 0
        self.by_status: Dict[str, int] = {}
        self.response = StreamingStats(quantiles=True, capacity=quantile_capacity)
        self.run_horizon: Optional[float] = None

    def add(self, status: ActivationStatus, response_time: float) -> None:
        self.total += 1
        key = status.name
        self.by_status[key] = self.by_status.get(key, 0) + 1
        if status is ActivationStatus.SUCCESS:
            self.response.add(float(response_time))

    def count(self, status: ActivationStatus) -> int:
        return self.by_status.get(status.name, 0)

    @property
    def invoked_share(self) -> float:
        """Share of requests the controller accepted (no 503)."""
        if not self.total:
            return 0.0
        return 1.0 - self.count(ActivationStatus.UNAVAILABLE) / self.total

    @property
    def success_share_of_invoked(self) -> float:
        """Successes / accepted — the paper's responsiveness metric."""
        invoked = self.total - self.count(ActivationStatus.UNAVAILABLE)
        if invoked == 0:
            return 0.0
        return self.count(ActivationStatus.SUCCESS) / invoked

    def merge(self, other: "StreamReport") -> None:
        """Fold another report (typically another shard's) into this one."""
        self.total += other.total
        for key, hits in other.by_status.items():
            self.by_status[key] = self.by_status.get(key, 0) + hits
        self.response.merge(other.response)
        if other.run_horizon is not None:
            self.run_horizon = max(self.run_horizon or 0.0, other.run_horizon)

    def metrics(self, prefix: str = "stream_") -> Dict[str, float]:
        """The report as flat scalar metrics (probe / shard-merge view)."""
        out: Dict[str, float] = {
            f"{prefix}requests_total": self.total,
            f"{prefix}accepted_share": self.invoked_share,
            f"{prefix}success_share_of_invoked": self.success_share_of_invoked,
        }
        if self.response.count:
            out[f"{prefix}mean_response_s"] = self.response.mean
            out[f"{prefix}p50_response_s"] = self.response.quantile(0.5)
            out[f"{prefix}p99_response_s"] = self.response.quantile(0.99)
        return out


class FaaSStreamClient:
    """Open-loop streaming injector over any :class:`StreamSource`.

    Pulls invocations from the source one at a time — the full schedule
    is never resident — and spawns one process per request, so memory is
    O(in-flight requests) however long the horizon.  ``target`` is
    anything exposing ``invoke(function, duration=...)`` as a process
    generator (region tags additionally require the ``cluster=`` keyword,
    which :class:`~repro.faas.client.FaaSClient` provides).
    """

    def __init__(
        self,
        env: Environment,
        target,
        source: StreamSource,
        report: Optional[StreamReport] = None,
    ) -> None:
        self.env = env
        self.target = target
        self.source = source
        self.report = report if report is not None else StreamReport()
        self._proc = None

    def start(self, horizon: float) -> None:
        """Begin injecting; the source is consumed up to *horizon*."""
        self.report.run_horizon = float(horizon)
        self._proc = self.env.process(self._inject(horizon))

    def _inject(self, horizon: float):
        env = self.env
        for invocation in self.source.iter_invocations(horizon):
            if invocation.time > env.now:
                yield env.timeout(invocation.time - env.now)
            env.process(self._one_request(invocation))

    def _one_request(self, invocation: Invocation):
        if invocation.cluster is None:
            result: ActivationResult = yield from self.target.invoke(
                invocation.function, duration=invocation.duration
            )
        else:
            result = yield from self.target.invoke(
                invocation.function,
                duration=invocation.duration,
                cluster=invocation.cluster,
            )
        self.report.add(result.status, result.response_time)
