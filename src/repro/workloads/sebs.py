"""Real compute kernels from the SeBS suite (Fig 7, Sec. V-D).

The paper benchmarks the three *compute-intensive* SeBS functions —
``bfs``, ``mst`` and ``pagerank`` — on Prometheus nodes and AWS Lambda.
These are genuine implementations executed natively (not simulated): the
Fig 7 reproduction times them on the local machine for the "Prometheus"
side and applies the calibrated Lambda performance model for the AWS side.

Inputs are seeded synthetic graphs (Barabási–Albert preferential
attachment, as used by SeBS), so measurements are reproducible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np
from scipy import sparse


# ----------------------------------------------------------------------
# graph generation
# ----------------------------------------------------------------------
def generate_graph(
    size: int, rng: np.random.Generator, attachment: int = 10
) -> Tuple[np.ndarray, np.ndarray]:
    """A Barabási–Albert graph as flat edge arrays (u[], v[]).

    Hand-rolled preferential attachment using a repeated-endpoint pool —
    O(E) and much faster than building a networkx object at these sizes.
    """
    if size <= attachment:
        raise ValueError("size must exceed the attachment parameter")
    pool: List[int] = list(range(attachment))
    us: List[int] = []
    vs: List[int] = []
    for new_vertex in range(attachment, size):
        # Sample `attachment` distinct-ish targets from the endpoint pool.
        targets = set()
        while len(targets) < attachment:
            targets.add(pool[int(rng.integers(0, len(pool)))])
        for target in targets:
            us.append(new_vertex)
            vs.append(target)
            pool.append(target)
        pool.extend([new_vertex] * attachment)
    return np.asarray(us, dtype=np.int64), np.asarray(vs, dtype=np.int64)


def edges_to_csr(size: int, us: np.ndarray, vs: np.ndarray) -> sparse.csr_matrix:
    """Symmetric adjacency matrix in CSR form."""
    data = np.ones(len(us) * 2, dtype=np.float64)
    rows = np.concatenate([us, vs])
    cols = np.concatenate([vs, us])
    return sparse.csr_matrix((data, (rows, cols)), shape=(size, size))


def edges_to_adjacency(size: int, us: np.ndarray, vs: np.ndarray) -> List[List[int]]:
    adjacency: List[List[int]] = [[] for _ in range(size)]
    for u, v in zip(us.tolist(), vs.tolist()):
        adjacency[u].append(v)
        adjacency[v].append(u)
    return adjacency


# ----------------------------------------------------------------------
# kernels
# ----------------------------------------------------------------------
def bfs(adjacency: List[List[int]], source: int = 0) -> Dict[str, int]:
    """Breadth-first search; returns depth histogram stats (SeBS-style)."""
    n = len(adjacency)
    depth = [-1] * n
    depth[source] = 0
    frontier = [source]
    visited = 1
    level = 0
    while frontier:
        level += 1
        next_frontier: List[int] = []
        for vertex in frontier:
            for neighbour in adjacency[vertex]:
                if depth[neighbour] < 0:
                    depth[neighbour] = level
                    next_frontier.append(neighbour)
                    visited += 1
        frontier = next_frontier
    return {"visited": visited, "levels": level - 1 if level else 0}


class _UnionFind:
    __slots__ = ("parent", "rank")

    def __init__(self, size: int) -> None:
        self.parent = list(range(size))
        self.rank = [0] * size

    def find(self, x: int) -> int:
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        return True


def mst(
    size: int, us: np.ndarray, vs: np.ndarray, weights: np.ndarray
) -> Dict[str, float]:
    """Kruskal's minimum spanning tree over weighted edges."""
    order = np.argsort(weights, kind="stable")
    uf = _UnionFind(size)
    total = 0.0
    picked = 0
    us_list, vs_list, w_list = us.tolist(), vs.tolist(), weights.tolist()
    for index in order.tolist():
        if uf.union(us_list[index], vs_list[index]):
            total += w_list[index]
            picked += 1
            if picked == size - 1:
                break
    return {"weight": total, "edges": picked}


def pagerank(
    matrix: sparse.csr_matrix,
    damping: float = 0.85,
    iterations: int = 50,
) -> np.ndarray:
    """Power-iteration PageRank on a CSR adjacency matrix."""
    n = matrix.shape[0]
    out_degree = np.asarray(matrix.sum(axis=1)).ravel()
    out_degree[out_degree == 0] = 1.0
    transition = matrix.multiply(1.0 / out_degree[:, None]).T.tocsr()
    rank = np.full(n, 1.0 / n)
    teleport = (1.0 - damping) / n
    for _ in range(iterations):
        rank = teleport + damping * (transition @ rank)
    return rank


# ----------------------------------------------------------------------
# packaged benchmark functions
# ----------------------------------------------------------------------
@dataclass
class SeBSFunction:
    """A ready-to-run benchmark function with prepared input."""

    name: str
    run: Callable[[], object]


def build_sebs_functions(
    rng: np.random.Generator, graph_size: int = 40000
) -> List[SeBSFunction]:
    """Prepare the three compute-intensive SeBS functions.

    Input preparation happens once (SeBS measures "warm" performance —
    the paper performs 200 invocations per function to exclude cold
    effects); each ``run`` call re-executes the kernel on the same input.
    """
    us, vs = generate_graph(graph_size, rng)
    adjacency = edges_to_adjacency(graph_size, us, vs)
    weights = rng.random(len(us))
    matrix = edges_to_csr(graph_size, us, vs)
    return [
        SeBSFunction("bfs", lambda: bfs(adjacency)),
        SeBSFunction("mst", lambda: mst(graph_size, us, vs, weights)),
        SeBSFunction("pagerank", lambda: pagerank(matrix)),
    ]


def time_invocations(function: SeBSFunction, count: int) -> np.ndarray:
    """Internal execution times of *count* warm invocations, seconds."""
    times = np.empty(count)
    function.run()  # one unmeasured warm-up call
    for i in range(count):
        start = time.perf_counter()
        function.run()
        times[i] = time.perf_counter() - start
    return times


#: modeled warm per-vertex cost of each kernel on the reference node, s
_NOMINAL_COST_PER_VERTEX: Dict[str, float] = {
    "bfs": 55e-9,
    "mst": 160e-9,
    "pagerank": 110e-9,
}


def model_invocations(
    name: str, count: int, graph_size: int, rng: np.random.Generator
) -> np.ndarray:
    """Deterministic stand-in for :func:`time_invocations`.

    Draws warm execution times from a calibrated lognormal model instead
    of the host clock, so runs are byte-reproducible for a given seed —
    this is what ``fig7 --synthetic`` and the golden-trace tests use.
    """
    try:
        base = _NOMINAL_COST_PER_VERTEX[name] * graph_size
    except KeyError:
        raise KeyError(
            f"no timing model for SeBS function {name!r}; "
            f"known: {sorted(_NOMINAL_COST_PER_VERTEX)}"
        ) from None
    return base * rng.lognormal(mean=0.0, sigma=0.03, size=count)
