"""FaaS invocation workload models.

The paper motivates HPC-Whisk with the Azure Functions production
characterization [Shahrad et al., ATC'20]: 50% of functions complete in
under 3 seconds and 90% in under one minute — the "sand" that fills HPC
scheduling gaps.  :class:`AzureDurationModel` reproduces those marginals;
:class:`PoissonInvocationProcess` provides open-loop arrivals for
simulation studies beyond the paper's constant-rate experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np


class AzureDurationModel:
    """Function execution durations matching the Azure study's quantiles.

    Targets: P(d ≤ 3 s) = 0.50 and P(d ≤ 60 s) = 0.90.  A single lognormal
    fits both exactly: median 3 s, σ = ln(60/3)/z₀.₉ = ln 20 / 1.2816 ≈ 2.34.
    Durations are clipped to [1 ms, 15 min] (commercial FaaS limits).
    """

    MEDIAN = 3.0
    SIGMA = math.log(60.0 / 3.0) / 1.2816
    MIN = 0.001
    MAX = 900.0

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def sample(self, size=None):
        draw = self._rng.lognormal(mean=math.log(self.MEDIAN), sigma=self.SIGMA, size=size)
        return np.clip(draw, self.MIN, self.MAX) if size is not None else float(
            min(max(draw, self.MIN), self.MAX)
        )


@dataclass(frozen=True)
class Invocation:
    """One planned invocation: when, which function, how long it computes.

    ``cluster`` is an optional placement preference (a federation member
    id) set by region-aware sources; plain sources leave it ``None`` and
    routing falls back to the load-balancer / federation policy.
    """

    time: float
    function: str
    duration: float
    cluster: Optional[str] = None


class PoissonInvocationProcess:
    """Open-loop Poisson arrivals over a set of functions.

    Function popularity is Zipf-distributed (s = 1.1), matching the
    skewed popularity observed in production FaaS traces.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        functions: Sequence[str],
        rate_per_second: float,
        duration_model: Optional[AzureDurationModel] = None,
        zipf_s: float = 1.1,
    ) -> None:
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        if not functions:
            raise ValueError("need at least one function")
        self._rng = rng
        self.functions = list(functions)
        self.rate = rate_per_second
        self.duration_model = duration_model or AzureDurationModel(rng)
        ranks = np.arange(1, len(self.functions) + 1, dtype=float)
        weights = ranks ** (-zipf_s)
        self._popularity = weights / weights.sum()

    def generate(self, horizon: float) -> List[Invocation]:
        """All invocations in ``[0, horizon)``, time-ordered."""
        rng = self._rng
        n = rng.poisson(self.rate * horizon)
        times = np.sort(rng.uniform(0.0, horizon, size=n))
        names = rng.choice(len(self.functions), size=n, p=self._popularity)
        durations = self.duration_model.sample(size=n)
        return [
            Invocation(time=float(t), function=self.functions[int(i)], duration=float(d))
            for t, i, d in zip(times, names, durations)
        ]

    def iter_generate(self, horizon: float) -> Iterator[Invocation]:
        """Invocations in ``[0, horizon)``, one at a time, O(1) memory.

        Unlike :meth:`generate` — which draws the Poisson count up front
        and sorts a full horizon of uniforms — this samples exponential
        inter-arrival gaps incrementally, so resident memory is constant
        regardless of the horizon.  The two constructions describe the
        same homogeneous Poisson process (identical distribution per
        seed, not the identical draw sequence); ``generate``'s output is
        untouched for existing callers.
        """
        rng = self._rng
        scale = 1.0 / self.rate
        n_functions = len(self.functions)
        t = 0.0
        while True:
            t += float(rng.exponential(scale))
            if t >= horizon:
                return
            index = int(rng.choice(n_functions, p=self._popularity))
            yield Invocation(
                time=t,
                function=self.functions[index],
                duration=float(self.duration_model.sample()),
            )
