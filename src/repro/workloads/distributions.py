"""Calibrated probability models behind every generator.

Each model documents the paper statistic it targets; `tests/test_workloads/`
verifies the targets numerically (large-sample quantiles within tolerance).

All durations are seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LognormalSpec:
    """A lognormal parameterized by its median and shape (sigma)."""

    median: float
    sigma: float

    @property
    def mu(self) -> float:
        return math.log(self.median)

    @property
    def mean(self) -> float:
        return self.median * math.exp(self.sigma**2 / 2.0)

    def sample(self, rng: np.random.Generator, size=None):
        return rng.lognormal(mean=self.mu, sigma=self.sigma, size=size)

    def quantile(self, q: float) -> float:
        from scipy.stats import norm

        return self.median * math.exp(self.sigma * norm.ppf(q))


class IdlePeriodLengthModel:
    """Lengths of per-node idleness periods (Fig 1b).

    Paper targets: median 2 min, 75th percentile ≈ 4 min, mean slightly
    over 5 min, 5% of periods longer than 23 minutes ("long tail").

    Model: two-component lognormal mixture — a short-gap body (weight 0.80,
    median 100 s, σ 0.7) and a long-tail component (median 1200 s, σ 0.85).
    The raw mixture is deliberately heavier than the targets because the
    idleness generator truncates in-flight periods at outage transitions;
    the post-truncation marginals match Fig 1b (verified in tests).
    """

    BODY = LognormalSpec(median=100.0, sigma=0.7)
    TAIL = LognormalSpec(median=1200.0, sigma=0.85)
    BODY_WEIGHT = 0.80
    #: periods shorter than this are unobservable to the 10-s pollers and
    #: unusable by the 2-minute backfill slots; still generated, just tiny
    MINIMUM = 10.0

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    @property
    def mean(self) -> float:
        return (
            self.BODY_WEIGHT * self.BODY.mean
            + (1.0 - self.BODY_WEIGHT) * self.TAIL.mean
        )

    def sample(self, size=None):
        rng = self._rng
        if size is None:
            spec = self.BODY if rng.random() < self.BODY_WEIGHT else self.TAIL
            return max(self.MINIMUM, float(spec.sample(rng)))
        n = int(size)
        choice = rng.random(n) < self.BODY_WEIGHT
        out = np.where(choice, self.BODY.sample(rng, n), self.TAIL.sample(rng, n))
        return np.maximum(out, self.MINIMUM)


class OutageDurationModel:
    """Durations of full-cluster-utilization periods (zero idle nodes).

    Paper targets (Sec. III-E): median ≈ 1 min, mean ≈ 3 min, longest
    observed 93 minutes; the state holds 10.11% of total time.

    Model: lognormal, median 60 s, σ 1.48 (mean = 60·e^{σ²/2} ≈ 180 s).
    """

    SPEC = LognormalSpec(median=60.0, sigma=1.48)
    #: stationary fraction of time in the outage state
    STATIONARY_SHARE = 0.1011

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def sample(self) -> float:
        return float(self.SPEC.sample(self._rng))

    def on_duration_mean(self, share: float | None = None) -> float:
        """Mean sojourn of the complementary (some-idle) state, given the
        desired stationary outage *share* (defaults to the paper's)."""
        if share is None:
            share = self.STATIONARY_SHARE
        if share <= 0.0:
            return float("inf")
        return self.SPEC.mean * (1.0 - share) / share


class IdleIntensityModel:
    """The latent intensity of idle-node supply (Fig 1a/1c).

    The count of simultaneously idle nodes behaves like an M/G/∞ queue fed
    by a doubly-stochastic arrival process: the conditional mean count
    Λ(t) follows exponentiated Ornstein–Uhlenbeck dynamics, giving the
    observed overdispersion (mean 9.23 but median 5 and bursts to ~150).

    Marginals: ln Λ ~ N(ln 5.2, 1.1²) during non-outage time; combined with
    the generator's truncation effects, the count's quantiles land near the
    paper's p25 = 2, median = 5, mean 9.23, p80 = 13, p99 ≈ 67 (verified
    numerically in tests/test_workloads/test_idleness.py).
    """

    LOG_MEDIAN = math.log(5.2)
    SIGMA = 1.1
    #: mean-reversion time constant of the OU process, seconds
    TAU = 1800.0
    #: discretization step for exact OU transitions, seconds
    STEP = 60.0
    #: cap on the conditional mean count (Fig 1c: bursts reach ~150 idle
    #: nodes; an uncapped lognormal would occasionally far exceed that)
    CLIP_MAX = 80.0

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._x = rng.normal(self.LOG_MEDIAN, self.SIGMA)

    @property
    def value(self) -> float:
        """Current conditional mean idle-node count."""
        return min(math.exp(self._x), self.CLIP_MAX)

    def advance(self, dt: float) -> float:
        """Advance the OU state by *dt* seconds (exact transition)."""
        if dt <= 0:
            return self.value
        decay = math.exp(-dt / self.TAU)
        noise_sd = self.SIGMA * math.sqrt(1.0 - decay**2)
        self._x = (
            self.LOG_MEDIAN
            + (self._x - self.LOG_MEDIAN) * decay
            + self._rng.normal(0.0, noise_sd)
        )
        return self.value

    def resample(self) -> float:
        """Draw a fresh stationary state (used after long outages)."""
        self._x = self._rng.normal(self.LOG_MEDIAN, self.SIGMA)
        return self.value


class JobPopulationModel:
    """Prime HPC job limits, runtimes and slack (Fig 2).

    Paper targets: median declared limit 60 min; 95% of jobs declare at
    least 15 min; runtimes visibly below limits with a heavy slack tail.

    * Declared limit: lognormal, median 3600 s, σ 0.85 (so P(limit ≥ 900 s)
      ≈ 0.95), truncated to [300 s, 72 h].
    * Runtime = limit × U, with U a mixture: with probability 0.25 the job
      nearly exhausts its limit (U ~ Uniform(0.88, 1.0) — timeouts and
      well-estimated jobs), otherwise U ~ Beta(1.2, 1.8) (the broad,
      early-finishing mass).  Slack = limit − runtime.
    * Width (nodes): geometric-ish discrete mix dominated by small jobs
      with a wide tail (1 node 45%, 2–4 25%, powers of two up to 512).
    """

    LIMIT = LognormalSpec(median=3600.0, sigma=0.85)
    LIMIT_MIN = 300.0
    LIMIT_MAX = 72 * 3600.0
    NEAR_FULL_PROB = 0.25

    WIDTH_VALUES = (1, 2, 3, 4, 8, 16, 32, 64, 128, 256, 512)
    WIDTH_WEIGHTS = (0.45, 0.12, 0.06, 0.07, 0.09, 0.08, 0.06, 0.04, 0.02, 0.007, 0.003)

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        weights = np.asarray(self.WIDTH_WEIGHTS, dtype=float)
        self._width_p = weights / weights.sum()

    def sample_limit(self) -> float:
        value = float(self.LIMIT.sample(self._rng))
        return min(max(value, self.LIMIT_MIN), self.LIMIT_MAX)

    def sample_usage_fraction(self) -> float:
        rng = self._rng
        if rng.random() < self.NEAR_FULL_PROB:
            return float(rng.uniform(0.88, 1.0))
        return float(rng.beta(1.2, 1.8))

    def sample_runtime_and_limit(self) -> tuple[float, float]:
        limit = self.sample_limit()
        runtime = max(30.0, limit * self.sample_usage_fraction())
        return runtime, limit

    def limit_for_runtime(self, runtime: float) -> float:
        """Inverse use: given an (observed) runtime, draw a declared limit.

        Trace replay knows each busy segment's true duration and needs a
        user-declared limit consistent with the slack distribution:
        limit = runtime / U.
        """
        fraction = max(self.sample_usage_fraction(), 1e-2)
        limit = runtime / fraction
        return min(max(limit, runtime), self.LIMIT_MAX)

    def sample_width(self) -> int:
        return int(self._rng.choice(self.WIDTH_VALUES, p=self._width_p))


class WarmupModel:
    """Pilot-job warm-up time: start of job → healthy invoker (Sec. IV-B).

    Paper targets: median 12.48 s, 95th percentile 26.50 s.
    Model: lognormal, median 12.48, σ = ln(26.50/12.48)/1.645 ≈ 0.458.
    """

    SPEC = LognormalSpec(median=12.48, sigma=math.log(26.50 / 12.48) / 1.6449)
    #: the a-posteriori coverage simulator charges this flat cost instead
    FLAT_SIMULATION_COST = 20.0

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def sample(self) -> float:
        return float(self.SPEC.sample(self._rng))


class LeadTimeModel:
    """How far ahead of its start a prime job is visible in the queue.

    Not directly published; grounds the split between *known* backfill
    windows (job already queued → its begin time bounds pilot lengths) and
    *surprise* arrivals (which preempt pilots).  The production cluster
    runs deep queues, so most arrivals are visible well in advance:
    exponential with mean 1 hour, truncated to [0 s, 6 h], with a 5%
    chance of zero lead (interactive submissions).
    """

    MEAN = 3600.0
    MAX = 6 * 3600.0
    ZERO_PROB = 0.05

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def sample(self) -> float:
        rng = self._rng
        if rng.random() < self.ZERO_PROB:
            return 0.0
        return float(min(rng.exponential(self.MEAN), self.MAX))
