"""A Gatling-like constant-rate load client (Sec. V-C).

The paper's responsiveness experiment: 100 identical 10 ms sleep functions
called from outside the cluster at a constant 10 calls per second —
864,000 requests over 24 hours — with Gatling recording every response.
This module reproduces the open-model injection and the per-minute
aggregation of Figs 5b/6b.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.faas.activation import ActivationResult, ActivationStatus
from repro.sim import Environment


@dataclass
class RequestOutcome:
    """One logged request."""

    submitted_at: float
    function: str
    status: ActivationStatus
    response_time: float
    backend: str = "hpc-whisk"
    fast_laned: bool = False


@dataclass
class GatlingReport:
    """Aggregated view of a load run.

    ``run_horizon`` is stamped by :meth:`GatlingClient.start` so that
    minute-binned series cover the whole run even when the trailing
    minutes saw no submissions.
    """

    outcomes: List[RequestOutcome] = field(default_factory=list)
    run_horizon: Optional[float] = None

    def __len__(self) -> int:
        return len(self.outcomes)

    # -- request-level aggregates (Sec. V-C numbers) ---------------------
    def count(self, status: ActivationStatus) -> int:
        return sum(1 for o in self.outcomes if o.status is status)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def invoked_share(self) -> float:
        """Share of requests the controller accepted (no 503)."""
        if not self.outcomes:
            return 0.0
        return 1.0 - self.count(ActivationStatus.UNAVAILABLE) / self.total

    @property
    def success_share_of_invoked(self) -> float:
        """Successes / accepted — the paper's 95.19% / 96.99% metric."""
        invoked = self.total - self.count(ActivationStatus.UNAVAILABLE)
        if invoked == 0:
            return 0.0
        return self.count(ActivationStatus.SUCCESS) / invoked

    def response_time_percentile(self, q: float, successful_only: bool = True) -> float:
        times = [
            o.response_time
            for o in self.outcomes
            if not successful_only or o.status is ActivationStatus.SUCCESS
        ]
        if not times:
            return float("nan")
        return float(np.percentile(times, q))

    # -- per-minute series (Figs 5b / 6b) ---------------------------------
    def per_minute(self, horizon: Optional[float] = None) -> Dict[str, np.ndarray]:
        """Minute-binned counts of successful / failed / lost / 503.

        The bin range is, in order of preference: the explicit
        ``horizon`` argument, the :attr:`run_horizon` recorded at
        injection start, then — for hand-built reports only — the last
        submission time.  The last fallback under-counts minutes when a
        run's tail has no submissions, which is exactly why the client
        stamps the real horizon.
        """
        if horizon is None:
            horizon = self.run_horizon
        if not self.outcomes and horizon is None:
            return {k: np.zeros(0, dtype=int) for k in ("successful", "failed", "lost", "rejected")}
        end = horizon if horizon is not None else max(o.submitted_at for o in self.outcomes) + 1
        bins = int(np.ceil(end / 60.0))
        series = {
            "successful": np.zeros(bins, dtype=int),
            "failed": np.zeros(bins, dtype=int),
            "lost": np.zeros(bins, dtype=int),
            "rejected": np.zeros(bins, dtype=int),
        }
        key_for = {
            ActivationStatus.SUCCESS: "successful",
            ActivationStatus.FAILED: "failed",
            ActivationStatus.TIMEOUT: "lost",
            ActivationStatus.UNAVAILABLE: "rejected",
        }
        for outcome in self.outcomes:
            index = min(int(outcome.submitted_at // 60.0), bins - 1)
            series[key_for[outcome.status]][index] += 1
        return series


class GatlingClient:
    """Constant-rate open-model injector.

    ``target`` is anything exposing ``invoke(function, duration=...)`` as a
    process generator returning an
    :class:`~repro.faas.activation.ActivationResult` — the plain
    :class:`~repro.faas.client.FaaSClient` or the Alg. 1 wrapper.
    """

    def __init__(
        self,
        env: Environment,
        target,
        functions: Sequence[str],
        rate_per_second: float = 10.0,
        duration: float = 0.010,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        if not functions:
            raise ValueError("need at least one function")
        self.env = env
        self.target = target
        self.functions = list(functions)
        self.rate = rate_per_second
        self.duration = duration
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.report = GatlingReport()
        self._proc = None

    def start(self, horizon: float) -> None:
        """Begin injecting; stops issuing new requests at *horizon*."""
        self.report.run_horizon = float(horizon)
        self._proc = self.env.process(self._inject(horizon))

    def _inject(self, horizon: float):
        env = self.env
        interval = 1.0 / self.rate
        index = 0
        while env.now < horizon:
            function = self.functions[index % len(self.functions)]
            index += 1
            env.process(self._one_request(function))
            yield env.timeout(interval)

    def _one_request(self, function: str):
        submitted = self.env.now
        result: ActivationResult = yield from self.target.invoke(
            function, duration=self.duration
        )
        self.report.outcomes.append(
            RequestOutcome(
                submitted_at=submitted,
                function=function,
                status=result.status,
                response_time=result.response_time,
                backend=result.backend,
                fast_laned=result.fast_laned,
            )
        )
