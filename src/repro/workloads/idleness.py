"""The cluster idleness process (Fig 1).

Generates *when and where* idle periods occur, independent of any
scheduler: the marginal statistics are taken from the paper's week-long
analysis of Prometheus (Sec. I).  The construction is a doubly-stochastic
M/G/∞ superposition gated by an outage regime:

1. An **outage regime** alternates ON (some nodes may idle) and OFF (the
   cluster is packed; the paper observed zero idle nodes 10.11% of the
   time, median outage ≈ 1 min, longest 93 min).
2. While ON, a latent **intensity** Λ(t) — exponentiated OU — sets the
   conditional mean number of idle nodes; idle-period *starts* arrive as a
   Poisson process with rate Λ(t)/E[L].
3. Each period draws its **length** from the Fig 1b mixture model and is
   assigned to a uniformly random currently-busy node.
4. Entering OFF truncates all active periods (the cluster filled up).

The result is an :class:`IdlenessTrace`: per-node idle intervals over a
horizon, which feeds (a) the Fig 1 analyses, (b) the Table I clairvoyant
coverage simulation, and (c) — via :mod:`repro.workloads.hpc_trace` — the
prime workload of the full cluster-simulation experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.workloads.distributions import (
    IdleIntensityModel,
    IdlePeriodLengthModel,
    OutageDurationModel,
)


@dataclass(frozen=True)
class IdlePeriod:
    """One contiguous idle interval on one node."""

    node: str
    start: float
    end: float

    @property
    def length(self) -> float:
        return self.end - self.start


@dataclass
class IdlenessTrace:
    """Per-node idle intervals over ``[0, horizon)``."""

    horizon: float
    num_nodes: int
    periods: List[IdlePeriod] = field(default_factory=list)

    @property
    def node_names(self) -> List[str]:
        return [f"n{i:04d}" for i in range(self.num_nodes)]

    def periods_by_node(self) -> Dict[str, List[IdlePeriod]]:
        by_node: Dict[str, List[IdlePeriod]] = {}
        for period in self.periods:
            by_node.setdefault(period.node, []).append(period)
        for periods in by_node.values():
            periods.sort(key=lambda p: p.start)
        return by_node

    def lengths(self) -> np.ndarray:
        return np.array([p.length for p in self.periods])

    def total_idle_surface(self) -> float:
        """Total idle node-seconds (the paper's ~37,000 core-hour figure,
        expressed in node-time)."""
        return float(sum(p.length for p in self.periods))

    def count_at(self, t: float) -> int:
        """Number of nodes idle at time *t* (O(n); use count_series for bulk)."""
        return sum(1 for p in self.periods if p.start <= t < p.end)

    def count_series(self, step: float = 10.0) -> Tuple[np.ndarray, np.ndarray]:
        """(times, counts) sampled every *step* seconds via sweep line."""
        events: List[Tuple[float, int]] = []
        for p in self.periods:
            events.append((p.start, 1))
            events.append((p.end, -1))
        events.sort()
        times = np.arange(0.0, self.horizon, step)
        counts = np.zeros(len(times), dtype=int)
        level = 0
        j = 0
        for i, t in enumerate(times):
            while j < len(events) and events[j][0] <= t:
                level += events[j][1]
                j += 1
            counts[i] = level
        return times, counts

    def zero_idle_share(self, step: float = 10.0) -> float:
        _, counts = self.count_series(step)
        return float(np.mean(counts == 0))

    def restricted(self, start: float, end: float) -> "IdlenessTrace":
        """Clip the trace to ``[start, end)`` and rebase to 0."""
        clipped = [
            IdlePeriod(p.node, max(p.start, start) - start, min(p.end, end) - start)
            for p in self.periods
            if p.end > start and p.start < end
        ]
        return IdlenessTrace(horizon=end - start, num_nodes=self.num_nodes, periods=clipped)


class IdlenessTraceGenerator:
    """Synthesizes :class:`IdlenessTrace` objects.

    ``intensity_scale`` rescales the latent supply — the paper's two
    experiment days differed materially (avg 11.85 available nodes on the
    fib day vs 7.38 on the var day), which we reproduce by scaling.
    """

    #: calibration constant: the *effective* mean idle-period length after
    #: outage/segment truncation, used as the M/G/∞ rate divisor so that
    #: occupancy E[N] = Λ.  The raw mixture mean overstates the effective
    #: length because the long-tail component is frequently cut short by
    #: regime changes; this value is fitted empirically (see
    #: tests/test_workloads/test_idleness.py, which asserts the resulting
    #: marginals against the paper's Fig 1 statistics).
    EFFECTIVE_MEAN_LENGTH = 380.0
    #: stationary share of *scheduled* outage time; the remaining
    #: zero-idle probability mass arises naturally from low-intensity
    #: stretches, so this is below the paper's total 10.11%
    DEFAULT_OUTAGE_SHARE = 0.06

    def __init__(
        self,
        rng: np.random.Generator,
        num_nodes: int = 2239,
        intensity_scale: float = 1.0,
        length_scale: float = 1.0,
        outage_share: Optional[float] = None,
        min_intensity: float = 0.0,
        diurnal_amplitude: float = 0.0,
        diurnal_period: float = 24 * 3600.0,
        diurnal_phase: float = 0.0,
    ) -> None:
        """``length_scale`` multiplies every idle-period length while the
        arrival rate is divided by the same factor, preserving the mean
        idle-node count.  The paper's experiment days exhibited visibly
        longer worker periods than the calibration week (fib-day invokers
        served ~23 minutes on average), which this knob reproduces."""
        if num_nodes < 1:
            raise ValueError("num_nodes must be positive")
        if intensity_scale <= 0:
            raise ValueError("intensity_scale must be positive")
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        self._rng = rng
        self.num_nodes = num_nodes
        self.intensity_scale = intensity_scale
        self.length_scale = length_scale
        #: floor on the conditional mean idle count — models a day with a
        #: guaranteed baseline of idle supply (the paper's fib day saw zero
        #: available nodes in only 0.6% of samples)
        self.min_intensity = min_intensity
        # Diurnal modulation — the paper's future-work item ("identify the
        # potential patterns in the workload"): idle supply is multiplied
        # by 1 + A·sin(2π(t+φ)/P).  A = 0 (default) disables it.
        if not 0.0 <= diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        self.diurnal_amplitude = diurnal_amplitude
        self.diurnal_period = diurnal_period
        self.diurnal_phase = diurnal_phase
        self.length_model = IdlePeriodLengthModel(rng)
        self.outage_model = OutageDurationModel(rng)
        self.intensity_model = IdleIntensityModel(rng)
        self._outage_share = (
            self.DEFAULT_OUTAGE_SHARE if outage_share is None else outage_share
        )

    # ------------------------------------------------------------------
    def generate(self, horizon: float) -> IdlenessTrace:
        """Generate a trace over ``[0, horizon)`` seconds."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        rng = self._rng
        mean_len = self.EFFECTIVE_MEAN_LENGTH * self.length_scale
        step = self.intensity_model.STEP

        periods: List[IdlePeriod] = []
        #: node index -> (start, natural end) of its active idle period
        active: Dict[int, Tuple[float, float]] = {}

        def close(node_index: int, end: float) -> None:
            start, _natural = active.pop(node_index)
            end = min(end, horizon)
            if end > start:
                periods.append(IdlePeriod(f"n{node_index:04d}", start, end))

        def expire(now: float) -> None:
            for node_index in [i for i, (_, end) in active.items() if end <= now]:
                close(node_index, active[node_index][1])

        t = 0.0
        regime_on = rng.random() > self._outage_share
        while t < horizon:
            if not regime_on:
                # The cluster filled up: truncate every active period.
                for node_index in list(active):
                    close(node_index, t)
                duration = min(self.outage_model.sample(), horizon - t)
                t += duration
                regime_on = True
                self.intensity_model.resample()
                continue

            on_mean = self.outage_model.on_duration_mean(self._outage_share)
            if on_mean == float("inf"):
                on_duration = horizon - t
            else:
                on_duration = min(rng.exponential(on_mean), horizon - t)
            segment_end = t + on_duration
            # Jump-start the segment at the stationary occupancy: after an
            # outage the real cluster's supply reappears in a burst (many
            # jobs ended together), not via a slow M/G/∞ ramp.
            initial = rng.poisson(self._target_intensity(t))
            for _ in range(initial):
                node_index = self._pick_busy_node(active)
                if node_index is None:
                    break
                length = float(self.length_model.sample()) * self.length_scale
                active[node_index] = (t, t + length)
            while t < segment_end:
                dt = min(step, segment_end - t)
                target = self._target_intensity(t)
                rate = target / mean_len
                n_arrivals = rng.poisson(rate * dt)
                for arrival in np.sort(rng.uniform(t, t + dt, size=n_arrivals)):
                    expire(arrival)
                    node_index = self._pick_busy_node(active)
                    if node_index is None:
                        continue
                    length = float(self.length_model.sample()) * self.length_scale
                    active[node_index] = (float(arrival), float(arrival) + length)
                t += dt
                expire(t)
                self.intensity_model.advance(dt)
            regime_on = False

        for node_index in list(active):
            close(node_index, active[node_index][1])
        trace = IdlenessTrace(horizon=horizon, num_nodes=self.num_nodes, periods=periods)
        trace.periods.sort(key=lambda p: (p.start, p.node))
        return trace

    def _target_intensity(self, now: float = 0.0) -> float:
        modulation = 1.0
        if self.diurnal_amplitude > 0.0:
            import math

            modulation = 1.0 + self.diurnal_amplitude * math.sin(
                2.0 * math.pi * (now + self.diurnal_phase) / self.diurnal_period
            )
        return max(
            self.intensity_model.value * self.intensity_scale * modulation,
            self.min_intensity,
        )

    # ------------------------------------------------------------------
    def _pick_busy_node(self, active: Dict[int, Tuple[float, float]]) -> Optional[int]:
        """A uniformly random node that is not currently idle."""
        rng = self._rng
        for _ in range(8):
            candidate = int(rng.integers(0, self.num_nodes))
            if candidate not in active:
                return candidate
        free = [i for i in range(self.num_nodes) if i not in active]
        if not free:
            return None
        return int(rng.choice(free))
