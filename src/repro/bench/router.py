"""Federation-router microbenchmark: the cross-cluster hot path.

A pure FaaS-layer simulation — no Slurm, no pilots — that floods a
federated controller with invocations over a static fleet of
cluster-tagged invokers, so nearly every kernel event sits on the
routing hot path: ``healthy_by_cluster`` → router policy → per-cluster
load balancer → broker publish → executor → completion.

Scaled by the shared ``smoke``/``quick``/``full`` presets; ``repro
bench router`` records the result as ``BENCH_router.json`` and the CI
bench-smoke job gates it against the committed baseline exactly like
the kernel microbenchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.bench.instrument import KernelProbe, KernelStats
from repro.faas.broker import Broker
from repro.faas.config import FaaSConfig
from repro.faas.controller import Controller
from repro.faas.functions import sleep_functions
from repro.faas.invoker import Invoker
from repro.faas.router import WeightedIdle
from repro.sim import Environment, Interrupt

#: registry-safe name of the router microbenchmark in ``repro bench``
ROUTER_BENCH_NAME = "router"


@dataclass(frozen=True)
class RouterScale:
    """Sizing of the router microbenchmark."""

    clusters: int
    invokers_per_cluster: int
    functions: int
    invocations: int
    #: submit cadence, seconds (small enough to keep deep queues)
    interval: float = 0.005

    @property
    def approx_invocations(self) -> int:
        return self.invocations


ROUTER_SCALES: Dict[str, RouterScale] = {
    "full": RouterScale(
        clusters=8, invokers_per_cluster=4, functions=100, invocations=100_000
    ),
    "quick": RouterScale(
        clusters=4, invokers_per_cluster=4, functions=50, invocations=20_000
    ),
    "smoke": RouterScale(
        clusters=4, invokers_per_cluster=2, functions=25, invocations=3_000
    ),
}


def run_router_bench(preset: str = "quick") -> KernelStats:
    """Run the federated flood at *preset* scale under a fresh probe."""
    try:
        scale = ROUTER_SCALES[preset]
    except KeyError:
        raise KeyError(
            f"unknown router bench preset {preset!r}; "
            f"expected one of {sorted(ROUTER_SCALES)}"
        ) from None

    with KernelProbe() as probe:
        env = Environment()
        broker = Broker(env)
        config = FaaSConfig(system_overhead=0.0)
        router = WeightedIdle()
        router.bind_rng(np.random.default_rng(1))
        member_ids = [f"b{i}" for i in range(scale.clusters)]
        controller = Controller(
            env,
            broker,
            config=config,
            rng=np.random.default_rng(2),
            router=router,
            cluster_order=member_ids,
        )
        functions = sleep_functions(scale.functions, 0.001)
        for function in functions:
            controller.deploy(function)

        fleet_rng = np.random.default_rng(3)
        for c_index, cluster_id in enumerate(member_ids):
            for i_index in range(scale.invokers_per_cluster):
                invoker = Invoker(
                    env,
                    invoker_id=f"inv-{cluster_id}-{i_index}",
                    node=f"n{c_index:02d}{i_index:02d}",
                    broker=broker,
                    registry=controller.registry,
                    config=config,
                    rng=fleet_rng,
                    cluster_id=cluster_id,
                )

                def lifecycle(inv=invoker):
                    yield from inv.register()
                    try:
                        yield from inv.serve()
                    except Interrupt:  # pragma: no cover - flood never drains
                        pass

                env.process(lifecycle())

        def flood():
            names = [function.name for function in functions]
            for index in range(scale.invocations):
                env.process(
                    controller.invoke(names[index % len(names)], duration=0.001)
                )
                yield env.timeout(scale.interval)

        env.process(flood())
        env.run(until=scale.invocations * scale.interval + 60.0)
    return probe.stats
