"""Shard-scaling benchmark: the multi-process federation hot path.

Runs the streaming two-member federation (the :mod:`repro.experiments.
stream_day` stack shape) through :func:`repro.shard.run_sharded` — one
kernel process per member, window-synchronized at the router — and
reports fleet throughput as a :class:`~repro.bench.instrument.
KernelStats`: event counters **summed across the shard workers** over
the coordinator's wall clock.  That makes events/sec the genuine
parallel figure of merit: a regression here means either the kernels
got slower or the window synchronization started serializing them.

``repro bench shards`` records ``BENCH_shards.json`` and the CI
bench-smoke job gates it against the committed baseline exactly like
the single-process microbenchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.bench.instrument import KernelStats

#: registry-safe name of the shard-scaling benchmark in ``repro bench``
SHARDS_BENCH_NAME = "shards"


@dataclass(frozen=True)
class ShardScale:
    """Sizing of the shard-scaling benchmark."""

    members: int
    nodes_per_member: int
    horizon: float
    qps: float
    sync_window: float = 60.0


SHARD_SCALES: Dict[str, ShardScale] = {
    "full": ShardScale(
        members=4, nodes_per_member=24, horizon=14_400.0, qps=24.0
    ),
    "quick": ShardScale(
        members=2, nodes_per_member=16, horizon=3_600.0, qps=8.0
    ),
    "smoke": ShardScale(
        members=2, nodes_per_member=8, horizon=900.0, qps=4.0
    ),
}


def run_shards_bench(preset: str = "quick") -> KernelStats:
    """Run the sharded streaming federation at *preset* scale."""
    try:
        scale = SHARD_SCALES[preset]
    except KeyError:
        raise KeyError(
            f"unknown shards bench preset {preset!r}; "
            f"expected one of {sorted(SHARD_SCALES)}"
        ) from None

    from repro.api import (
        ClusterSpec,
        MiddlewareSpec,
        ProbeSpec,
        RouterSpec,
        Stack,
        SupplySpec,
        WorkloadSpec,
    )

    stack = Stack(
        clusters=tuple(
            ClusterSpec(nodes=scale.nodes_per_member, cluster_id=f"m{index}")
            for index in range(scale.members)
        ),
        supply=SupplySpec("fib"),
        middleware=MiddlewareSpec(),
        router=RouterSpec("weighted-idle"),
        workloads=(
            WorkloadSpec("idleness-trace", outage_share=0.0),
            WorkloadSpec(
                "faas-stream",
                qps=scale.qps,
                functions=50,
                azure_durations=False,
                diurnal_amplitude=0.3,
                region_shift=True,
                region_period=scale.horizon,
            ),
        ),
        probes=(ProbeSpec("slurm-sampler", history=False),),
        seed=1105,
        horizon=scale.horizon,
        name="bench-shards",
    )
    report = stack.run_sharded(
        shards=scale.members, sync_window=scale.sync_window
    )
    kernel = report.artifacts["kernel"]
    return KernelStats(
        events_processed=int(kernel["events_processed"]),
        events_scheduled=int(kernel["events_scheduled"]),
        peak_queue_depth=int(kernel["peak_queue_depth"]),
        wall_time_s=float(kernel["wall_time_s"]),
    )
