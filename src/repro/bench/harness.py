"""Benchmark harness: run, record, and compare kernel throughput.

One :class:`BenchRecord` captures one benchmark run — either the pure
:mod:`repro.bench.kernel` microbenchmark or any registered scenario
executed at a scale preset under a :class:`~repro.bench.instrument.KernelProbe`.
Records serialize to the ``repro-bench/1`` JSON schema::

    {
      "schema": "repro-bench/1",
      "name": "day", "kind": "scenario", "preset": "smoke", "seed": 317,
      "events_processed": ..., "events_scheduled": ...,
      "peak_queue_depth": ..., "wall_time_s": ..., "events_per_sec": ...,
      "metrics": {"...": ...}          # the scenario's flat metrics
    }

``repro bench`` writes one ``BENCH_<name>.json`` per benchmark plus an
optional combined baseline file (``repro-bench-baseline/1``: the same
records keyed by name).  :func:`compare_records` implements the
regression gate: a benchmark regresses when its events/sec falls more
than ``max_regression`` below the baseline's.
"""

from __future__ import annotations

import cProfile
import io
import json
import os
import pstats
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.bench.instrument import KernelProbe, KernelStats
from repro.bench.kernel import (
    FLOOD_BENCH_NAME,
    FLOOD_WHEEL_BENCH_NAME,
    KERNEL_BENCH_NAME,
    KERNEL_COMPILED_BENCH_NAME,
    KERNEL_WHEEL_BENCH_NAME,
    TIMEOUT_FLOOD_BENCH_NAME,
    run_flood_bench,
    run_kernel_bench,
    run_kernel_compiled_bench,
    run_timeout_flood_bench,
)
from repro.bench.router import ROUTER_BENCH_NAME, run_router_bench
from repro.bench.shards import SHARDS_BENCH_NAME, run_shards_bench
from repro.scenarios.registry import REGISTRY, load_builtin
from repro.scenarios.sweep import reset_run_state

BENCH_SCHEMA = "repro-bench/1"
BASELINE_SCHEMA = "repro-bench-baseline/1"


@dataclass(frozen=True)
class BenchRecord:
    """One benchmark run, ready for JSON persistence and comparison."""

    name: str
    #: "kernel" (microbenchmark) or "scenario" (registry-backed)
    kind: str
    preset: str
    stats: KernelStats
    #: root seed of the scenario run (None for the kernel microbench)
    seed: Optional[int] = None
    #: the scenario's flat result metrics (empty for the kernel bench)
    metrics: Mapping[str, float] = field(default_factory=dict)
    #: canonical configuration identity (always derived; see __post_init__)
    spec_hash: Optional[str] = None

    def __post_init__(self) -> None:
        # always the canonical derivation, so records deserialized from
        # old files (no spec_hash key) equal freshly built ones and the
        # from_dict(to_dict()) round-trip stays exact
        from repro.provenance import spec_hash

        object.__setattr__(
            self,
            "spec_hash",
            spec_hash({"bench": self.name, "preset": self.preset}),
        )

    @property
    def events_per_sec(self) -> float:
        return self.stats.events_per_sec

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": BENCH_SCHEMA,
            "spec_hash": self.spec_hash,
            "name": self.name,
            "kind": self.kind,
            "preset": self.preset,
            "seed": self.seed,
            **self.stats.as_dict(),
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BenchRecord":
        schema = payload.get("schema")
        if schema != BENCH_SCHEMA:
            raise ValueError(
                f"expected schema {BENCH_SCHEMA!r}, got {schema!r}"
            )
        stats = KernelStats(
            events_processed=int(payload["events_processed"]),
            events_scheduled=int(payload["events_scheduled"]),
            peak_queue_depth=int(payload["peak_queue_depth"]),
            wall_time_s=float(payload["wall_time_s"]),
            # absent in records written before the allocation pool landed
            events_reused=int(payload.get("events_reused", 0)),
        )
        return cls(
            name=str(payload["name"]),
            kind=str(payload["kind"]),
            preset=str(payload["preset"]),
            stats=stats,
            seed=payload.get("seed"),
            metrics=dict(payload.get("metrics", {})),
        )


#: name -> ``runner(preset) -> KernelStats`` for the pure microbenches.
#: The heap/wheel pairs pin their queue implementation explicitly so
#: recorded numbers stay comparable across baselines no matter what the
#: session default (or ``REPRO_QUEUE``) resolves to.
MICROBENCH_RUNNERS: Dict[str, Callable[[str], KernelStats]] = {
    KERNEL_BENCH_NAME: partial(run_kernel_bench, queue="heap"),
    KERNEL_WHEEL_BENCH_NAME: partial(run_kernel_bench, queue="wheel"),
    KERNEL_COMPILED_BENCH_NAME: run_kernel_compiled_bench,
    FLOOD_BENCH_NAME: partial(run_flood_bench, queue="heap"),
    FLOOD_WHEEL_BENCH_NAME: partial(run_flood_bench, queue="wheel"),
    TIMEOUT_FLOOD_BENCH_NAME: partial(run_timeout_flood_bench, queue="wheel"),
    ROUTER_BENCH_NAME: run_router_bench,
    SHARDS_BENCH_NAME: run_shards_bench,
}


def bench_names() -> List[str]:
    """All runnable benchmarks: the microbenches + every scenario."""
    load_builtin()
    return list(MICROBENCH_RUNNERS) + REGISTRY.names()


def _median_by_wall_time(repeats: List[KernelStats]) -> KernelStats:
    """The median-wall-time repeat: the *typical* throughput.

    The best-of-N estimator records lucky peaks, so a baseline written
    from it sits in the distribution's upper tail and typical later
    runs read as regressions; the median is stable on noisy shared
    machines in both roles (baseline and gate).
    """
    ordered = sorted(repeats, key=lambda stats: stats.wall_time_s)
    return ordered[(len(ordered) - 1) // 2]


def run_bench(name: str, preset: str = "quick", repeats: int = 1) -> BenchRecord:
    """Run one benchmark, recording the median-throughput repeat.

    Repeats exist because events/sec is wall-clock derived and noisy on
    shared machines.  Scenario runs are deterministic in their *metrics*
    regardless (global id counters are reset before every repeat).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    runner = MICROBENCH_RUNNERS.get(name)
    if runner is not None:
        runs = []
        for _ in range(repeats):
            reset_run_state()
            runs.append(runner(preset))
        return BenchRecord(
            name=name, kind="kernel", preset=preset,
            stats=_median_by_wall_time(runs),
        )

    load_builtin()
    scenario = REGISTRY.get(name)  # raises KeyError with the known names
    runs: List[KernelStats] = []
    metrics: Dict[str, float] = {}
    seed: Optional[int] = None
    for _ in range(repeats):
        reset_run_state()
        with KernelProbe() as probe:
            result = scenario.run({}, scale=preset)
        runs.append(probe.stats)
        # metrics/seed are identical across repeats for deterministic
        # scenarios; keep the last run's view
        metrics = dict(result.metrics)
        seed = result.spec.seed
    return BenchRecord(
        name=name, kind="scenario", preset=preset,
        stats=_median_by_wall_time(runs), seed=seed, metrics=metrics,
    )


def profile_bench(name: str, preset: str = "quick", top: int = 25) -> str:
    """Run one benchmark under cProfile; return a pstats top-``top`` table.

    The profile covers a single run (no repeats — profiling overhead
    makes wall-time medians meaningless anyway), sorted by internal
    time, which is where kernel hot spots show.  The returned text is
    what ``repro bench <name> --profile`` prints, so future kernel PRs
    can ship before/after evidence straight from the tool.
    """
    if top < 1:
        raise ValueError("top must be >= 1")
    runner = MICROBENCH_RUNNERS.get(name)
    if runner is None:
        load_builtin()
        scenario = REGISTRY.get(name)  # raises KeyError with known names
        work = lambda: scenario.run({}, scale=preset)  # noqa: E731
    else:
        work = lambda: runner(preset)  # noqa: E731
    reset_run_state()
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        work()
    finally:
        profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats("tottime").print_stats(top)
    return stream.getvalue()


def write_record(record: BenchRecord, out_dir: str = ".") -> str:
    """Write ``BENCH_<name>.json`` into *out_dir*; returns the path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{record.name}.json")
    with open(path, "w") as handle:
        handle.write(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        handle.write("\n")
    return path


def write_baseline(
    records: Sequence[BenchRecord],
    path: str,
    preset: str,
    notes: Optional[Mapping[str, Any]] = None,
) -> str:
    """Write the combined baseline file the regression gate compares to.

    ``notes`` is free-form provenance (machine, reference measurements,
    how the file was produced); :func:`load_baseline` ignores it.
    """
    payload = {
        "schema": BASELINE_SCHEMA,
        "preset": preset,
        "entries": {
            record.name: record.to_dict() for record in records
        },
    }
    if notes:
        payload["notes"] = dict(notes)
    with open(path, "w") as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True))
        handle.write("\n")
    return path


def load_baseline(path: str) -> Dict[str, BenchRecord]:
    """Load a baseline (or single-record) file as ``name -> record``."""
    with open(path) as handle:
        payload = json.load(handle)
    schema = payload.get("schema")
    if schema == BASELINE_SCHEMA:
        return {
            name: BenchRecord.from_dict(entry)
            for name, entry in payload.get("entries", {}).items()
        }
    if schema == BENCH_SCHEMA:
        record = BenchRecord.from_dict(payload)
        return {record.name: record}
    raise ValueError(
        f"{path}: unknown schema {schema!r} (expected {BASELINE_SCHEMA!r} "
        f"or {BENCH_SCHEMA!r})"
    )


def parse_regression(token: str) -> float:
    """``"10%"`` / ``"10"`` / ``"0.5"`` → 0.10 / 0.10 / 0.005.

    Every value is a percentage, with or without the ``%`` suffix — one
    rule, no fraction/percent ambiguity (a bare ``0.5`` silently meaning
    50% would let real regressions through).
    """
    text = str(token).strip()
    value = float(text[:-1] if text.endswith("%") else text) / 100.0
    if not 0.0 <= value < 1.0:
        raise ValueError(f"max regression must be in [0%, 100%), got {token!r}")
    return value


@dataclass(frozen=True)
class Comparison:
    """events/sec of one benchmark vs its baseline entry."""

    name: str
    baseline_eps: float
    current_eps: float
    #: relative change: +0.25 = 25% faster, -0.10 = 10% slower
    delta: float
    regressed: bool


def compare_records(
    current: Mapping[str, BenchRecord],
    baseline: Mapping[str, BenchRecord],
    max_regression: float,
) -> List[Comparison]:
    """Compare every benchmark present in both mappings, current order.

    Raises :class:`ValueError` when a shared benchmark was recorded at a
    different preset — events/sec across presets are different workloads
    and a silent comparison would make the gate's verdict meaningless.
    """
    comparisons: List[Comparison] = []
    for name, record in current.items():
        base = baseline.get(name)
        if base is None:
            continue
        if base.preset != record.preset:
            raise ValueError(
                f"benchmark {name!r}: cannot compare preset "
                f"{record.preset!r} against baseline preset {base.preset!r}"
            )
        base_eps = base.events_per_sec
        cur_eps = record.events_per_sec
        delta = (cur_eps / base_eps - 1.0) if base_eps > 0 else 0.0
        comparisons.append(
            Comparison(
                name=name,
                baseline_eps=base_eps,
                current_eps=cur_eps,
                delta=delta,
                regressed=delta < -max_regression,
            )
        )
    return comparisons
