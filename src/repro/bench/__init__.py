"""Scenario-backed benchmark subsystem.

Turns the kernel's cheap throughput counters
(:data:`repro.sim.core.KERNEL_TOTALS`) into recorded, comparable
benchmark artifacts:

* :mod:`repro.bench.instrument` — :class:`KernelProbe` wraps any block
  of simulation work and yields :class:`KernelStats` (events processed,
  events scheduled, peak queue depth, wall time → events/sec);
* :mod:`repro.bench.kernel` — a pure-kernel microbenchmark (timeout
  floods, process churn, event relays, cancellation storms) scaled by
  the shared ``smoke``/``quick``/``full`` presets;
* :mod:`repro.bench.harness` — runs the microbenchmark or any
  registered scenario under a probe, writes schema'd ``BENCH_<name>.json``
  artifacts, and compares runs against a committed baseline
  (``repro bench --against BENCH_baseline.json --max-regression 10%``).

The CLI front end is ``python -m repro bench`` (see
``EXPERIMENTS.md`` § Benchmarks).
"""

from repro.bench.harness import (
    BENCH_SCHEMA,
    BASELINE_SCHEMA,
    MICROBENCH_RUNNERS,
    BenchRecord,
    Comparison,
    bench_names,
    compare_records,
    load_baseline,
    parse_regression,
    profile_bench,
    run_bench,
    write_baseline,
    write_record,
)
from repro.bench.instrument import KernelProbe, KernelStats
from repro.bench.kernel import (
    FLOOD_BENCH_NAME,
    FLOOD_WHEEL_BENCH_NAME,
    KERNEL_BENCH_NAME,
    KERNEL_WHEEL_BENCH_NAME,
    run_flood_bench,
    run_kernel_bench,
)
from repro.bench.router import ROUTER_BENCH_NAME, run_router_bench
from repro.bench.shards import SHARDS_BENCH_NAME, run_shards_bench

__all__ = [
    "BASELINE_SCHEMA",
    "BENCH_SCHEMA",
    "BenchRecord",
    "Comparison",
    "FLOOD_BENCH_NAME",
    "FLOOD_WHEEL_BENCH_NAME",
    "KERNEL_BENCH_NAME",
    "KERNEL_WHEEL_BENCH_NAME",
    "KernelProbe",
    "KernelStats",
    "MICROBENCH_RUNNERS",
    "ROUTER_BENCH_NAME",
    "SHARDS_BENCH_NAME",
    "run_router_bench",
    "run_shards_bench",
    "bench_names",
    "compare_records",
    "load_baseline",
    "parse_regression",
    "profile_bench",
    "run_bench",
    "run_flood_bench",
    "run_kernel_bench",
    "write_baseline",
    "write_record",
]
