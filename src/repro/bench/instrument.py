"""Kernel instrumentation probe: counters + wall time → events/sec.

The simulation kernel keeps two layers of counters: per-environment
(:attr:`Environment.events_processed`, :attr:`Environment.peak_queue_depth`)
and the process-wide :data:`repro.sim.core.KERNEL_TOTALS` aggregate that
every ``Environment.run()`` flushes into.  A :class:`KernelProbe`
snapshots the aggregate around an arbitrary block of work — a scenario
run, a microbenchmark, a pytest benchmark body — and turns the deltas
into a :class:`KernelStats`:

    with KernelProbe() as probe:
        REGISTRY.run("day", {}, scale="smoke")
    print(probe.stats.events_per_sec)

Because the aggregate is process-wide, the probe sees every environment
the measured code creates internally, without the scenario having to
expose them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.sim.core import KERNEL_TOTALS


@dataclass(frozen=True)
class KernelStats:
    """Kernel work observed by one :class:`KernelProbe` window."""

    #: events popped and processed by run loops during the window
    events_processed: int
    #: events pushed onto simulation heaps during the window
    events_scheduled: int
    #: largest event-heap depth observed during the window
    peak_queue_depth: int
    #: wall-clock duration of the window, seconds
    wall_time_s: float
    #: events served from the allocation pool instead of a fresh object;
    #: the alloc/op regression signal (reuse rate dropping means the
    #: allocation diet regressed even if events/sec still looks fine)
    events_reused: int = 0

    @property
    def events_per_sec(self) -> float:
        """Processed-event throughput (0.0 for an empty/instant window)."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.events_processed / self.wall_time_s

    def as_dict(self) -> Dict[str, Any]:
        return {
            "events_processed": self.events_processed,
            "events_scheduled": self.events_scheduled,
            "events_reused": self.events_reused,
            "peak_queue_depth": self.peak_queue_depth,
            "wall_time_s": self.wall_time_s,
            "events_per_sec": self.events_per_sec,
        }

    def as_extra_info(self) -> Dict[str, Any]:
        """Rounded view for pytest-benchmark ``extra_info`` columns."""
        return {
            "events_processed": self.events_processed,
            "peak_queue_depth": self.peak_queue_depth,
            "events_per_sec": round(self.events_per_sec, 1),
        }


class KernelProbe:
    """Measures kernel work done between :meth:`start` and :meth:`stop`.

    Usable either as a context manager (the result lands on
    :attr:`stats`) or via explicit ``start()``/``stop()`` (``stop``
    returns the :class:`KernelStats` and also stores it).  Probes may
    nest; each sees the totals delta of its own window.
    """

    def __init__(self) -> None:
        self.stats: Optional[KernelStats] = None
        self._snapshot: Optional[tuple] = None
        self._started_at: float = 0.0

    def start(self) -> "KernelProbe":
        if self._snapshot is not None:
            raise RuntimeError("probe already started")
        self._snapshot = KERNEL_TOTALS.snapshot()
        # Re-arm the high-water mark so the window reports its own peak;
        # stop() restores monotonicity for any enclosing observer.
        KERNEL_TOTALS.peak_queue_depth = 0
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> KernelStats:
        if self._snapshot is None:
            raise RuntimeError("probe not started")
        wall = time.perf_counter() - self._started_at
        processed0, scheduled0, reused0, peak0 = self._snapshot
        processed1, scheduled1, reused1, window_peak = KERNEL_TOTALS.snapshot()
        KERNEL_TOTALS.peak_queue_depth = max(window_peak, peak0)
        self._snapshot = None
        self.stats = KernelStats(
            events_processed=processed1 - processed0,
            events_scheduled=scheduled1 - scheduled0,
            peak_queue_depth=window_peak,
            wall_time_s=wall,
            events_reused=reused1 - reused0,
        )
        return self.stats

    def __enter__(self) -> "KernelProbe":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
