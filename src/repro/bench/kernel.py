"""Pure-kernel microbenchmark: how fast can the event loop go?

Exercises the four hot paths of :mod:`repro.sim` with a deterministic,
RNG-free workload whose event count is fixed by the preset:

* **timeout flood** — a large batch of bare :class:`Timeout` s with
  mixed delays and callbacks (heap push/pop + callback dispatch);
* **process churn** — many generator processes yielding timeouts (the
  ``Process._resume`` path every simulated actor takes);
* **event relay** — processes yielding already-succeeded events
  (settle/trigger dispatch without time advancing);
* **cancellation storm** — scheduled timeouts withdrawn via
  :meth:`Environment.cancel`, exercising tombstone discard in the loop.

Scaled so ``full`` is comparable to a fig5-scale experiment day (a few
million kernel events), ``quick`` runs in a couple of seconds, and
``smoke`` in well under a second.  ``repro bench`` records the result
as ``BENCH_kernel.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.bench.instrument import KernelProbe, KernelStats
from repro.sim import Environment

#: registry-safe name of the microbenchmark in ``repro bench`` output
KERNEL_BENCH_NAME = "kernel"
#: the same four-segment suite pinned to the calendar-queue scheduler
KERNEL_WHEEL_BENCH_NAME = "kernel-wheel"
#: drain-rate benchmark of the timeout-flood regime (binary heap)
FLOOD_BENCH_NAME = "flood"
#: the flood regime pinned to the calendar-queue scheduler
FLOOD_WHEEL_BENCH_NAME = "flood-wheel"


@dataclass(frozen=True)
class KernelScale:
    """Sizing of the four microbenchmark segments.

    ``rounds`` repeats the whole segment suite: experiment-scale runs
    process millions of events through a *bounded* resident queue (a
    full fig5 day never holds more than a few thousand pending events),
    so scaling up means more rounds, not a deeper heap — a deeper heap
    would benchmark cold memory, not the run loop.
    """

    flood_events: int
    churn_processes: int
    churn_steps: int
    relay_chains: int
    relay_length: int
    cancel_events: int
    rounds: int = 1

    @property
    def approx_events(self) -> int:
        return self.rounds * (
            self.flood_events
            + self.churn_processes * (self.churn_steps + 2)
            + self.relay_chains * (self.relay_length + 2)
            + self.cancel_events
        )


KERNEL_SCALES: Dict[str, KernelScale] = {
    # fig5-scale: ~3M events, like a full experiment day
    "full": KernelScale(
        flood_events=120_000,
        churn_processes=600,
        churn_steps=100,
        relay_chains=400,
        relay_length=150,
        cancel_events=60_000,
        rounds=10,
    ),
    "quick": KernelScale(
        flood_events=120_000,
        churn_processes=600,
        churn_steps=100,
        relay_chains=400,
        relay_length=150,
        cancel_events=60_000,
    ),
    # rounds=3: a sub-0.1s window makes events/sec swing well past the
    # regression gate's tolerance on shared runners; ~100k events is
    # still well under a second
    "smoke": KernelScale(
        flood_events=20_000,
        churn_processes=100,
        churn_steps=50,
        relay_chains=80,
        relay_length=60,
        cancel_events=10_000,
        rounds=3,
    ),
}


def timeout_flood(env: Environment, count: int) -> None:
    """Bare timeouts with spread-out delays and a no-op callback each."""
    sink = [].append
    timeout = env.timeout
    for i in range(count):
        timeout((i % 97) * 0.25, value=i).callbacks.append(sink)
    env.run()


def process_churn(env: Environment, processes: int, steps: int) -> None:
    """Generator processes repeatedly yielding timeouts."""

    def worker(env: Environment, delay: float, steps: int):
        for _ in range(steps):
            yield env.timeout(delay)

    for p in range(processes):
        env.process(worker(env, 0.5 + (p % 13) * 0.125, steps))
    env.run()


def event_relay(env: Environment, chains: int, length: int) -> None:
    """Processes yielding pre-succeeded events (no clock advancement)."""

    def relay(env: Environment, length: int):
        for i in range(length):
            event = env.event()
            event.succeed(i)
            yield event

    for _ in range(chains):
        env.process(relay(env, length))
    env.run()


def cancellation_storm(env: Environment, count: int) -> None:
    """Schedule ``count`` timeouts and cancel every other one."""
    timeouts = [env.timeout(1.0 + (i % 31) * 0.5) for i in range(count)]
    cancel = env.cancel
    for victim in timeouts[::2]:
        cancel(victim)
    env.run()


def run_kernel_bench(preset: str = "quick", queue: Optional[str] = None) -> KernelStats:
    """Run all four segments at *preset* scale under a fresh probe.

    ``queue`` pins the event-queue implementation for every environment
    the benchmark creates (``None`` follows the kernel default /
    ``REPRO_QUEUE``).  The recorded entries pin it explicitly —
    ``kernel`` to ``"heap"``, ``kernel-wheel`` to ``"wheel"`` — so both
    scheduler paths stay comparable across baselines regardless of the
    session default.
    """
    try:
        scale = KERNEL_SCALES[preset]
    except KeyError:
        raise KeyError(
            f"unknown kernel bench preset {preset!r}; "
            f"expected one of {sorted(KERNEL_SCALES)}"
        ) from None
    with KernelProbe() as probe:
        for _ in range(scale.rounds):
            timeout_flood(Environment(queue=queue), scale.flood_events)
            process_churn(
                Environment(queue=queue), scale.churn_processes, scale.churn_steps
            )
            event_relay(
                Environment(queue=queue), scale.relay_chains, scale.relay_length
            )
            cancellation_storm(Environment(queue=queue), scale.cancel_events)
    return probe.stats


# ----------------------------------------------------------------------
# timeout-flood regime: drain rate at fig5 resident depth
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FloodScale:
    """Sizing of the flood-regime drain benchmark.

    Unlike :class:`KernelScale` this regime deliberately builds a *deep*
    resident queue — ``resident_events`` pending timeouts, the depth a
    fig5-scale experiment day peaks at — because the drain rate at depth
    is exactly what separates the binary heap (``O(log n)`` per pop)
    from the calendar queue (amortized ``O(1)``).  The tombstone segment
    schedules ``tombstone_events`` and cancels every other one before
    draining, so the measurement covers tombstone discard at depth too.
    """

    resident_events: int
    tombstone_events: int
    rounds: int = 1

    @property
    def approx_events(self) -> int:
        # tombstoned entries are discarded, not processed
        return self.rounds * (self.resident_events + self.tombstone_events // 2)


FLOOD_SCALES: Dict[str, FloodScale] = {
    # fig5-scale resident depth, repeated for a multi-second window
    "full": FloodScale(resident_events=120_000, tombstone_events=120_000, rounds=10),
    "quick": FloodScale(resident_events=120_000, tombstone_events=120_000, rounds=2),
    "smoke": FloodScale(resident_events=20_000, tombstone_events=20_000, rounds=5),
}


def _combined_stats(windows: Sequence[KernelStats]) -> KernelStats:
    """Fold per-drain probe windows into one benchmark measurement."""
    return KernelStats(
        events_processed=sum(w.events_processed for w in windows),
        events_scheduled=sum(w.events_scheduled for w in windows),
        peak_queue_depth=max(w.peak_queue_depth for w in windows),
        wall_time_s=sum(w.wall_time_s for w in windows),
    )


def run_flood_bench(preset: str = "quick", queue: Optional[str] = None) -> KernelStats:
    """Measure pure drain throughput in the timeout-flood regime.

    Event *creation* cost is identical across queue implementations and
    already covered by the ``kernel`` entry, so here the probe windows
    wrap only ``env.run()``: the queue is flooded (and, in the second
    segment, half-tombstoned) first, then the drain is timed.
    """
    try:
        scale = FLOOD_SCALES[preset]
    except KeyError:
        raise KeyError(
            f"unknown flood bench preset {preset!r}; "
            f"expected one of {sorted(FLOOD_SCALES)}"
        ) from None
    windows = []
    for _ in range(scale.rounds):
        env = Environment(queue=queue)
        sink = [].append
        timeout = env.timeout
        for i in range(scale.resident_events):
            timeout((i % 97) * 0.25, value=i).callbacks.append(sink)
        with KernelProbe() as probe:
            env.run()
        windows.append(probe.stats)

        env = Environment(queue=queue)
        timeouts = [
            env.timeout(1.0 + (i % 31) * 0.5)
            for i in range(scale.tombstone_events)
        ]
        cancel = env.cancel
        for victim in timeouts[::2]:
            cancel(victim)
        with KernelProbe() as probe:
            env.run()
        windows.append(probe.stats)
    return _combined_stats(windows)
