"""Pure-kernel microbenchmark: how fast can the event loop go?

Exercises the four hot paths of :mod:`repro.sim` with a deterministic,
RNG-free workload whose event count is fixed by the preset:

* **timeout flood** — a large batch of bare :class:`Timeout` s with
  mixed delays and callbacks (heap push/pop + callback dispatch);
* **process churn** — many generator processes yielding timeouts (the
  ``Process._resume`` path every simulated actor takes);
* **event relay** — processes yielding already-succeeded events
  (settle/trigger dispatch without time advancing);
* **cancellation storm** — scheduled timeouts withdrawn via
  :meth:`Environment.cancel`, exercising tombstone discard in the loop.

Scaled so ``full`` is comparable to a fig5-scale experiment day (a few
million kernel events), ``quick`` runs in a couple of seconds, and
``smoke`` in well under a second.  ``repro bench`` records the result
as ``BENCH_kernel.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.bench.instrument import KernelProbe, KernelStats
from repro.sim import Environment

#: registry-safe name of the microbenchmark in ``repro bench`` output
KERNEL_BENCH_NAME = "kernel"
#: the same four-segment suite pinned to the calendar-queue scheduler
KERNEL_WHEEL_BENCH_NAME = "kernel-wheel"
#: drain-rate benchmark of the timeout-flood regime (binary heap)
FLOOD_BENCH_NAME = "flood"
#: the flood regime pinned to the calendar-queue scheduler
FLOOD_WHEEL_BENCH_NAME = "flood-wheel"
#: steady-state allocation-path benchmark: waves on one environment so
#: every wave after the first is served from the event freelist
TIMEOUT_FLOOD_BENCH_NAME = "timeout-flood"
#: the four-segment suite under the hot-loop build a fresh interpreter
#: selects (the mypyc extension when built, the interpreted floor here)
KERNEL_COMPILED_BENCH_NAME = "kernel-compiled"


@dataclass(frozen=True)
class KernelScale:
    """Sizing of the four microbenchmark segments.

    ``rounds`` repeats the whole segment suite: experiment-scale runs
    process millions of events through a *bounded* resident queue (a
    full fig5 day never holds more than a few thousand pending events),
    so scaling up means more rounds, not a deeper heap — a deeper heap
    would benchmark cold memory, not the run loop.
    """

    flood_events: int
    churn_processes: int
    churn_steps: int
    relay_chains: int
    relay_length: int
    cancel_events: int
    rounds: int = 1

    @property
    def approx_events(self) -> int:
        return self.rounds * (
            self.flood_events
            + self.churn_processes * (self.churn_steps + 2)
            + self.relay_chains * (self.relay_length + 2)
            + self.cancel_events
        )


KERNEL_SCALES: Dict[str, KernelScale] = {
    # fig5-scale: ~3M events, like a full experiment day
    "full": KernelScale(
        flood_events=120_000,
        churn_processes=600,
        churn_steps=100,
        relay_chains=400,
        relay_length=150,
        cancel_events=60_000,
        rounds=10,
    ),
    "quick": KernelScale(
        flood_events=120_000,
        churn_processes=600,
        churn_steps=100,
        relay_chains=400,
        relay_length=150,
        cancel_events=60_000,
    ),
    # rounds=3: a sub-0.1s window makes events/sec swing well past the
    # regression gate's tolerance on shared runners; ~100k events is
    # still well under a second
    "smoke": KernelScale(
        flood_events=20_000,
        churn_processes=100,
        churn_steps=50,
        relay_chains=80,
        relay_length=60,
        cancel_events=10_000,
        rounds=3,
    ),
}


def timeout_flood(env: Environment, count: int) -> None:
    """Bare timeouts with spread-out delays and a no-op callback each."""
    sink = [].append
    timeout = env.timeout
    for i in range(count):
        timeout((i % 97) * 0.25, value=i).callbacks.append(sink)
    env.run()


def process_churn(env: Environment, processes: int, steps: int) -> None:
    """Generator processes repeatedly yielding timeouts."""

    def worker(env: Environment, delay: float, steps: int):
        for _ in range(steps):
            yield env.timeout(delay)

    for p in range(processes):
        env.process(worker(env, 0.5 + (p % 13) * 0.125, steps))
    env.run()


def event_relay(env: Environment, chains: int, length: int) -> None:
    """Processes yielding pre-succeeded events (no clock advancement)."""

    def relay(env: Environment, length: int):
        for i in range(length):
            event = env.event()
            event.succeed(i)
            yield event

    for _ in range(chains):
        env.process(relay(env, length))
    env.run()


def cancellation_storm(env: Environment, count: int) -> None:
    """Schedule ``count`` timeouts and cancel every other one."""
    timeouts = [env.timeout(1.0 + (i % 31) * 0.5) for i in range(count)]
    cancel = env.cancel
    for victim in timeouts[::2]:
        cancel(victim)
    env.run()


def run_kernel_bench(preset: str = "quick", queue: Optional[str] = None) -> KernelStats:
    """Run all four segments at *preset* scale under a fresh probe.

    ``queue`` pins the event-queue implementation for every environment
    the benchmark creates (``None`` follows the kernel default /
    ``REPRO_QUEUE``).  The recorded entries pin it explicitly —
    ``kernel`` to ``"heap"``, ``kernel-wheel`` to ``"wheel"`` — so both
    scheduler paths stay comparable across baselines regardless of the
    session default.
    """
    try:
        scale = KERNEL_SCALES[preset]
    except KeyError:
        raise KeyError(
            f"unknown kernel bench preset {preset!r}; "
            f"expected one of {sorted(KERNEL_SCALES)}"
        ) from None
    with KernelProbe() as probe:
        for _ in range(scale.rounds):
            timeout_flood(Environment(queue=queue), scale.flood_events)
            process_churn(
                Environment(queue=queue), scale.churn_processes, scale.churn_steps
            )
            event_relay(
                Environment(queue=queue), scale.relay_chains, scale.relay_length
            )
            cancellation_storm(Environment(queue=queue), scale.cancel_events)
    return probe.stats


# ----------------------------------------------------------------------
# timeout-flood regime: drain rate at fig5 resident depth
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FloodScale:
    """Sizing of the flood-regime drain benchmark.

    Unlike :class:`KernelScale` this regime deliberately builds a *deep*
    resident queue — ``resident_events`` pending timeouts, the depth a
    fig5-scale experiment day peaks at — because the drain rate at depth
    is exactly what separates the binary heap (``O(log n)`` per pop)
    from the calendar queue (amortized ``O(1)``).  The tombstone segment
    schedules ``tombstone_events`` and cancels every other one before
    draining, so the measurement covers tombstone discard at depth too.
    """

    resident_events: int
    tombstone_events: int
    rounds: int = 1

    @property
    def approx_events(self) -> int:
        # tombstoned entries are discarded, not processed
        return self.rounds * (self.resident_events + self.tombstone_events // 2)


FLOOD_SCALES: Dict[str, FloodScale] = {
    # fig5-scale resident depth, repeated for a multi-second window
    "full": FloodScale(resident_events=120_000, tombstone_events=120_000, rounds=10),
    "quick": FloodScale(resident_events=120_000, tombstone_events=120_000, rounds=2),
    "smoke": FloodScale(resident_events=20_000, tombstone_events=20_000, rounds=5),
}


def _combined_stats(windows: Sequence[KernelStats]) -> KernelStats:
    """Fold per-drain probe windows into one benchmark measurement."""
    return KernelStats(
        events_processed=sum(w.events_processed for w in windows),
        events_scheduled=sum(w.events_scheduled for w in windows),
        peak_queue_depth=max(w.peak_queue_depth for w in windows),
        wall_time_s=sum(w.wall_time_s for w in windows),
        events_reused=sum(w.events_reused for w in windows),
    )


def run_flood_bench(preset: str = "quick", queue: Optional[str] = None) -> KernelStats:
    """Measure pure drain throughput in the timeout-flood regime.

    Event *creation* cost is identical across queue implementations and
    already covered by the ``kernel`` entry, so here the probe windows
    wrap only ``env.run()``: the queue is flooded (and, in the second
    segment, half-tombstoned) first, then the drain is timed.
    """
    try:
        scale = FLOOD_SCALES[preset]
    except KeyError:
        raise KeyError(
            f"unknown flood bench preset {preset!r}; "
            f"expected one of {sorted(FLOOD_SCALES)}"
        ) from None
    windows = []
    for _ in range(scale.rounds):
        env = Environment(queue=queue)
        sink = [].append
        timeout = env.timeout
        for i in range(scale.resident_events):
            timeout((i % 97) * 0.25, value=i).callbacks.append(sink)
        with KernelProbe() as probe:
            env.run()
        windows.append(probe.stats)

        env = Environment(queue=queue)
        timeouts = [
            env.timeout(1.0 + (i % 31) * 0.5)
            for i in range(scale.tombstone_events)
        ]
        cancel = env.cancel
        for victim in timeouts[::2]:
            cancel(victim)
        with KernelProbe() as probe:
            env.run()
        windows.append(probe.stats)
    return _combined_stats(windows)


# ----------------------------------------------------------------------
# timeout-flood regime: steady-state allocation path (freelist hot)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class WaveScale:
    """Sizing of the steady-state allocation benchmark.

    ``wave_events`` stays at (just under) the freelist's ``POOL_CAP`` so
    a full wave's worth of Timeout objects survives each drain on the
    pool: from the second wave on, *every* creation is a recycle rather
    than an allocation.  Scaling up means more waves — a bigger wave
    would overflow the pool and benchmark the allocator again, which is
    the ``flood`` entry's job.
    """

    wave_events: int
    waves: int

    @property
    def approx_events(self) -> int:
        return self.wave_events * self.waves


WAVE_SCALES: Dict[str, WaveScale] = {
    # fig5-scale total volume through a single long-lived environment
    "full": WaveScale(wave_events=4_000, waves=750),
    "quick": WaveScale(wave_events=4_000, waves=100),
    "smoke": WaveScale(wave_events=4_000, waves=25),
}


def run_timeout_flood_bench(
    preset: str = "quick", queue: Optional[str] = None
) -> KernelStats:
    """Measure create+drain throughput with the event freelist hot.

    Unlike ``flood`` (a fresh environment per drain — every Timeout is a
    real allocation) this runs every wave on *one* environment, so waves
    after the first draw their objects from the pool.  The probe window
    covers creation too: the allocation diet is exactly what this entry
    gates, and ``events_reused`` in the record shows the pool working
    (steady state approaches ``(waves-1)/waves`` of all events).
    """
    try:
        scale = WAVE_SCALES[preset]
    except KeyError:
        raise KeyError(
            f"unknown timeout-flood bench preset {preset!r}; "
            f"expected one of {sorted(WAVE_SCALES)}"
        ) from None
    env = Environment(queue=queue)
    with KernelProbe() as probe:
        # the callback must not retain the event ([].append would): a
        # retained event fails the recycler's refcount guard by design
        sink = _discard
        timeout = env.timeout
        for _ in range(scale.waves):
            for i in range(scale.wave_events):
                timeout((i % 97) * 0.25, value=i).callbacks.append(sink)
            env.run()
    return probe.stats


def _discard(event: object) -> None:
    """Callback-dispatch cost without keeping a reference to the event."""


# ----------------------------------------------------------------------
# compiled-loop entry: the suite under a fresh interpreter's loop choice
# ----------------------------------------------------------------------

_CHILD_BENCH = """
import json, sys
from repro.bench.kernel import run_kernel_bench
from repro.sim import COMPILED_LOOP
stats = run_kernel_bench(sys.argv[1], queue="heap")
print(json.dumps({"compiled": COMPILED_LOOP, **stats.as_dict()}))
"""


def run_kernel_compiled_bench(preset: str = "quick") -> KernelStats:
    """The four-segment suite under the hot-loop build of a fresh process.

    Hot-loop selection is process-global and fixed at import, so this
    entry runs the suite in a subprocess with ``REPRO_COMPILED``
    cleared: the child picks up a mypyc build of ``repro.sim._hotloop``
    when one is on the path, and the interpreted loop otherwise.  The
    committed baseline number is therefore the *interpreted floor* —
    wherever a compiled build is present (CI's compiled-kernel leg, a
    developer who ran ``tools/build_compiled.py``) the same entry
    measures the compiled loop, and the regression gate enforces that
    compilation never makes the kernel slower than interpretation.
    Wall time is measured inside the child, so process startup does not
    pollute the figure.
    """
    import json
    import os
    import subprocess
    import sys

    if preset not in KERNEL_SCALES:
        raise KeyError(
            f"unknown kernel bench preset {preset!r}; "
            f"expected one of {sorted(KERNEL_SCALES)}"
        )
    child_env = dict(os.environ)
    child_env.pop("REPRO_COMPILED", None)
    result = subprocess.run(
        [sys.executable, "-c", _CHILD_BENCH, preset],
        capture_output=True, text=True, env=child_env, check=True,
    )
    payload = json.loads(result.stdout)
    return KernelStats(
        events_processed=int(payload["events_processed"]),
        events_scheduled=int(payload["events_scheduled"]),
        peak_queue_depth=int(payload["peak_queue_depth"]),
        wall_time_s=float(payload["wall_time_s"]),
        events_reused=int(payload["events_reused"]),
    )
