"""Command-line interface: ``python -m repro <scenario> [options]``.

Every subcommand is generated from the scenario registry
(:data:`repro.scenarios.REGISTRY`) — the one-command paths behind every
number in EXPERIMENTS.md.  Besides one subcommand per registered
scenario there are two meta commands::

    list       catalogue of registered scenarios and their parameters
    sweep      parameter-grid x seed-replication sweeps, optionally in
               parallel worker processes (see ``repro sweep --help``)
    matrix     ranked supply-policy x workload x cluster-shape
               comparison via the sweep executor (``repro matrix``)
    bench      kernel + scenario throughput benchmarks with schema'd
               ``BENCH_<name>.json`` artifacts and a baseline-compare
               regression gate (see ``repro bench --help``)
    run        run a declarative YAML/JSON config: either a registered
               scenario with overrides, or an arbitrary composed stack
               (cluster x supply x workload x probes) with no Python
               module at all — see ``repro.api`` and examples/configs/
    compose    catalogue of the composable-stack components the config
               path can assemble (``repro compose --list``)

Single runs print the scenario's rendered table/figure data (identical
to the historical per-experiment output) and can persist their flat
metrics with ``--json``/``--csv``.  Sweeps print a deterministic JSON
aggregate (per-cell mean/stdev/CI across seeds) on stdout.

Examples::

    repro day --model var --hours 6
    repro list
    repro sweep day --grid model=fib,var nodes=150,300 --seeds 8 -j 8
    repro sweep fig3 --seeds 16 -j 4 --csv fig3.csv
    repro bench --preset smoke
    repro bench kernel --preset quick --repeats 5 --write-baseline BENCH_baseline.json
    repro bench --preset smoke --against BENCH_baseline.json --max-regression 10%
    repro run --config examples/configs/fib_loadbalancer.yaml
    repro run --config scenario.yaml --json out.json
    repro compose --list
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Any, Dict, List, Optional

from repro.scenarios import (
    REGISTRY,
    SCALE_NAMES,
    Scenario,
    SweepExecutor,
    SweepSpec,
    load_builtin,
)

#: argparse dests that are CLI plumbing, not scenario parameters
_CONTROL_DESTS = ("command", "scale", "json_path", "csv_path")


def _flag(name: str) -> str:
    return "--" + name.replace("_", "-")


def _describe_seed(scenario: Scenario) -> str:
    if callable(scenario.seed):
        return scenario.seed_help or "scenario-derived default"
    return str(scenario.seed)


def _add_scenario_parser(sub, scenario: Scenario) -> None:
    parser = sub.add_parser(scenario.name, help=scenario.help)
    for param in scenario.params:
        kwargs: Dict[str, Any] = {
            "default": argparse.SUPPRESS,
            "help": f"{param.help or param.name} (default: {param.default})",
        }
        if param.type is bool:
            kwargs["action"] = "store_true"
        else:
            kwargs["type"] = param.type
            if param.choices is not None:
                kwargs["choices"] = param.choices
        parser.add_argument(_flag(param.name), **kwargs)
    parser.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS,
        help=f"root seed (default: {_describe_seed(scenario)})",
    )
    parser.add_argument(
        "--scale", choices=SCALE_NAMES, default="full",
        help="scale preset for parameter defaults (default: full — the paper)",
    )
    parser.add_argument("--json", dest="json_path", metavar="PATH",
                        help="also write run metrics as JSON")
    parser.add_argument("--csv", dest="csv_path", metavar="PATH",
                        help="also write run metrics as CSV")


def _add_sweep_parser(sub) -> None:
    parser = sub.add_parser(
        "sweep", help="grid x seed sweep over one scenario",
        description="Expand a parameter grid times a seed-replication "
                    "count, run every cell (in parallel with -j), and "
                    "print the aggregated metrics as JSON.",
    )
    parser.add_argument("scenario", help="registered scenario to sweep")
    parser.add_argument(
        "--grid", nargs="*", default=[], metavar="PARAM=V1,V2",
        help="parameters to sweep, e.g. model=fib,var nodes=150,300",
    )
    parser.add_argument(
        "--set", nargs="*", default=[], metavar="PARAM=VALUE", dest="fixed",
        help="fixed overrides applied to every cell, e.g. no-load=true",
    )
    parser.add_argument("--seeds", type=int, default=1,
                        help="seed replications per grid cell")
    parser.add_argument("--base-seed", type=int, default=None,
                        help="entropy root for per-run seed derivation "
                             "(default: the scenario's default seed)")
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="worker processes (1 = serial)")
    parser.add_argument("--scale", choices=SCALE_NAMES, default="quick",
                        help="scale preset (default: quick)")
    parser.add_argument("--table", action="store_true",
                        help="print a human-readable table instead of JSON")
    parser.add_argument("--json", dest="json_path", metavar="PATH",
                        help="also write the JSON aggregate to PATH")
    parser.add_argument("--csv", dest="csv_path", metavar="PATH",
                        help="also write a per-metric CSV to PATH")


def _add_bench_parser(sub) -> None:
    parser = sub.add_parser(
        "bench", help="kernel + scenario throughput benchmarks",
        description="Run the pure-kernel microbenchmark and/or registered "
                    "scenarios under the kernel probe, write one "
                    "BENCH_<name>.json per benchmark, and optionally gate "
                    "against a committed baseline.",
    )
    parser.add_argument(
        "names", nargs="*", metavar="NAME",
        help="benchmarks to run: 'kernel' and/or scenario names "
             "(default: kernel + every registered scenario)",
    )
    parser.add_argument("--preset", choices=SCALE_NAMES, default="quick",
                        help="scale preset (default: quick)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="repeats per benchmark; the median-throughput repeat is recorded")
    parser.add_argument("--out-dir", default=".", metavar="DIR",
                        help="directory for BENCH_<name>.json artifacts")
    parser.add_argument("--against", metavar="PATH",
                        help="baseline file to compare events/sec against")
    parser.add_argument("--max-regression", default="10%", metavar="PCT",
                        help="tolerated events/sec drop vs baseline "
                             "(default: 10%%)")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="also write all records as a combined baseline")
    parser.add_argument("--profile", nargs="?", const=25, type=int,
                        metavar="N",
                        help="instead of recording, run each named benchmark "
                             "under cProfile and print the top-N functions "
                             "by internal time (default N: 25)")


def _add_matrix_parser(sub) -> None:
    parser = sub.add_parser(
        "matrix", help="ranked supply-policy x workload comparison",
        description="Sweep supply policies x workloads x cluster shapes "
                    "in parallel via the sweep executor and print a "
                    "ranked comparison (harvest, batch slowdown, "
                    "cold-start rate, pilot churn).  A front door over "
                    "the registered 'supply_matrix' scenario.",
    )
    parser.add_argument("--policies", metavar="P1,P2,...",
                        default=argparse.SUPPRESS,
                        help="supply policies to compare "
                             "(default: every registered policy)")
    parser.add_argument("--workloads", metavar="W1,W2,...",
                        default=argparse.SUPPRESS,
                        help="FaaS workloads to drive (default: gatling,sebs)")
    parser.add_argument("--shapes", metavar="N1,N2,...",
                        default=argparse.SUPPRESS,
                        help="cluster sizes to sweep (default: per scale)")
    parser.add_argument("--hours", type=float, default=argparse.SUPPRESS,
                        help="per-cell experiment length in hours")
    parser.add_argument("--qps", type=float, default=argparse.SUPPRESS,
                        help="per-cell load-client request rate")
    parser.add_argument("--seeds", type=int, default=argparse.SUPPRESS,
                        help="seed replications per cell (default: 1)")
    parser.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                        help="entropy root for per-run seed derivation")
    parser.add_argument("-j", "--jobs", type=int, default=4,
                        help="worker processes for the sweep (default: 4)")
    parser.add_argument("--scale", choices=SCALE_NAMES, default="quick",
                        help="scale preset (default: quick)")
    parser.add_argument("--json", dest="json_path", metavar="PATH",
                        help="also write the ranked matrix as JSON")
    parser.add_argument("--csv", dest="csv_path", metavar="PATH",
                        help="also write the ranked matrix as CSV")


def _add_run_parser(sub) -> None:
    parser = sub.add_parser(
        "run", help="run a declarative YAML/JSON config",
        description="Run a config file: scenario mode ({scenario, scale, "
                    "seed, overrides}) runs a registered scenario exactly "
                    "like its subcommand; stack mode ({name, seed, horizon, "
                    "stack: {cluster, supply, middleware, workloads, "
                    "probes}}) composes an arbitrary simulation from the "
                    "component registry with no new Python code.",
    )
    parser.add_argument("--config", required=True, metavar="PATH",
                        help="YAML (or JSON) config file")
    parser.add_argument("--clusters", type=int, default=None, metavar="N",
                        help="stack-mode convenience: replicate the config's "
                             "base cluster into an N-member federation "
                             "(members get derived cluster ids and "
                             "independent random substreams)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="stack-mode: run the federation sharded, one "
                             "kernel process per member (N must equal the "
                             "member count; a single-cluster config is "
                             "first replicated into N members, like "
                             "--clusters N)")
    parser.add_argument("--sync-window", type=float, default=60.0,
                        metavar="SECONDS",
                        help="sharded runs: conservative synchronization "
                             "window in simulated seconds (default: 60)")
    parser.add_argument("--json", dest="json_path", metavar="PATH",
                        help="also write run metrics as JSON")


def _add_compose_parser(sub) -> None:
    parser = sub.add_parser(
        "compose", help="composable-stack component catalogue",
        description="Inspect the component registry behind `repro run "
                    "--config` and the repro.api Stack builder.",
    )
    parser.add_argument("--list", action="store_true", dest="list_components",
                        help="list every registered component and its options")


def build_parser() -> argparse.ArgumentParser:
    load_builtin()
    parser = argparse.ArgumentParser(
        prog="repro", description="HPC-Whisk reproduction experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for _name, scenario in REGISTRY.items():
        _add_scenario_parser(sub, scenario)
    sub.add_parser("list", help="catalogue of registered scenarios")
    _add_sweep_parser(sub)
    _add_matrix_parser(sub)
    _add_bench_parser(sub)
    _add_run_parser(sub)
    _add_compose_parser(sub)
    return parser


def _render_list() -> str:
    lines = ["registered scenarios (see EXPERIMENTS.md):", ""]
    for name, scenario in REGISTRY.items():
        lines.append(f"{name:<10} {scenario.help}")
        lines.append(f"{'':<10}   seed {_describe_seed(scenario)}"
                     f", workload {scenario.workload or '-'}")
        for param in scenario.params:
            quick = param.scale.get("quick")
            scale_note = f", quick {quick}" if quick is not None else ""
            lines.append(
                f"{'':<10}   {_flag(param.name):<14} "
                f"{param.type.__name__:<6} default {param.default}{scale_note}"
            )
    return "\n".join(lines)


def _parse_assignments(scenario: Scenario, pairs: List[str], multi: bool) -> Dict[str, Any]:
    parsed: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"expected PARAM=VALUE, got {pair!r}")
        name, _eq, raw = pair.partition("=")
        name = name.replace("-", "_")
        param = scenario.param(name)  # raises KeyError for unknown params
        values = [param.coerce(token) for token in raw.split(",")]
        parsed[name] = values if multi else values[-1]
    return parsed


def _persist(args, payload_json: str, payload_csv: str) -> None:
    if getattr(args, "json_path", None):
        with open(args.json_path, "w") as handle:
            handle.write(payload_json + "\n")
    if getattr(args, "csv_path", None):
        with open(args.csv_path, "w") as handle:
            handle.write(payload_csv)


def _run_scenario(args) -> int:
    overrides = {
        key: value for key, value in vars(args).items()
        if key not in _CONTROL_DESTS
    }
    result = REGISTRY.run(args.command, overrides, scale=args.scale)
    print(result.text)
    run = result.to_dict()
    csv_lines = ["scenario,scale,seed,metric,value"]
    csv_lines += [
        f"{run['scenario']},{run['scale']},{run['seed']},{name},{value!r}"
        for name, value in run["metrics"].items()
    ]
    _persist(args, result.to_json(), "\n".join(csv_lines) + "\n")
    return 0


def _run_bench(args) -> int:
    from repro.bench import (
        bench_names,
        compare_records,
        load_baseline,
        parse_regression,
        profile_bench,
        run_bench,
        write_baseline,
        write_record,
    )

    try:
        threshold = parse_regression(args.max_regression)
        known = bench_names()
        names = list(args.names) or known
        unknown = [name for name in names if name not in known]
        if unknown:
            raise KeyError(f"unknown benchmark(s) {unknown}; known: {known}")
        if args.repeats < 1:
            raise ValueError("repeats must be >= 1")
        if args.profile is not None and args.profile < 1:
            raise ValueError("--profile N must be >= 1")
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else error
        raise SystemExit(f"bench: {message}")

    if args.profile is not None:
        for name in names:
            print(f"=== profile: {name} (preset {args.preset}, "
                  f"top {args.profile} by internal time) ===")
            print(profile_bench(name, preset=args.preset, top=args.profile))
        return 0

    records = {}
    for name in names:
        record = run_bench(name, preset=args.preset, repeats=args.repeats)
        path = write_record(record, args.out_dir)
        stats = record.stats
        print(
            f"{name:<10} {stats.events_processed:>10} events  "
            f"{stats.wall_time_s:>8.3f}s  {stats.events_per_sec:>12,.0f} ev/s  "
            f"peak queue {stats.peak_queue_depth}  -> {path}"
        )
        records[name] = record

    if args.write_baseline:
        path = write_baseline(list(records.values()), args.write_baseline,
                              preset=args.preset)
        print(f"baseline ({len(records)} entr{'y' if len(records) == 1 else 'ies'}) -> {path}")

    if args.against:
        try:
            baseline = load_baseline(args.against)
            comparisons = compare_records(records, baseline, threshold)
        except (OSError, ValueError) as error:
            raise SystemExit(f"bench: {error}")
        if not comparisons:
            # an --against gate that compared nothing must not pass green
            print(f"bench: no benchmarks in common with {args.against}; "
                  "the gate compared nothing", file=sys.stderr)
            return 1
        failed = False
        for comparison in comparisons:
            verdict = "REGRESSED" if comparison.regressed else "ok"
            print(
                f"{comparison.name:<10} baseline {comparison.baseline_eps:>12,.0f} ev/s  "
                f"now {comparison.current_eps:>12,.0f} ev/s  "
                f"{comparison.delta:+.1%}  {verdict}"
            )
            failed = failed or comparison.regressed
        if failed:
            print(
                f"bench: events/sec regression beyond "
                f"{threshold:.0%} vs {args.against}",
                file=sys.stderr,
            )
            return 1
    return 0


def _run_matrix(args) -> int:
    from repro.experiments.supply import parse_matrix_lists

    overrides = {
        key: value for key, value in vars(args).items()
        if key not in _CONTROL_DESTS and key != "jobs"
    }
    overrides["jobs"] = args.jobs
    try:
        spec = REGISTRY.build_spec("supply_matrix", overrides, scale=args.scale)
        parse_matrix_lists(spec.params)  # validate names before running
        if int(spec.params["seeds"]) < 1:
            raise ValueError("seeds must be >= 1")
    except (KeyError, ValueError) as error:
        # usage errors only — crashes inside matrix cells propagate
        message = error.args[0] if error.args else error
        raise SystemExit(f"matrix: {message}")
    result = REGISTRY.run_spec(spec)
    print(result.text)
    matrix = result.artifacts["matrix"]
    _persist(args, matrix.to_json(), matrix.to_csv())
    return 0


def _replicate_clusters(stack, count: int):
    """``--clusters N``: the base cluster spec, N times, with derived ids.

    Each member gets ``<base id or 'c'><index>`` as its cluster id; the
    deploy layer derives independent per-member random substreams from
    those ids, so replicas are statistically distinct but the whole
    federation stays reproducible from the one stack seed.
    """
    import dataclasses

    from repro.api import ClusterSpec

    if count < 1:
        raise ValueError("--clusters must be >= 1")
    if len(stack.clusters) > 1:
        raise ValueError(
            "--clusters replicates a single base cluster; this config "
            f"already declares {len(stack.clusters)} heterogeneous members "
            "in its 'clusters' list — edit the config instead"
        )
    base = stack.member_clusters()[0]
    prefix = base.options.get("cluster_id") or "c"
    members = tuple(
        ClusterSpec(
            base.name, **{**base.options, "cluster_id": f"{prefix}{index}"}
        )
        for index in range(count)
    )
    return dataclasses.replace(stack, clusters=members)


def _run_config(args) -> int:
    from repro.api import config_mode, load_config_file, stack_from_config

    spec = stack = None
    try:
        config = load_config_file(args.config)
        mode = config_mode(config)
        if mode == "scenario":
            if args.clusters is not None:
                raise ValueError(
                    "--clusters applies to stack-mode configs only (a "
                    "scenario config wires its own cluster layout)"
                )
            if args.shards is not None:
                raise ValueError(
                    "--shards applies to stack-mode configs only (a "
                    "scenario config wires its own cluster layout)"
                )
            spec = REGISTRY.spec_from_config(config)
        else:
            stack = stack_from_config(config)
            if args.clusters is not None:
                stack = _replicate_clusters(stack, args.clusters)
                stack.validate()
            if args.shards is not None:
                if args.shards < 1:
                    raise ValueError("--shards must be >= 1")
                if args.clusters is None and len(stack.member_clusters()) == 1:
                    # single-cluster config: --shards N doubles as
                    # --clusters N (the shard boundary is the member
                    # boundary, so members must exist to shard over)
                    stack = _replicate_clusters(stack, args.shards)
                    stack.validate()
    except OSError as error:
        raise SystemExit(f"run: {error}")
    except (KeyError, ValueError, TypeError) as error:
        # usage errors only — resolution/validation happens inside the
        # try; crashes inside scenario/stack code below propagate
        message = error.args[0] if error.args else error
        raise SystemExit(f"run: {message}")
    if spec is not None:
        result = REGISTRY.run_spec(spec)
        print(result.text)  # pre-rendered, identical to the subcommand
    elif args.shards is not None:
        try:
            result = stack.run_sharded(
                shards=args.shards, sync_window=args.sync_window
            )
        except ValueError as error:
            message = error.args[0] if error.args else error
            raise SystemExit(f"run: {message}")
        print(result.render())
    else:
        result = stack.run()
        print(result.render())  # rendered from the merged probe metrics
    if getattr(args, "json_path", None):
        with open(args.json_path, "w") as handle:
            handle.write(result.to_json() + "\n")
    return 0


def _format_default(value) -> str:
    """Human-readable component-option default for ``compose --list``.

    Nested values render as their *shape*, not their repr: dataclass
    instances as ``ClassName(...)``, enums as their value, and
    lists/tuples of specs as ``[ElementType]`` — so list-valued options
    like a federation's ``clusters: [ClusterSpec]`` stay one line.
    Small all-scalar dataclasses spell their fields out — a supply
    policy's nested controller gains (``PidGains(kp=…, ki=…, kd=…)``)
    are tuning surface, and hiding them behind ``(...)`` made
    ``compose --list`` useless for exactly the components it should
    document best.  Bigger or nested dataclasses (``SlurmConfig``) keep
    the one-line ``ClassName(...)`` shape.
    """
    import dataclasses
    import enum

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = dataclasses.fields(value)
        values = [getattr(value, f.name) for f in fields]
        if len(fields) <= 6 and all(
            v is None or isinstance(v, (str, int, float, bool)) for v in values
        ):
            rendered = ", ".join(
                f"{f.name}={v!r}" for f, v in zip(fields, values)
            )
            return f"{type(value).__name__}({rendered})"
        return f"{type(value).__name__}(...)"
    if isinstance(value, enum.Enum):
        return repr(value.value)
    if isinstance(value, (list, tuple)):
        if not value:
            return "[]"
        kinds = {type(item).__name__ for item in value}
        if len(kinds) == 1 and not isinstance(value[0], (str, int, float, bool)):
            return f"[{kinds.pop()}]"
        return repr(list(value))
    return repr(value)


def _render_stack_layout() -> List[str]:
    """The top-level stack-section schema, nested fields spelled out."""
    return [
        "stack layout (`stack:` section keys / repro.api.Stack fields):",
        f"  {'cluster':<18} ClusterSpec — the single-cluster form",
        f"  {'clusters':<18} [ClusterSpec] — federation members "
        "(give each a cluster_id)",
        f"  {'supply':<18} SupplySpec — one pilot fleet per member",
        f"  {'middleware':<18} MiddlewareSpec | none",
        f"  {'router':<18} RouterSpec — cross-cluster policy "
        "(federations; omit for flat routing)",
        f"  {'workloads':<18} [WorkloadSpec]",
        f"  {'probes':<18} [ProbeSpec]",
    ]


def _render_compose() -> str:
    from repro.api import COMPONENTS, load_builtin_components
    from repro.api.registry import KINDS

    load_builtin_components()
    lines = [
        "composable stack components (repro.api / `repro run --config`;",
        'see the "Composing scenarios" section of EXPERIMENTS.md):',
        "",
    ]
    lines.extend(_render_stack_layout())
    for kind in KINDS:
        lines.append("")
        lines.append(f"{kind}:")
        for comp in COMPONENTS.items(kind):
            lines.append(f"  {comp.name:<18} {comp.help}")
            for name, default in comp.parameters():
                shown = (
                    "required"
                    if default is inspect.Parameter.empty
                    else f"default {_format_default(default)}"
                )
                lines.append(f"  {'':<18}   {name:<18} {shown}")
    return "\n".join(lines)


def _run_sweep(args) -> int:
    executor = SweepExecutor()
    try:
        scenario = REGISTRY.get(args.scenario)
        grid = _parse_assignments(scenario, args.grid, multi=True)
        fixed = _parse_assignments(scenario, args.fixed, multi=False)
        spec = SweepSpec(
            scenario=scenario.name, grid=grid, fixed=fixed, seeds=args.seeds,
            base_seed=args.base_seed, scale=args.scale, jobs=args.jobs,
        )
        if spec.seeds < 1:
            raise ValueError("seeds must be >= 1")
        executor.plan(spec)  # validate grid/overrides before running
    except (KeyError, ValueError) as error:
        # usage errors only — crashes inside scenario code propagate
        message = error.args[0] if error.args else error
        raise SystemExit(f"sweep: {message}")
    result = executor.run(spec)
    runs = sum(len(cell.runs) for cell in result.cells)
    print(
        f"sweep {scenario.name}: {len(result.cells)} cell(s) x {args.seeds} "
        f"seed(s) = {runs} run(s) in {result.elapsed:.1f}s "
        f"across {len(result.worker_pids)} worker(s)",
        file=sys.stderr,
    )
    if args.table:
        from repro.analysis.report import render_sweep

        print(render_sweep(result))
    else:
        print(result.to_json())
    _persist(args, result.to_json(), result.to_csv())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print(_render_list())
        return 0
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "matrix":
        return _run_matrix(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "run":
        return _run_config(args)
    if args.command == "compose":
        if not args.list_components:
            raise SystemExit(
                "compose: nothing to do; use `repro compose --list` for the "
                "component catalogue"
            )
        print(_render_compose())
        return 0
    return _run_scenario(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
