"""Command-line interface: ``python -m repro <experiment> [options]``.

Runs any packaged experiment and prints its rendered table/figure data —
the one-command paths behind every number in EXPERIMENTS.md.

Subcommands::

    fig1       idleness analysis (Fig 1a/1b/1c)
    fig2       job population CDFs (Fig 2)
    fig3       the 5-node example (Fig 3)
    table1     job-length-set simulation (Table I)
    day        a full experiment day (Tables II/III, Figs 5/6, Sec. V-C)
    fig7       SeBS vs Lambda (Fig 7)
    optimize   length-set optimization (Sec. IV-B)
    longterm   multi-week pattern study (future work)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _add_common(parser: argparse.ArgumentParser, seed: int) -> None:
    parser.add_argument("--seed", type=int, default=seed)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="HPC-Whisk reproduction experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig1", help="idleness analysis")
    _add_common(p, 2022)
    p.add_argument("--days", type=float, default=7.0)
    p.add_argument("--nodes", type=int, default=2239)
    p.add_argument("--plot", action="store_true", help="render ASCII figures")

    p = sub.add_parser("fig2", help="job population CDFs")
    _add_common(p, 2022)
    p.add_argument("--count", type=int, default=74000)

    p = sub.add_parser("fig3", help="5-node example")
    _add_common(p, 7)

    p = sub.add_parser("table1", help="job-length-set simulation")
    _add_common(p, 2022)
    p.add_argument("--days", type=float, default=7.0)
    p.add_argument("--nodes", type=int, default=2239)

    p = sub.add_parser("day", help="experiment day (Tables II/III)")
    p.add_argument("--model", choices=("fib", "var"), default="fib")
    p.add_argument("--hours", type=float, default=24.0)
    p.add_argument("--nodes", type=int, default=300)
    p.add_argument("--no-load", action="store_true")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--plot", action="store_true")

    p = sub.add_parser("fig7", help="SeBS vs Lambda")
    _add_common(p, 2022)
    p.add_argument("--invocations", type=int, default=50)
    p.add_argument("--graph-size", type=int, default=40000)

    p = sub.add_parser("optimize", help="length-set optimization")
    _add_common(p, 2022)
    p.add_argument("--days", type=float, default=2.0)
    p.add_argument("--nodes", type=int, default=512)

    p = sub.add_parser("longterm", help="multi-week pattern study")
    _add_common(p, 2022)
    p.add_argument("--weeks", type=int, default=2)
    p.add_argument("--nodes", type=int, default=512)
    p.add_argument("--amplitude", type=float, default=0.6)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "fig1":
        from repro.analysis.figures import ascii_cdf, ascii_timeseries
        from repro.experiments import run_fig1

        result = run_fig1(seed=args.seed, horizon=args.days * 86400.0, num_nodes=args.nodes)
        print(result.render())
        if args.plot:
            times, counts = result.time_series()
            print(ascii_timeseries(times, counts, title="Fig 1c — idle nodes over time"))
            import numpy as np

            print(ascii_cdf(result.trace.lengths(), title="Fig 1b — idle period lengths",
                            x_transform=np.log10, x_label="log10 seconds"))
    elif args.command == "fig2":
        from repro.experiments import run_fig2

        print(run_fig2(seed=args.seed, count=args.count).render())
    elif args.command == "fig3":
        from repro.experiments import run_fig3

        print(run_fig3(seed=args.seed).render())
    elif args.command == "table1":
        from repro.experiments import run_table1

        result = run_table1(seed=args.seed, horizon=args.days * 86400.0, num_nodes=args.nodes)
        print(result.render())
    elif args.command == "day":
        from repro.experiments import DayConfig, run_day
        from repro.hpcwhisk.config import SupplyModel

        model = SupplyModel.FIB if args.model == "fib" else SupplyModel.VAR
        seed = args.seed if args.seed is not None else (317 if model is SupplyModel.FIB else 321)
        result = run_day(
            DayConfig(model=model, seed=seed, horizon=args.hours * 3600.0,
                      num_nodes=args.nodes, with_load=not args.no_load)
        )
        print(result.render())
        if args.plot:
            from repro.analysis.figures import ascii_timeseries

            print(ascii_timeseries(
                result.series["sample_times"], result.series["whisk_counts"],
                title=f"Fig {'5a' if args.model == 'fib' else '6a'} — "
                      "HPC-Whisk worker jobs (Slurm-level)",
            ))
    elif args.command == "fig7":
        from repro.experiments import run_fig7

        print(run_fig7(seed=args.seed, invocations=args.invocations,
                       graph_size=args.graph_size).render())
    elif args.command == "optimize":
        import numpy as np

        from repro.hpcwhisk.optimizer import LengthSetOptimizer
        from repro.workloads.idleness import IdlenessTraceGenerator

        rng = np.random.default_rng(args.seed)
        trace = IdlenessTraceGenerator(rng, num_nodes=args.nodes).generate(
            args.days * 86400.0
        )
        print(LengthSetOptimizer().optimize(trace).render())
    elif args.command == "longterm":
        from repro.experiments import run_longterm

        print(run_longterm(seed=args.seed, weeks=args.weeks, num_nodes=args.nodes,
                           diurnal_amplitude=args.amplitude).render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
